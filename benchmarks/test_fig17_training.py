"""Fig 17 — accelerator utilization for ResNet-50-style training.

Regenerates the MLPerf-Storage-style AU curves: FalconFS sustains >= 90 %
AU to several times more GPUs than Lustre, and CephFS falls off almost
immediately (the paper: 80 vs 32 GPUs, CephFS below threshold).
"""

from conftest import run_once

from repro.experiments import training


def test_fig17_training(benchmark, record_result):
    rows = run_once(benchmark, lambda: training.run(
        gpu_counts=(8, 32, 64, 80, 96), num_files=6000,
    ))
    supported = training.supported_gpus(rows, threshold=0.9)
    text = training.format_rows(rows)
    text += "\n\nGPUs supported at >=90% AU: {}".format(supported)
    record_result("fig17_training", text)

    assert supported["falconfs"] >= 2 * supported["lustre"]
    assert supported["lustre"] >= supported["cephfs"]
    by_key = {
        (row["system"], row["gpus"]): row["accelerator_utilization"]
        for row in rows
    }
    # At scale, FalconFS's AU advantage over CephFS is large.
    assert by_key[("falconfs", 96)] > 2.5 * by_key[("cephfs", 96)]
    assert by_key[("falconfs", 96)] > by_key[("lustre", 96)]
