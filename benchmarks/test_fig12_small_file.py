"""Fig 12 — small-file data IO throughput across file sizes.

Regenerates the read/write sweeps from 4 KiB to 1 MiB: metadata-IOPS
bound below ~256 KiB (FalconFS leads), SSD-bandwidth bound above
(all systems converge).
"""

from conftest import run_once

from repro.experiments import data_path


def _cell(rows, **filters):
    for row in rows:
        if all(row.get(k) == v for k, v in filters.items()):
            return row
    raise KeyError(filters)


def test_fig12_small_file(benchmark, record_result):
    rows = run_once(benchmark, lambda: data_path.run(
        num_files=1500, threads=256,
    ))
    record_result("fig12_small_file", data_path.format_rows(rows))
    for op in ("read", "write"):
        for system in ("cephfs", "juicefs"):
            small = _cell(rows, op=op, system=system, file_size_kib=16)
            # Metadata-bound at small files.
            assert small["normalized"] < 0.75
        # CephFS and Lustre converge to the SSD ceiling at 1 MiB;
        # JuiceFS's data-storage inefficiency keeps it below (§6.3 notes
        # only CephFS, Lustre and FalconFS hit the bandwidth ceiling).
        ceph_large = _cell(rows, op=op, system="cephfs",
                           file_size_kib=1024)
        juice_large = _cell(rows, op=op, system="juicefs",
                            file_size_kib=1024)
        assert ceph_large["normalized"] > 0.7
        assert 0.3 < juice_large["normalized"] <= 1.05
        lustre64 = _cell(rows, op=op, system="lustre", file_size_kib=64)
        assert lustre64["normalized"] < 1.0
