"""Fig 11 — latency of metadata operations (single client thread).

Regenerates the latency comparison: FalconFS trades a little latency for
throughput (batching window), sitting above Lustre but below the heavier
CephFS and JuiceFS stacks.
"""

from conftest import run_once

from repro.experiments import metadata_latency


def test_fig11_latency(benchmark, record_result):
    rows = run_once(benchmark, lambda: metadata_latency.run(num_ops=200))
    record_result("fig11_latency", metadata_latency.format_rows(rows))
    mean = {
        (row["op"], row["system"]): row["mean_us"] for row in rows
    }
    for op in ("create", "getattr"):
        assert mean[(op, "lustre")] < mean[(op, "falconfs")]
        assert mean[(op, "falconfs")] < mean[(op, "cephfs")]
        assert mean[(op, "falconfs")] < mean[(op, "juicefs")]
