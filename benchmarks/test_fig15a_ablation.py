"""Fig 15a — design contribution breakdown (mkdir throughput).

Regenerates the ablation: full FalconFS vs *no inv* (eager 2PC dentry
replication) vs *no merge* (single-request dispatch with shared-queue
contention).  The paper reports 13.1 % and 1.1 % of full throughput.
"""

from conftest import run_once

from repro.experiments import ablation


def test_fig15a_ablation(benchmark, record_result):
    rows = run_once(benchmark, lambda: ablation.run(
        num_ops=1500, threads=256,
    ))
    record_result("fig15a_ablation", ablation.format_rows(rows))
    by_config = {row["config"]: row for row in rows}
    assert by_config["FalconFS"]["relative"] == 1.0
    assert by_config["no inv"]["relative"] < 0.5
    assert by_config["no merge"]["relative"] < \
        by_config["no inv"]["relative"]
    assert by_config["no merge"]["relative"] < 0.1
