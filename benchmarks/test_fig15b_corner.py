"""Fig 15b — corner-case analysis for hybrid indexing (getattr).

Regenerates the two-hop penalties: non-existent paths, path-walk
redirected filenames, and stale exception tables all cost an extra hop
versus the one-hop common case (the paper reports a 36.8-49.6 % drop).
"""

from conftest import run_once

from repro.experiments import corner_cases


def test_fig15b_corner_cases(benchmark, record_result):
    rows = run_once(benchmark, lambda: corner_cases.run(
        num_ops=1200, threads=64,
    ))
    record_result("fig15b_corner", corner_cases.format_rows(rows))
    by_scenario = {row["scenario"]: row for row in rows}
    assert by_scenario["one-hop"]["relative"] == 1.0
    for scenario in ("non-existent", "pathwalk", "stale-table"):
        assert 0.2 < by_scenario[scenario]["relative"] < 0.85, scenario
    assert by_scenario["pathwalk"]["forwarded"] > 0
    assert by_scenario["stale-table"]["forwarded"] > 0
    assert by_scenario["non-existent"]["server_lookups"] > 0
