"""Fig 4 — CephFS burst file access: throughput and MDS load variance.

Regenerates §2.4's motivating result: read/write throughput degrades as
the burst size approaches and exceeds the IO parallelism, because bursts
to one directory congest the single MDS that owns it (Fig 4b's variance).
"""

from conftest import run_once

from repro.experiments import burst


def test_fig04_ceph_burst(benchmark, record_result):
    rows = run_once(benchmark, lambda: burst.run(
        systems=("cephfs",), bursts=(1, 10, 100), ops=("read", "write"),
        num_dirs=32, files_per_dir=100, threads=256,
    ))
    record_result("fig04_ceph_burst", burst.format_rows(rows))
    reads = {row["burst"]: row for row in rows if row["op"] == "read"}
    assert reads[100]["files_per_sec"] < reads[1]["files_per_sec"]
    assert reads[100]["server_load_cv"] > reads[1]["server_load_cv"]
