"""Fig 13 — random file traversal under client memory budgets.

Regenerates the traversal throughput (13a) and request composition (13b)
across 10-100 % cache budgets for FalconFS, FalconFS-NoBypass, CephFS and
Lustre.
"""

import pytest
from conftest import run_once

from repro.experiments import memory_budget


def _series(rows, system):
    return {
        row["budget_pct"]: row for row in rows if row["system"] == system
    }


def test_fig13_memory_budget(benchmark, record_result):
    rows = run_once(benchmark, lambda: memory_budget.run(
        budgets=(0.1, 0.4, 0.7, 1.0), threads=256, max_files=4000,
    ))
    record_result("fig13_memory_budget", memory_budget.format_rows(rows))
    falcon = _series(rows, "falconfs")
    nobypass = _series(rows, "falconfs-nobypass")
    ceph = _series(rows, "cephfs")
    lustre = _series(rows, "lustre")
    # FalconFS: constant requests, budget-insensitive throughput.
    assert all(row["requests_per_file"] == pytest.approx(1.0)
               for row in falcon.values())
    spread = (max(r["files_per_sec"] for r in falcon.values())
              - min(r["files_per_sec"] for r in falcon.values()))
    assert spread / falcon[100]["files_per_sec"] < 0.1
    # Stateful systems amplify and slow down as the budget shrinks.
    for series in (nobypass, ceph, lustre):
        assert series[10]["requests_per_file"] > \
            series[100]["requests_per_file"]
        assert series[10]["files_per_sec"] <= \
            series[100]["files_per_sec"] * 1.05
    # FalconFS beats NoBypass under pressure, and both baselines always.
    assert falcon[10]["files_per_sec"] >= \
        0.95 * nobypass[10]["files_per_sec"]
    assert falcon[10]["files_per_sec"] > ceph[10]["files_per_sec"]
    assert falcon[10]["files_per_sec"] > lustre[10]["files_per_sec"]
