"""Fig 16 — labeling-task trace replay.

Regenerates the file-size mix (16a) and the normalized trace runtime
(16b): FalconFS finishes first; the paper reports 23.8-86.4 % runtime
reductions over the baselines.
"""

from conftest import run_once

from repro.experiments import labeling


def test_fig16_labeling(benchmark, record_result):
    def experiment():
        histogram = labeling.size_histogram()
        rows = labeling.run(num_tasks=1200, threads=256)
        return histogram, rows

    histogram, rows = run_once(benchmark, experiment)
    text = "Fig 16a: file size distribution\n"
    text += "\n".join(
        "  {:<8} {:5.1f}%".format(bucket, share * 100)
        for bucket, share in histogram.items()
    )
    text += "\n\n" + labeling.format_rows(rows)
    record_result("fig16_labeling", text)

    by_system = {row["system"]: row for row in rows}
    assert by_system["falconfs"]["normalized_runtime"] == 1.0
    for system in ("cephfs", "lustre", "juicefs"):
        assert by_system[system]["normalized_runtime"] > 1.0, system
    # CephFS/JuiceFS suffer far more than Lustre, as in the paper.
    assert by_system["cephfs"]["normalized_runtime"] > \
        by_system["lustre"]["normalized_runtime"]
    # Fig 16a: the 64 KiB-1 MiB range dominates.
    assert histogram["64-256K"] + histogram["256K-1M"] > 0.5
