"""Fig 10 — throughput and scalability of metadata operations.

Regenerates the five-operation scalability matrix over 4/8/16 metadata
servers for FalconFS, CephFS, Lustre and JuiceFS.
"""

from conftest import run_once

from repro.experiments import metadata_scaling


def _by(rows, **filters):
    return [
        row for row in rows
        if all(row.get(k) == v for k, v in filters.items())
    ]


def test_fig10_metadata_scaling(benchmark, record_result):
    rows = run_once(benchmark, lambda: metadata_scaling.run(
        servers=(4, 8, 16), num_ops=1600, threads=256,
    ))
    record_result("fig10_metadata_scaling",
                  metadata_scaling.format_rows(rows))

    def kops(system, op, servers):
        return _by(rows, system=system, op=op, servers=servers)[0][
            "kops_per_sec"]

    # FalconFS leads create/unlink/mkdir and scales with servers.
    for op in ("create", "unlink", "mkdir"):
        assert kops("falconfs", op, 4) > kops("cephfs", op, 4)
        assert kops("falconfs", op, 4) > kops("juicefs", op, 4)
        assert kops("falconfs", op, 16) > kops("falconfs", op, 4)
    # getattr: stateless clients avoid coherence locking.
    assert kops("falconfs", "getattr", 4) > kops("lustre", "getattr", 4)
    # rmdir: FalconFS's invalidation broadcast does not scale; the
    # baselines' constant-overhead rmdir does.
    assert kops("falconfs", "rmdir", 16) < kops("falconfs", "rmdir", 4) * 1.2
    assert kops("lustre", "rmdir", 16) > kops("lustre", "rmdir", 4)
    # JuiceFS's leader imbalance keeps it far behind at every size:
    # even with 16 servers it stays below FalconFS on 4.
    assert kops("juicefs", "create", 16) < 0.5 * kops("falconfs", "create", 4)
    assert kops("juicefs", "create", 16) < kops("lustre", "create", 16)
