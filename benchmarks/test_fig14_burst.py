"""Fig 14 — burst file IO across all four systems.

Regenerates §6.5: CephFS degrades on read and write and Lustre on read
as the burst size grows (same-directory metadata co-location), while
FalconFS's filename hashing is burst-insensitive and JuiceFS is flat
(constantly imbalanced either way).
"""

from conftest import run_once

from repro.experiments import burst


def _series(rows, system, op):
    return {
        row["burst"]: row for row in rows
        if row["system"] == system and row["op"] == op
    }


def test_fig14_burst(benchmark, record_result):
    rows = run_once(benchmark, lambda: burst.run(
        bursts=(1, 10, 100), num_dirs=32, files_per_dir=100, threads=256,
    ))
    record_result("fig14_burst", burst.format_rows(rows))
    ceph_read = _series(rows, "cephfs", "read")
    assert ceph_read[100]["files_per_sec"] < ceph_read[1]["files_per_sec"]
    ceph_write = _series(rows, "cephfs", "write")
    assert ceph_write[100]["files_per_sec"] < \
        1.05 * ceph_write[1]["files_per_sec"]
    lustre_read = _series(rows, "lustre", "read")
    assert lustre_read[100]["files_per_sec"] < \
        lustre_read[1]["files_per_sec"]
    falcon_read = _series(rows, "falconfs", "read")
    assert falcon_read[100]["files_per_sec"] > \
        0.85 * falcon_read[1]["files_per_sec"]
    juice_read = _series(rows, "juicefs", "read")
    assert juice_read[100]["files_per_sec"] > \
        0.8 * juice_read[1]["files_per_sec"]
