"""Design-parameter sensitivity sweeps (DESIGN.md's ablation list).

Not a paper figure — these sweep the knobs behind FalconFS's design
choices: the batching window (throughput vs latency, the Fig 11 trade),
the batch-size cap (how far coalescing helps), and the load-balance
epsilon (exception-table size vs bound tightness).
"""

from conftest import run_once

from repro.experiments import sensitivity


def test_sensitivity_sweeps(benchmark, record_result):
    rows = run_once(benchmark, lambda: sensitivity.run(
        num_ops=1500, threads=256,
    ))
    record_result("sensitivity", sensitivity.format_rows(rows))

    linger = {row["value"]: row for row in rows
              if row["param"] == "merge_linger_us"}
    lingers = sorted(linger)
    # Longer windows: latency strictly grows, batches do not shrink.
    assert (linger[lingers[-1]]["mean_latency_us"]
            > linger[lingers[0]]["mean_latency_us"])
    assert (linger[lingers[-1]]["avg_batch"]
            >= linger[lingers[0]]["avg_batch"])

    batch = {row["value"]: row for row in rows
             if row["param"] == "max_batch"}
    # Merging pays: batch cap 16 far outruns cap 1, and WAL coalescing
    # deepens with the cap.
    assert batch[16]["create_per_sec"] > 2 * batch[1]["create_per_sec"]
    assert (batch[64]["wal_records_per_flush"]
            > batch[1]["wal_records_per_flush"])

    epsilon = {row["value"]: row for row in rows
               if row["param"] == "epsilon"}
    values = sorted(epsilon)
    # Tighter bounds cannot need fewer entries or allow a larger max.
    assert (epsilon[values[0]]["table_entries"]
            >= epsilon[values[-1]]["table_entries"])
    assert (epsilon[values[0]]["max_share_pct"]
            <= epsilon[values[-1]]["max_share_pct"] + 0.5)
