"""Table 3 — inode distribution over 16 MNodes for nine workloads.

Regenerates the load-balance table: DL datasets balance under pure
filename hashing (zero exception entries); the Linux tree needs path-walk
redirection of its hot Makefile/Kconfig names; FSL homes needs its top
reused name redirected.
"""

from conftest import run_once

from repro.experiments import load_balance

#: Small datasets run at the paper's full size; the two largest are
#: subsampled to keep the bench quick (their name structure is uniform,
#: so subsampling preserves the distribution).
SCALES = {"ImageNet": 0.12, "CelebA": 0.5}


def test_tab03_load_balance(benchmark, record_result):
    rows = run_once(benchmark, lambda: load_balance.run(
        scale=1.0, scales=SCALES, num_mnodes=16, epsilon=0.01,
    ))
    record_result("tab03_load_balance", load_balance.format_rows(rows))
    by_name = {row["workload"]: row for row in rows}
    ideal = 100.0 / 16

    for name, row in by_name.items():
        # Every workload ends within the balance bound.
        assert row["max_pct"] <= ideal + 1.0 + 0.5, name

    # DL datasets need no redirection at all (Table 3's key claim).
    for name in ("Labeling task", "ImageNet", "Cityscapes", "CelebA",
                 "CUB-200-2011"):
        assert by_name[name]["pathwalk_entries"] == 0, name
        assert by_name[name]["override_entries"] == 0, name

    # The Linux tree redirects its hot shared names.
    linux = by_name["Linux-6.8 code"]
    assert 1 <= linux["pathwalk_entries"] <= 3
    assert set(linux["pathwalk_names"]) <= {"Makefile", "Kconfig"}

    # FSL homes needs (at least) its dominant reused name redirected.
    fsl = by_name["FSL homes"]
    assert fsl["pathwalk_entries"] + fsl["override_entries"] >= 1
