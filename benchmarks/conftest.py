"""Benchmark support: persist each figure/table's output for review.

Every benchmark prints its reproduced table/series and also writes it to
``benchmarks/results/<name>.txt`` so the numbers survive pytest's output
capture; EXPERIMENTS.md is written against these files.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def record_result():
    """Callable(name, text): print and persist an experiment's output."""

    def _record(name, text):
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, name + ".txt")
        with open(path, "w") as handle:
            handle.write(text + "\n")
        print()
        print(text)

    return _record


def run_once(benchmark, func):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
