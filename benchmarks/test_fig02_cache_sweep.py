"""Fig 2 — CephFS random traversal vs client metadata cache size.

Regenerates the motivating curve of §2.3: read throughput falls and MDS
requests (lookups) rise as the client cache shrinks from 100 % to 10 % of
the directory working set.
"""

from conftest import run_once

from repro.experiments import cache_sweep


def test_fig02_cache_sweep(benchmark, record_result):
    rows = run_once(benchmark, lambda: cache_sweep.run(
        budgets=(0.1, 0.25, 0.5, 0.75, 1.0), threads=256, max_files=4000,
    ))
    record_result("fig02_cache_sweep", cache_sweep.format_rows(rows))
    tight, full = rows[0], rows[-1]
    # Paper: full cache ~1.46x the 10% throughput; amplification shrinks.
    assert full["files_per_sec"] > 1.2 * tight["files_per_sec"]
    assert tight["lookups_per_open"] > full["lookups_per_open"]
    assert full["lookups_per_open"] <= 1.05
