#!/usr/bin/env python
"""Gate simulator performance against the committed baseline.

CI's ``bench-smoke`` job runs::

    python -m repro.experiments bench --quick
    python benchmarks/perf/check_regression.py

Two checks per workload:

* **events** must match the baseline exactly — the event count is
  deterministic for a fixed config and seed, so a mismatch means the
  simulation's behaviour changed, not its speed.  Regenerate the
  baseline (``--write-baseline``) only alongside an intentional change
  that the golden-trace test also acknowledges.
* the throughput statistic must not regress more than ``--tolerance``
  (default 25%, also settable via ``BENCH_TOLERANCE``).  When both the
  result and the baseline carry ``events_per_sec_median`` (bench
  ``--repeat N``, schema >= 2) the gate uses the **median** — far less
  noisy than a single observation; otherwise it falls back to the
  best-of-run ``events_per_sec``.  Speedups and small regressions pass;
  a committed baseline uses minimum-observed numbers so shared-runner
  noise stays inside the tolerance.
"""

import argparse
import json
import os
import sys

HERE = os.path.dirname(os.path.abspath(__file__))
DEFAULT_BASELINE = os.path.join(HERE, "baseline.json")
DEFAULT_RESULT = "BENCH_perf.json"


def load(path):
    with open(path) as handle:
        return json.load(handle)


MEDIAN = "events_per_sec_median"


def check(result, baseline, tolerance):
    failures = []
    for name, want in sorted(baseline["workloads"].items()):
        got = result["workloads"].get(name)
        if got is None:
            failures.append("{}: missing from result".format(name))
            continue
        if got["events"] != want["events"]:
            failures.append(
                "{}: event count changed: {} != baseline {} "
                "(determinism break or config drift)".format(
                    name, got["events"], want["events"]))
        metric = (MEDIAN if MEDIAN in got and MEDIAN in want
                  else "events_per_sec")
        floor = want[metric] * (1.0 - tolerance)
        ratio = got[metric] / want[metric]
        status = "ok" if got[metric] >= floor else "REGRESSION"
        print("{:<22} {:>12,.0f} ev/s ({})  baseline {:>12,.0f}  "
              "ratio {:.2f}x  {}".format(
                  name, got[metric],
                  "median" if metric == MEDIAN else "best",
                  want[metric], ratio, status))
        if status != "ok":
            failures.append(
                "{}: {:,.0f} ev/s ({}) is below the {:.0%}-tolerance "
                "floor {:,.0f}".format(name, got[metric], metric,
                                       tolerance, floor))
    return failures


def write_baseline(result, path):
    payload = load(path)
    for name, got in result["workloads"].items():
        entry = {
            "events": got["events"],
            "events_per_sec": int(got["events_per_sec"]),
        }
        if MEDIAN in got:
            entry[MEDIAN] = int(got[MEDIAN])
        payload["workloads"][name] = entry
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    print("baseline rewritten: {}".format(path))


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("result", nargs="?", default=DEFAULT_RESULT,
                        help="BENCH_perf.json produced by the bench run")
    parser.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                        help="committed baseline to compare against")
    parser.add_argument("--tolerance", type=float,
                        default=float(os.environ.get("BENCH_TOLERANCE",
                                                     "0.25")),
                        help="allowed fractional events/sec regression "
                             "(default 0.25)")
    parser.add_argument("--write-baseline", action="store_true",
                        help="overwrite the baseline with this result "
                             "instead of checking")
    args = parser.parse_args(argv)

    result = load(args.result)
    if args.write_baseline:
        write_baseline(result, args.baseline)
        return 0
    failures = check(result, load(args.baseline), args.tolerance)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print("  " + failure, file=sys.stderr)
        return 1
    print("\nbench-smoke ok (tolerance {:.0%})".format(args.tolerance))
    return 0


if __name__ == "__main__":
    sys.exit(main())
