#!/usr/bin/env python
"""Head-to-head: FalconFS vs CephFS/Lustre/JuiceFS on a DL traversal.

Runs the paper's core scenario — random traversal of a directory tree
under a tight client memory budget (§6.4) — against all four systems and
prints throughput and the request mix each client generated.  FalconFS's
stateless client sends exactly one request per file regardless of budget;
the stateful baselines amplify.

Run:  python examples/compare_systems.py
"""

import random

from repro.experiments.common import (
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.vfs.attrs import DENTRY_CACHE_COST_BYTES
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import uniform_tree

SYSTEMS = ("falconfs", "cephfs", "lustre", "juicefs")
BUDGET_FRACTION = 0.2  # clients may cache 20 % of the directory set


def traverse(system):
    rng = random.Random(7)
    tree = uniform_tree(levels=3, dir_fanout=8, files_per_leaf=6,
                        file_size=64 * 1024)
    cluster = build_cluster(system, num_mnodes=4, num_storage=12)
    budget = int(tree.num_dirs * DENTRY_CACHE_COST_BYTES * BUDGET_FRACTION)
    client = add_workload_client(cluster, system, mode="vfs",
                                 cache_budget_bytes=budget)
    path_ino = cluster.bulk_load(tree)
    if system != "falconfs":
        prefill_dcache(client, tree, path_ino, rng)
    files = tree.file_paths()
    rng.shuffle(files)
    thunks = [lambda p=p: client.read_file(p) for p in files]
    result = run_closed_loop(cluster, thunks, num_threads=192)
    requests = client.metrics.counter("requests").by_label()
    return result, requests


def main():
    print("random traversal, {:.0%} client cache budget\n".format(
        BUDGET_FRACTION))
    print("{:<10} {:>14} {:>10}   request mix".format(
        "system", "files/s (sim)", "reqs/file"))
    print("-" * 72)
    for system in SYSTEMS:
        result, requests = traverse(system)
        total = sum(requests.values())
        mix = ", ".join(
            "{}:{}".format(kind, count)
            for kind, count in sorted(requests.items())
        )
        print("{:<10} {:>14,.0f} {:>10.2f}   {}".format(
            system, result.ops_per_sec, total / max(1, result.ops), mix))


if __name__ == "__main__":
    main()
