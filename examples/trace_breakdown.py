#!/usr/bin/env python
"""Trace a workload and break its latency down by component.

Runs a small mixed workload on a FalconFS cluster with the distributed
tracer enabled, persists every span to a JSON-Lines file, then loads
the file back and prints where each operation's time went: network
hops, CPU-queue waits, lock waits, WAL flushes, disk transfers, client
and server CPU, retry backoff.

Run:  python examples/trace_breakdown.py
"""

import tempfile

from repro import FalconCluster, FalconConfig
from repro.analysis.breakdown import breakdown_rows, load_spans
from repro.experiments.common import format_table
from repro.obs import JsonlSink, Tracer


def main():
    trace_path = tempfile.NamedTemporaryFile(
        suffix=".jsonl", delete=False
    ).name
    with JsonlSink(trace_path) as sink:
        tracer = Tracer(sink=sink)
        cluster = FalconCluster(
            FalconConfig(num_mnodes=4, num_storage=4), tracer=tracer
        )
        fs = cluster.fs()

        fs.makedirs("/datasets/train")
        for i in range(16):
            fs.write("/datasets/train/img{:04d}.jpg".format(i),
                     size=112 * 1024)
        for i in range(16):
            fs.getattr("/datasets/train/img{:04d}.jpg".format(i))
        for i in range(16):
            fs.read("/datasets/train/img{:04d}.jpg".format(i))
        for i in range(8):
            fs.unlink("/datasets/train/img{:04d}.jpg".format(i))

    spans = load_spans(trace_path)
    print("captured {} spans -> {}\n".format(len(spans), trace_path))
    print(format_table(
        breakdown_rows(spans),
        ["op", "count", "mean_us", "net_us", "queue_us", "lock_us",
         "wal_us", "disk_us", "cpu_us", "retry_us", "other_us"],
        title="FalconFS latency breakdown (us, mean per op)",
    ))


if __name__ == "__main__":
    main()
