#!/usr/bin/env python
"""Hybrid metadata indexing and the load balancer in action (§4.2).

Builds a Linux-source-like tree whose hot filenames (``Makefile``,
``Kconfig``) all hash to single MNodes, shows the resulting imbalance,
then runs the coordinator's statistical load balancer and prints the
redirections it chose and the distribution after each phase.  Finally
deletes the hot files and shows the exception table shrinking again.

Run:  python examples/load_balancing.py
"""

from repro import FalconCluster, FalconConfig
from repro.metrics import load_share_extremes
from repro.workloads.datasets import linux_tree


def show(cluster, title):
    counts = cluster.inode_distribution()
    max_share, min_share = load_share_extremes(counts)
    print("{}:".format(title))
    print("  inodes per MNode: {}".format(counts))
    print("  max/min share: {:.2%} / {:.2%} (ideal {:.2%})".format(
        max_share, min_share, 1 / len(counts)))
    table = cluster.exception_table
    print("  exception table: pathwalk={} override={}".format(
        sorted(table.pathwalk), table.override))
    print()


def main():
    cluster = FalconCluster(FalconConfig(
        num_mnodes=8, num_storage=4, epsilon=0.02,
    ))
    tree = linux_tree(scale=0.25)
    cluster.bulk_load(tree)
    print("loaded a Linux-like source tree: {} dirs, {} files\n".format(
        tree.num_dirs, tree.num_files))
    show(cluster, "before balancing (pure filename hashing)")

    report = cluster.rebalance()
    for move in report["moves"]:
        print("redirected {name!r} via {method} "
              "({count} files, node {from_} -> {to})".format(
                  name=move["name"], method=move["method"],
                  count=move["count"], from_=move["from"], to=move["to"]))
    print()
    show(cluster, "after balancing")

    # The files stay fully accessible through the normal protocol.
    fs = cluster.fs()
    sample = next(p for p, _ in tree.files if p.endswith("Makefile"))
    print("sample access through redirection: getattr({}) -> ino {}\n"
          .format(sample, fs.getattr(sample)["ino"]))

    print("deleting the hot files, then shrinking the table...")
    for path, _ in tree.files:
        if path.endswith(("Makefile", "Kconfig")):
            fs.unlink(path)
    removed = cluster.shrink_exception_table()
    print("shrink removed entries: {}\n".format(removed))
    show(cluster, "after shrink")


if __name__ == "__main__":
    main()
