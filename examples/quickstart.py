#!/usr/bin/env python
"""Quickstart: build a FalconFS cluster and use it like a file system.

Spins up a simulated cluster (4 metadata nodes, 4 storage nodes, one
coordinator), mounts a client, and exercises the POSIX-like API:
directories, files, rename, permissions, listing.  Everything runs the
full protocol — hybrid indexing, server-side path resolution on lazily
replicated namespaces, request merging — under a deterministic
discrete-event clock, so the printed timings are simulated microseconds.

Run:  python examples/quickstart.py
"""

from repro import FalconCluster, FalconConfig


def main():
    cluster = FalconCluster(FalconConfig(num_mnodes=4, num_storage=4))
    fs = cluster.fs()  # a synchronous client view

    print("== namespace ==")
    fs.makedirs("/datasets/resnet/train")
    fs.makedirs("/datasets/resnet/val")
    print("created", fs.listdir("/datasets/resnet"))

    print("\n== files ==")
    for i in range(8):
        fs.write("/datasets/resnet/train/img{:04d}.jpg".format(i),
                 size=112 * 1024)
    print("train holds {} files".format(
        len(fs.listdir("/datasets/resnet/train"))))
    size = fs.read("/datasets/resnet/train/img0000.jpg")
    print("read img0000.jpg: {} bytes".format(size))

    print("\n== metadata ==")
    attrs = fs.getattr("/datasets/resnet/train/img0003.jpg")
    print("img0003.jpg -> ino={ino} size={size} mode={mode:o}".format(
        ino=attrs["ino"], size=attrs["size"], mode=attrs["mode"]))

    print("\n== rename and permissions ==")
    fs.rename("/datasets/resnet", "/datasets/resnet50")
    fs.chmod("/datasets/resnet50/val", 0o500)
    print("renamed; val mode is now {:o}".format(
        fs.getattr("/datasets/resnet50/val")["mode"]))
    print("img0000 still reachable through the new name:",
          fs.exists("/datasets/resnet50/train/img0000.jpg"))

    print("\n== cluster state ==")
    print("inodes per MNode:", cluster.inode_distribution())
    print("simulated time: {:.1f} ms".format(cluster.env.now / 1000))
    print("network messages:", cluster.network.message_count())


if __name__ == "__main__":
    main()
