#!/usr/bin/env python
"""A miniature deep-learning pipeline on FalconFS (§2.1 of the paper).

Recreates the paper's motivating workload end to end on one simulated
cluster:

1. **Ingestion** — raw multimodal samples land in timestamp/camera
   directories.
2. **Labeling** — inference workers read each raw sample and write a
   label file back, in same-directory batches (the burst pattern of
   §2.4).
3. **Training** — GPUs stream the labeled dataset in one random epoch
   with prefetch overlap, reporting accelerator utilization (§6.8).

Run:  python examples/dl_pipeline.py
"""

import random

from repro import FalconCluster, FalconConfig
from repro.workloads.driver import run_closed_loop, training_run

RAW_ROOT = "/pipeline/raw"
LABEL_ROOT = "/pipeline/labels"
CAMERAS = 4
FRAMES_PER_CAMERA = 60
FRAME_BYTES = 200 * 1024
LABEL_BYTES = 40 * 1024


def ingest(fs):
    """Stage 1: collect raw frames into per-camera directories."""
    fs.makedirs(RAW_ROOT)
    fs.makedirs(LABEL_ROOT)
    raw_paths = []
    for camera in range(CAMERAS):
        cam_dir = "{}/cam{}".format(RAW_ROOT, camera)
        label_dir = "{}/cam{}".format(LABEL_ROOT, camera)
        fs.mkdir(cam_dir)
        fs.mkdir(label_dir)
        for frame in range(FRAMES_PER_CAMERA):
            path = "{}/frame{:06d}.jpg".format(cam_dir, frame)
            fs.write(path, size=FRAME_BYTES)
            raw_paths.append(path)
    print("ingested {} frames across {} cameras".format(
        len(raw_paths), CAMERAS))
    return raw_paths


def label(cluster, client, raw_paths):
    """Stage 2: concurrent inference workers read raw, write labels."""

    def task(raw_path):
        yield from client.read_file(raw_path)
        label_path = raw_path.replace(RAW_ROOT, LABEL_ROOT).replace(
            ".jpg", ".label")
        yield from client.write_file(label_path, LABEL_BYTES)

    thunks = [lambda p=p: task(p) for p in raw_paths]
    result = run_closed_loop(cluster, thunks, num_threads=32)
    print("labeling: {} tasks at {:,.0f} tasks/s (simulated)".format(
        result.ops, result.ops_per_sec))


def train(cluster, fs, label_count):
    """Stage 3: one training epoch over the labeled dataset."""
    label_paths = []
    for camera in range(CAMERAS):
        cam_dir = "{}/cam{}".format(LABEL_ROOT, camera)
        label_paths.extend(
            "{}/{}".format(cam_dir, name) for name in fs.listdir(cam_dir)
        )
    au = training_run(
        cluster, cluster.clients, label_paths, num_gpus=4, batch_size=8,
        compute_us_per_batch=2000.0, rng=random.Random(0),
    )
    print("training epoch over {} labels: accelerator utilization "
          "{:.1%}".format(len(label_paths), au))


def main():
    cluster = FalconCluster(FalconConfig(num_mnodes=4, num_storage=8))
    fs = cluster.fs()
    raw_paths = ingest(fs)
    label(cluster, cluster.clients[0], raw_paths)
    train(cluster, fs, len(raw_paths))
    print("\ninodes per MNode:", cluster.inode_distribution())
    print("simulated wall clock: {:.1f} ms".format(cluster.env.now / 1000))


if __name__ == "__main__":
    main()
