"""Compile the persisted benchmark outputs into one markdown report.

``pytest benchmarks/ --benchmark-only`` writes each regenerated table to
``benchmarks/results/<name>.txt``; :func:`compile_report` stitches them
into a single document in the paper's figure order, ready to diff against
EXPERIMENTS.md or attach to a run.

Usage::

    python -m repro.analysis.report [results_dir] [output.md]
"""

import os
import sys

#: Result files in the paper's presentation order, with display titles.
RESULT_ORDER = (
    ("fig02_cache_sweep", "Figure 2 — CephFS traversal vs cache size"),
    ("fig04_ceph_burst", "Figure 4 — CephFS burst access"),
    ("fig10_metadata_scaling", "Figure 10 — metadata scalability"),
    ("fig11_latency", "Figure 11 — metadata latency"),
    ("fig12_small_file", "Figure 12 — small-file IO"),
    ("fig13_memory_budget", "Figure 13 — client memory budget"),
    ("fig14_burst", "Figure 14 — burst IO, all systems"),
    ("tab03_load_balance", "Table 3 — inode distribution"),
    ("fig15a_ablation", "Figure 15a — design ablation"),
    ("fig15b_corner", "Figure 15b — corner cases"),
    ("fig16_labeling", "Figure 16 — labeling trace replay"),
    ("fig17_training", "Figure 17 — training accelerator utilization"),
    ("sensitivity", "Extension — design-parameter sensitivity"),
)


def compile_report(results_dir, title="FalconFS reproduction results"):
    """Return one markdown document from the persisted result tables.

    Missing files are reported as not-yet-regenerated rather than
    failing, so partial benchmark runs still produce a useful report.
    """
    sections = ["# {}\n".format(title)]
    present = 0
    for name, heading in RESULT_ORDER:
        path = os.path.join(results_dir, name + ".txt")
        sections.append("## {}\n".format(heading))
        if os.path.exists(path):
            with open(path) as handle:
                body = handle.read().rstrip()
            sections.append("```\n{}\n```\n".format(body))
            present += 1
        else:
            sections.append(
                "*(not regenerated yet — run `pytest benchmarks/"
                "{} --benchmark-only`)*\n".format("test_" + name + ".py")
            )
    sections.append(
        "---\n{} of {} results present.\n".format(present,
                                                  len(RESULT_ORDER))
    )
    return "\n".join(sections)


def main(argv=None):
    argv = list(sys.argv[1:] if argv is None else argv)
    default_dir = os.path.join(
        os.path.dirname(__file__), "..", "..", "..", "benchmarks",
        "results",
    )
    results_dir = argv[0] if argv else os.path.normpath(default_dir)
    report = compile_report(results_dir)
    if len(argv) > 1:
        with open(argv[1], "w") as handle:
            handle.write(report)
        print("wrote {}".format(argv[1]))
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
