"""Result analysis: compile benchmark outputs into one report."""

from repro.analysis.report import RESULT_ORDER, compile_report

__all__ = ["RESULT_ORDER", "compile_report"]
