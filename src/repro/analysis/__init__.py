"""Result analysis: compile benchmark outputs into one report."""

from repro.analysis.breakdown import (
    aggregate,
    breakdown_rows,
    op_breakdowns,
)
from repro.analysis.report import RESULT_ORDER, compile_report

__all__ = [
    "RESULT_ORDER",
    "aggregate",
    "breakdown_rows",
    "compile_report",
    "op_breakdowns",
]
