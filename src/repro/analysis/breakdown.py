"""Latency breakdown from trace spans (the Fig 11 companion analysis).

Consumes the spans produced by :class:`repro.obs.Tracer` (live ``Span``
objects or dicts loaded from a JSONL sink) and decomposes each completed
operation's latency into per-component times:

* the **root** of an operation is its ``cat == "op"`` span with no parent;
* **components** are the leaf categories in
  :data:`repro.obs.COMPONENT_CATEGORIES` (net, queue, lock, wal, disk,
  cpu, retry) — envelope categories (op/phase/batch) are never summed;
* **batch amortization** — work recorded under a ``cat == "batch"`` root
  (FalconFS request merging executes one batch for many member
  operations) is divided evenly across the batch's ``members`` and
  credited to each member operation;
* the **other** bucket is whatever part of the root latency no component
  span accounts for (client-side bookkeeping, scheduling slack).

Parallel component spans (e.g. concurrent per-block disk IOs) each count
in full, so component sums measure *work*, not wall time; ``other`` is
clamped at zero accordingly.
"""

from collections import defaultdict

from repro.obs import COMPONENT_CATEGORIES
from repro.obs.tracer import CAT_BATCH, CAT_OP, load_spans

__all__ = [
    "op_breakdowns",
    "aggregate",
    "breakdown_rows",
    "load_spans",
]


def _as_dict(span):
    return span if isinstance(span, dict) else span.to_dict()


def _duration(record):
    end = record.get("end")
    if end is None:
        return 0.0
    return end - record["start"]


def op_breakdowns(spans):
    """Per-operation breakdown dicts for every completed root op span.

    Each dict has ``op_id``, ``op`` (the operation name), ``duration_us``,
    ``components`` (category -> microseconds, amortized batch work
    included), ``other_us`` and ``coverage`` (direct-children time over
    root duration — 1.0 means the trace fully explains the latency).
    """
    records = [_as_dict(s) for s in spans]
    by_op = defaultdict(list)
    for record in records:
        by_op[record["op"]].append(record)

    # Amortize batch-scoped component work across the batch's members.
    batch_shares = defaultdict(lambda: defaultdict(float))
    for record in records:
        if record["cat"] != CAT_BATCH or record.get("parent") is not None:
            continue
        members = (record.get("attrs") or {}).get("members") or []
        if not members:
            continue
        share = 1.0 / len(members)
        for child in by_op[record["op"]]:
            if child["cat"] in COMPONENT_CATEGORIES:
                for member in members:
                    batch_shares[member][child["cat"]] += (
                        _duration(child) * share
                    )

    out = []
    for op_id, group in sorted(by_op.items()):
        roots = [
            r for r in group
            if r["cat"] == CAT_OP and r.get("parent") is None
            and r.get("end") is not None
        ]
        if not roots:
            continue
        root = roots[0]
        duration = _duration(root)
        components = defaultdict(float)
        for record in group:
            if record["cat"] in COMPONENT_CATEGORIES:
                components[record["cat"]] += _duration(record)
        for category, share in batch_shares.get(op_id, {}).items():
            components[category] += share
        explained = sum(components.values())
        direct = sum(
            _duration(r) for r in group
            if r.get("parent") == root["span"]
        )
        out.append({
            "op_id": op_id,
            "op": root["name"],
            "duration_us": duration,
            "components": dict(components),
            "other_us": max(0.0, duration - explained),
            "coverage": (direct / duration) if duration > 0 else 1.0,
        })
    return out


def aggregate(breakdowns, key="op"):
    """Aggregate per-op breakdowns into per-``key`` mean rows.

    Returns a list of dicts with ``op``, ``count``, ``mean_us`` and a
    mean-microseconds column per component category plus ``other_us``.
    """
    groups = defaultdict(list)
    for bd in breakdowns:
        groups[bd[key]].append(bd)
    rows = []
    for name, group in sorted(groups.items()):
        n = len(group)
        row = {
            "op": name,
            "count": n,
            "mean_us": sum(b["duration_us"] for b in group) / n,
        }
        for category in COMPONENT_CATEGORIES:
            row[category + "_us"] = sum(
                b["components"].get(category, 0.0) for b in group
            ) / n
        row["other_us"] = sum(b["other_us"] for b in group) / n
        rows.append(row)
    return rows


def breakdown_rows(spans, key="op"):
    """One-call pipeline: spans -> aggregated component table rows."""
    return aggregate(op_breakdowns(spans), key=key)
