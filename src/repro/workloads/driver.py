"""Load drivers: closed-loop throughput, latency probes, training loops.

The throughput driver mirrors the paper's methodology (§6.2): a fixed
number of client threads issue operations back-to-back from a shared work
list until it drains; throughput is completed operations over elapsed
simulated time.  The training loop mirrors MLPerf Storage's accelerator
utilization metric (§6.8): per-GPU compute is overlapped with prefetching
the next batch, and AU is compute time over wall time.
"""

from dataclasses import dataclass, field

from repro.metrics import Histogram
from repro.net.rpc import RpcFailure


@dataclass
class ThroughputResult:
    """Outcome of a closed-loop run."""

    ops: int
    errors: int
    elapsed_us: float

    @property
    def ops_per_sec(self):
        if self.elapsed_us <= 0:
            return 0.0
        return self.ops / (self.elapsed_us / 1e6)

    def __repr__(self):
        return "<Throughput {:.0f} ops/s ({} ops, {} errors)>".format(
            self.ops_per_sec, self.ops, self.errors
        )


@dataclass
class LatencyResult:
    """Per-operation latency distribution (microseconds)."""

    histogram: Histogram = field(default_factory=lambda: Histogram("latency"))

    @property
    def mean_us(self):
        return self.histogram.mean()

    def percentile(self, q):
        return self.histogram.percentile(q)

    def summary(self):
        return self.histogram.summary()


def run_closed_loop(cluster, thunks, num_threads, raise_errors=False):
    """Drive ``thunks`` (callables returning operation generators) with
    ``num_threads`` closed-loop workers; returns :class:`ThroughputResult`.
    """
    env = cluster.env
    iterator = iter(thunks)
    state = {"ops": 0, "errors": 0}

    def worker():
        while True:
            try:
                thunk = next(iterator)
            except StopIteration:
                return
            try:
                yield from thunk()
                state["ops"] += 1
            except RpcFailure:
                if raise_errors:
                    raise
                state["errors"] += 1

    start = env.now
    workers = [env.process(worker()) for _ in range(num_threads)]
    env.run(until=env.all_of(workers))
    return ThroughputResult(
        ops=state["ops"], errors=state["errors"],
        elapsed_us=env.now - start,
    )


def measure_latency(cluster, thunks):
    """Run ``thunks`` one at a time, recording per-op latency."""
    env = cluster.env
    result = LatencyResult()

    def runner():
        for thunk in thunks:
            start = env.now
            yield from thunk()
            result.histogram.observe(env.now - start)

    process = env.process(runner())
    env.run(until=process)
    return result


def training_run(cluster, clients, files, num_gpus, batch_size,
                 compute_us_per_batch, rng=None):
    """MLPerf-Storage-style training epoch; returns mean accelerator
    utilization across GPUs (0..1).

    Each simulated GPU prefetches its next batch (parallel file reads via
    its client) while computing on the current one; AU is the fraction of
    wall time spent computing.  Files are consumed from one shared,
    shuffled epoch list (each file read exactly once — §2.2's random
    traversal pattern).
    """
    env = cluster.env
    order = list(files)
    if rng is not None:
        rng.shuffle(order)
    iterator = iter(order)
    utilizations = []

    def take_batch():
        batch = []
        for _ in range(batch_size):
            try:
                batch.append(next(iterator))
            except StopIteration:
                break
        return batch

    def fetch(client, batch):
        reads = [env.process(client.read_file(path)) for path in batch]
        yield env.all_of(reads)

    def gpu(index):
        client = clients[index % len(clients)]
        batch = take_batch()
        if not batch:
            return
        inflight = env.process(fetch(client, batch))
        yield inflight  # initial prefetch: excluded from the AU window
        start = env.now
        compute_total = 0.0
        nxt = take_batch()
        inflight = env.process(fetch(client, nxt)) if nxt else None
        while True:
            yield env.schedule_timeout(compute_us_per_batch)
            compute_total += compute_us_per_batch
            if inflight is None:
                break
            yield inflight
            nxt = take_batch()
            inflight = env.process(fetch(client, nxt)) if nxt else None
        elapsed = env.now - start
        if elapsed > 0:
            utilizations.append(compute_total / elapsed)

    gpus = [env.process(gpu(i)) for i in range(num_gpus)]
    env.run(until=env.all_of(gpus))
    if not utilizations:
        return 1.0
    return sum(utilizations) / len(utilizations)
