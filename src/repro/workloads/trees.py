"""Directory tree specifications and generators."""

from repro.vfs.pathwalk import join_path


class TreeSpec:
    """A directory tree: ordered dirs (parents first) and sized files."""

    def __init__(self, name="tree"):
        self.name = name
        self.dirs = []
        self.files = []
        self._seen_dirs = set()

    def add_dir(self, path):
        if path not in self._seen_dirs and path != "/":
            self._seen_dirs.add(path)
            self.dirs.append(path)
        return path

    def add_file(self, path, size=0):
        self.files.append((path, size))
        return path

    def file_paths(self):
        return [path for path, _ in self.files]

    @property
    def num_dirs(self):
        return len(self.dirs)

    @property
    def num_files(self):
        return len(self.files)

    def __repr__(self):
        return "<TreeSpec {} dirs={} files={}>".format(
            self.name, self.num_dirs, self.num_files
        )


def uniform_tree(levels=4, dir_fanout=4, files_per_leaf=10,
                 file_size=64 * 1024, root="/data", unique_names=True):
    """The traversal experiment's tree (§6.4, scaled).

    ``levels`` levels of directories, each intermediate directory with
    ``dir_fanout`` subdirectories, each last-level directory holding
    ``files_per_leaf`` files.  The paper's configuration (8 levels, fanout
    10, 10 files per leaf: 11.1 M dirs, 100 M files) is a scaled-up
    instance of the same shape.

    With ``unique_names`` every file name is globally unique (the common
    DL-dataset convention); otherwise leaf files reuse the same names in
    every directory (a hot-filename corner case).
    """
    if levels < 1:
        raise ValueError("levels must be >= 1")
    tree = TreeSpec("uniform-{}x{}".format(levels, dir_fanout))
    tree.add_dir(root)
    level_dirs = [root]
    for level in range(levels):
        next_dirs = []
        for parent in level_dirs:
            for child in range(dir_fanout):
                path = tree.add_dir(join_path(parent, "d{}".format(child)))
                next_dirs.append(path)
        level_dirs = next_dirs
    serial = 0
    for leaf in level_dirs:
        for i in range(files_per_leaf):
            if unique_names:
                name = "f{:08d}.dat".format(serial)
            else:
                name = "f{:04d}.dat".format(i)
            serial += 1
            tree.add_file(join_path(leaf, name), file_size)
    return tree


def private_dirs_tree(num_dirs, files_per_dir, file_size=64 * 1024,
                      root="/bench"):
    """Per-thread private directories (the §6.2/§6.3 best-case layout)."""
    tree = TreeSpec("private-{}x{}".format(num_dirs, files_per_dir))
    tree.add_dir(root)
    serial = 0
    for d in range(num_dirs):
        directory = tree.add_dir(join_path(root, "t{:04d}".format(d)))
        for _ in range(files_per_dir):
            tree.add_file(
                join_path(directory, "f{:08d}.dat".format(serial)), file_size
            )
            serial += 1
    return tree


def flat_burst_tree(num_dirs, files_per_dir, file_size=64 * 1024,
                    root="/burst"):
    """Many flat directories for the burst experiments (§6.5)."""
    tree = TreeSpec("burst-{}x{}".format(num_dirs, files_per_dir))
    tree.add_dir(root)
    serial = 0
    for d in range(num_dirs):
        directory = tree.add_dir(join_path(root, "dir{:05d}".format(d)))
        for _ in range(files_per_dir):
            tree.add_file(
                join_path(directory, "f{:08d}.dat".format(serial)), file_size
            )
            serial += 1
    return tree
