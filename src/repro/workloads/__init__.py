"""Workload generators and load drivers for the evaluation.

* :mod:`repro.workloads.trees` — directory-tree specifications: the
  uniform trees of the traversal experiments and private-directory
  metadata stress layouts.
* :mod:`repro.workloads.datasets` — synthetic directory structures with
  the shapes of the paper's Table 3 workloads (production labeling,
  ImageNet, KITTI, Cityscapes, CelebA, SVHN, CUB-200, the Linux source
  tree, FSL homes).
* :mod:`repro.workloads.driver` — closed-loop throughput driver, latency
  probes, burst access, the labeling-trace replay and the MLPerf-style
  training loop.
"""

from repro.workloads.datasets import TABLE3_WORKLOADS, dataset_tree
from repro.workloads.driver import (
    LatencyResult,
    ThroughputResult,
    measure_latency,
    run_closed_loop,
    training_run,
)
from repro.workloads.trees import TreeSpec, private_dirs_tree, uniform_tree

__all__ = [
    "LatencyResult",
    "TABLE3_WORKLOADS",
    "ThroughputResult",
    "TreeSpec",
    "dataset_tree",
    "measure_latency",
    "private_dirs_tree",
    "run_closed_loop",
    "training_run",
    "uniform_tree",
]
