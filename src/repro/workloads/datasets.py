"""Synthetic directory structures with the Table 3 workload shapes.

The paper measures inode distribution for nine directory structures: a
production labeling dataset, six popular open-source image datasets, the
Linux 6.8 source tree and the FSL homes traces.  The real datasets are not
redistributable here, so each generator reproduces the property that
matters for hybrid indexing: the *filename frequency distribution* and the
directory shape (large DL directories with mostly-unique names; the Linux
tree's hot ``Makefile``/``Kconfig`` names; FSL homes' Zipf-like name
reuse).  File counts default to the paper's (Table 3 column "inode #"),
scalable via ``scale`` for quick runs.
"""

import math

from repro.vfs.pathwalk import join_path
from repro.workloads.trees import TreeSpec


def _scaled(count, scale):
    return max(1, int(round(count * scale)))


def labeling_task(scale=1.0):
    """Production labeling dataset: ~33 k objects grouped by timestamp /
    vehicle / camera, names globally unique."""
    tree = TreeSpec("labeling")
    root = tree.add_dir("/labeling")
    total = _scaled(33000, scale)
    vehicles, cameras = 8, 5
    per_dir = max(1, total // (vehicles * cameras))
    serial = 0
    for vehicle in range(vehicles):
        vdir = tree.add_dir(join_path(root, "vehicle{:02d}".format(vehicle)))
        for camera in range(cameras):
            cdir = tree.add_dir(join_path(vdir, "cam{}".format(camera)))
            for i in range(per_dir):
                name = "v{:02d}c{}_{:08d}.jpg".format(vehicle, camera, serial)
                tree.add_file(join_path(cdir, name), 256 * 1024)
                serial += 1
    return tree


def imagenet(scale=1.0):
    """ImageNet: ~1000 synset directories, unique names per file."""
    tree = TreeSpec("imagenet")
    root = tree.add_dir("/imagenet")
    train = tree.add_dir(join_path(root, "train"))
    total = _scaled(2027728, scale)
    synsets = max(1, min(1000, total // 100))
    per_dir = max(1, total // synsets)
    for synset in range(synsets):
        sdir = tree.add_dir(join_path(train, "n{:08d}".format(synset)))
        for i in range(per_dir):
            name = "n{:08d}_{}.JPEG".format(synset, i)
            tree.add_file(join_path(sdir, name), 112 * 1024)
    return tree


def kitti(scale=1.0):
    """KITTI: the same frame numbers repeat across modality directories."""
    tree = TreeSpec("kitti")
    root = tree.add_dir("/kitti")
    frames = _scaled(15003 // 6, scale)
    for split in ("training", "testing"):
        sdir = tree.add_dir(join_path(root, split))
        for modality, ext in (("image_2", "png"), ("velodyne", "bin"),
                              ("calib", "txt")):
            mdir = tree.add_dir(join_path(sdir, modality))
            for frame in range(frames):
                name = "{:06d}.{}".format(frame, ext)
                tree.add_file(join_path(mdir, name), 128 * 1024)
    return tree


def cityscapes(scale=1.0):
    """Cityscapes: city directories, globally unique frame names."""
    tree = TreeSpec("cityscapes")
    root = tree.add_dir("/cityscapes")
    img = tree.add_dir(join_path(root, "leftImg8bit"))
    total = _scaled(20022, scale)
    cities = 20
    per_city = max(1, total // cities)
    for city in range(cities):
        cdir = tree.add_dir(join_path(img, "city{:02d}".format(city)))
        for i in range(per_city):
            name = "city{:02d}_{:06d}_leftImg8bit.png".format(city, i)
            tree.add_file(join_path(cdir, name), 200 * 1024)
    return tree


def celeba(scale=1.0):
    """CelebA: one huge directory of sequentially numbered images."""
    tree = TreeSpec("celeba")
    root = tree.add_dir("/celeba")
    images = tree.add_dir(join_path(root, "img_align_celeba"))
    for i in range(_scaled(202599, scale)):
        tree.add_file(join_path(images, "{:06d}.jpg".format(i + 1)), 96 * 1024)
    return tree


def svhn(scale=1.0):
    """SVHN: three split directories reusing the same digit file names."""
    tree = TreeSpec("svhn")
    root = tree.add_dir("/svhn")
    per_split = _scaled(33402 // 3, scale)
    for split in ("train", "test", "extra"):
        sdir = tree.add_dir(join_path(root, split))
        for i in range(per_split):
            tree.add_file(join_path(sdir, "{}.png".format(i + 1)), 32 * 1024)
    return tree


def cub200(scale=1.0):
    """CUB-200-2011: 200 species directories, unique names."""
    tree = TreeSpec("cub200")
    root = tree.add_dir("/cub200")
    images = tree.add_dir(join_path(root, "images"))
    total = _scaled(12003, scale)
    species = 200
    per_dir = max(1, total // species)
    for s in range(species):
        sdir = tree.add_dir(
            join_path(images, "{:03d}.species".format(s + 1))
        )
        for i in range(per_dir):
            name = "Species_{:03d}_{:04d}.jpg".format(s + 1, i)
            tree.add_file(join_path(sdir, name), 160 * 1024)
    return tree


def linux_tree(scale=1.0):
    """The Linux 6.8 source tree shape: hot Makefile/Kconfig names.

    The paper reports 88,936 files with ``Makefile`` (2,945) and
    ``Kconfig`` (1,690) as the two hot names that need path-walk
    redirection; everything else is effectively unique.
    """
    tree = TreeSpec("linux")
    root = tree.add_dir("/linux-6.8")
    num_dirs = _scaled(2945, scale)
    kconfig_dirs = _scaled(1690, scale)
    total = _scaled(88936, scale)
    source_files = max(0, total - num_dirs - kconfig_dirs)
    per_dir = max(1, source_files // num_dirs)
    serial = 0
    for d in range(num_dirs):
        ddir = tree.add_dir(join_path(root, "subsys{:05d}".format(d)))
        tree.add_file(join_path(ddir, "Makefile"), 2 * 1024)
        if d < kconfig_dirs:
            tree.add_file(join_path(ddir, "Kconfig"), 4 * 1024)
        for _ in range(per_dir):
            tree.add_file(
                join_path(ddir, "src{:07d}.c".format(serial)), 16 * 1024
            )
            serial += 1
    return tree


def fsl_homes(scale=1.0):
    """FSL homes traces: Zipf-like filename reuse across home directories.

    The paper reports 655,177 files whose most frequent name occurs 8,112
    times (1.24 %) and needs one path-walk redirection entry.
    """
    tree = TreeSpec("fsl-homes")
    root = tree.add_dir("/homes")
    total = _scaled(655177, scale)
    hot_count = _scaled(8112, scale)
    # A small vocabulary of reused names with Zipf-ish frequencies.
    reused = []
    rank = 1
    remaining_hot = int(total * 0.25)
    while remaining_hot > 0 and rank <= 64:
        occurrences = max(1, int(hot_count / rank))
        reused.append((".bash_history" if rank == 1
                       else "common{:03d}.cfg".format(rank), occurrences))
        remaining_hot -= occurrences
        rank += 1
    num_homes = max(1, _scaled(400, math.sqrt(scale)))
    homes = [
        tree.add_dir(join_path(root, "user{:04d}".format(u)))
        for u in range(num_homes)
    ]
    placed = 0
    for name, occurrences in reused:
        for i in range(occurrences):
            home = homes[i % num_homes]
            sub = tree.add_dir(join_path(home, "d{:03d}".format(i % 37)))
            tree.add_file(join_path(sub, name), 8 * 1024)
            placed += 1
    serial = 0
    while placed < total:
        home = homes[serial % num_homes]
        tree.add_file(
            join_path(home, "file{:08d}.dat".format(serial)), 24 * 1024
        )
        serial += 1
        placed += 1
    return tree


#: Table 3's workload column, in paper order.
TABLE3_WORKLOADS = (
    ("Labeling task", labeling_task),
    ("ImageNet", imagenet),
    ("KITTI", kitti),
    ("Cityscapes", cityscapes),
    ("CelebA", celeba),
    ("SVHN", svhn),
    ("CUB-200-2011", cub200),
    ("Linux-6.8 code", linux_tree),
    ("FSL homes", fsl_homes),
)


def dataset_tree(name, scale=1.0):
    """Build a Table 3 workload by its display name."""
    for display, builder in TABLE3_WORKLOADS:
        if display == name:
            return builder(scale)
    raise KeyError("unknown Table 3 workload: {!r}".format(name))
