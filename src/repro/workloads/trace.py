"""Operation traces: capture, persistence, statistics and replay.

The paper's end-to-end evaluation replays a trace captured from the
production labeling environment (§6.8).  This module provides the
toolchain around such traces:

* :class:`TraceRecord` / :class:`Trace` — an ordered operation log with
  JSON-lines persistence, so traces can be shared and re-run;
* :class:`RecordingClient` — wraps any client (FalconFS or baseline) and
  records every operation it performs, including failures;
* :func:`replay` — drives a trace against a cluster with a closed-loop
  worker pool, preserving operation order per worker;
* :meth:`Trace.summary` — the op mix and size distribution (the numbers
  behind Fig 16a).
"""

import json

from repro.net.rpc import RpcError, RpcFailure
from repro.workloads.driver import run_closed_loop

#: Operations a trace may contain, with their argument fields.
TRACE_OPS = ("mkdir", "create", "write", "read", "getattr", "unlink",
             "rmdir", "rename", "chmod", "readdir")


class TraceRecord:
    """One traced operation."""

    __slots__ = ("op", "path", "size", "dst", "mode", "outcome")

    def __init__(self, op, path, size=None, dst=None, mode=None,
                 outcome="ok"):
        if op not in TRACE_OPS:
            raise ValueError("unknown trace op {!r}".format(op))
        self.op = op
        self.path = path
        self.size = size
        self.dst = dst
        self.mode = mode
        self.outcome = outcome

    def to_json(self):
        body = {"op": self.op, "path": self.path}
        for field in ("size", "dst", "mode", "outcome"):
            value = getattr(self, field)
            if value is not None and value != "ok":
                body[field] = value
        return json.dumps(body, sort_keys=True)

    @classmethod
    def from_json(cls, line):
        body = json.loads(line)
        return cls(
            body["op"], body["path"], body.get("size"),
            body.get("dst"), body.get("mode"), body.get("outcome", "ok"),
        )

    def __repr__(self):
        return "<TraceRecord {} {}>".format(self.op, self.path)

    def __eq__(self, other):
        return isinstance(other, TraceRecord) and all(
            getattr(self, f) == getattr(other, f) for f in self.__slots__
        )


class Trace:
    """An ordered list of :class:`TraceRecord` with persistence."""

    def __init__(self, records=None):
        self.records = list(records or [])

    def append(self, record):
        self.records.append(record)

    def __len__(self):
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    def save(self, path):
        """Write the trace as JSON lines."""
        with open(path, "w") as handle:
            for record in self.records:
                handle.write(record.to_json() + "\n")

    @classmethod
    def load(cls, path):
        with open(path) as handle:
            return cls(
                TraceRecord.from_json(line)
                for line in handle if line.strip()
            )

    def summary(self):
        """Operation mix and write/read size statistics."""
        ops = {}
        sizes = []
        for record in self.records:
            ops[record.op] = ops.get(record.op, 0) + 1
            if record.size is not None:
                sizes.append(record.size)
        stats = {"ops": ops, "total": len(self.records)}
        if sizes:
            ordered = sorted(sizes)
            stats["size_bytes"] = {
                "min": ordered[0],
                "median": ordered[len(ordered) // 2],
                "max": ordered[-1],
                "total": sum(sizes),
            }
        return stats


class RecordingClient:
    """A client proxy that records every operation into a trace.

    Wraps any object implementing the shared client API (FalconClient or
    BaselineClient); operations still execute normally, and the record's
    ``outcome`` captures the errno name on failure.
    """

    def __init__(self, client, trace=None):
        self.client = client
        self.trace = trace if trace is not None else Trace()

    def _record(self, op, path, size=None, dst=None, mode=None):
        def wrap(generator):
            outcome = "ok"
            try:
                result = yield from generator
            except RpcFailure as failure:
                outcome = RpcError.name(failure.code)
                raise
            finally:
                self.trace.append(TraceRecord(
                    op, path, size=size, dst=dst, mode=mode,
                    outcome=outcome,
                ))
            return result

        return wrap

    def mkdir(self, path, mode=0o755):
        return self._record("mkdir", path, mode=mode)(
            self.client.mkdir(path, mode))

    def create(self, path, mode=0o644, exclusive=True):
        return self._record("create", path, mode=mode)(
            self.client.create(path, mode, exclusive))

    def write_file(self, path, size, mode=0o644, exclusive=True):
        return self._record("write", path, size=size)(
            self.client.write_file(path, size, mode, exclusive))

    def read_file(self, path):
        return self._record("read", path)(self.client.read_file(path))

    def getattr(self, path):
        return self._record("getattr", path)(self.client.getattr(path))

    def unlink(self, path):
        return self._record("unlink", path)(self.client.unlink(path))

    def rmdir(self, path):
        return self._record("rmdir", path)(self.client.rmdir(path))

    def rename(self, src, dst):
        return self._record("rename", src, dst=dst)(
            self.client.rename(src, dst))

    def chmod(self, path, mode):
        return self._record("chmod", path, mode=mode)(
            self.client.chmod(path, mode))

    def readdir(self, path):
        return self._record("readdir", path)(self.client.readdir(path))


def _apply(client, record):
    """Generator executing one trace record against ``client``."""
    op = record.op
    if op == "mkdir":
        yield from client.mkdir(record.path, record.mode or 0o755)
    elif op == "create":
        yield from client.create(record.path, record.mode or 0o644,
                                 exclusive=False)
    elif op == "write":
        yield from client.write_file(record.path, record.size or 0,
                                     exclusive=False)
    elif op == "read":
        yield from client.read_file(record.path)
    elif op == "getattr":
        yield from client.getattr(record.path)
    elif op == "unlink":
        yield from client.unlink(record.path)
    elif op == "rmdir":
        yield from client.rmdir(record.path)
    elif op == "rename":
        yield from client.rename(record.path, record.dst)
    elif op == "chmod":
        yield from client.chmod(record.path, record.mode)
    elif op == "readdir":
        yield from client.readdir(record.path)


def replay(cluster, client, trace, num_threads=1, tolerate_errors=True):
    """Replay ``trace`` against ``client``; returns a ThroughputResult.

    With ``num_threads == 1`` the trace replays in exact order;
    multi-threaded replay preserves only dispatch order (the paper's
    trace replay is similarly concurrent).  Records whose original
    outcome was a failure are tolerated by default.
    """
    thunks = [
        (lambda record=record: _apply(client, record))
        for record in trace
    ]
    return run_closed_loop(cluster, thunks, num_threads=num_threads,
                           raise_errors=not tolerate_errors)
