"""The simulated backend of the environment contract.

:class:`SimEnv` *is* the discrete-event kernel: a trivial subclass of
:class:`repro.sim.engine.Environment`, which already implements the full
contract of :mod:`repro.runtime.api`.  The subclass exists so call sites
outside the simulator (cluster builders, experiments, tests) can say
"give me the simulated environment" without importing
``repro.sim.engine`` — the import-boundary lint allows ``repro.runtime``
everywhere and confines ``repro.sim`` to the kernel, the checker and the
fault machinery.

Nothing is overridden: constructing a ``SimEnv`` instead of an
``Environment`` changes no heap entry, no sequence number, no trace —
the golden-trace tests run through this class.
"""

from repro.sim.engine import Environment


class SimEnv(Environment):
    """Discrete-event environment (the reference implementation)."""

    __slots__ = ()
