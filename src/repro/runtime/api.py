"""The environment contract: one protocol implementation, two clocks.

Every protocol layer in this repository — client, MNode, coordinator,
replication, WAL, transport — is written as generator "processes" that
``yield`` handles obtained from an *environment*.  The environment owns
the clock, the scheduler and the concurrency primitives; the protocol
code never imports a particular kernel.  Two backends implement the
contract:

* :class:`~repro.runtime.sim_env.SimEnv` — the discrete-event simulator
  (:mod:`repro.sim.engine`).  Time is virtual microseconds, every cost in
  :class:`~repro.net.costs.CostModel` is charged as simulated delay, and
  runs are bit-for-bit deterministic (the golden traces pin this down).
  The DES remains the reference implementation: fault injection, the
  nemesis schedules and ``repro.check`` exist only here.
* :class:`~repro.runtime.aio.AsyncioEnv` — a real asyncio event loop.
  Time is the monotonic wall clock in microseconds, sleeps are real
  sleeps, and the fabric is real length-prefixed JSON-RPC over TCP
  sockets (:mod:`repro.runtime.net`).  Modeled hardware costs are *not*
  charged (``models_costs`` is False): real work takes real time.

The contract (duck-typed; this class is documentation and a guard rail,
not a required base):

======================  =================================================
``now`` / ``now_us()``  current time in microseconds (float)
``event()``             fresh pending event: ``succeed(v)`` / ``fail(e)``
                        triggers it; waiters ``yield`` it; ``defused``
                        suppresses unhandled-failure propagation
``timeout(us, v)``      event firing ``us`` microseconds from now
``sleep(us)`` /
``schedule_timeout``    bare timeout (fast path; no value, no callbacks)
``process(gen)`` /
``spawn(gen)``          drive a generator as a process; the handle is
                        itself an event (yieldable), with ``is_alive``
                        and ``interrupt(cause)``
``all_of(events)``      event firing when every child fired
``any_of(events)``      event firing at the first child
``resource(capacity)``  capacity-limited FIFO resource (CPU cores, ...)
``store()``             unbounded FIFO with blocking ``get``
``fsync(cost_us, n)``   durability barrier: an event that fires when a
                        WAL batch of ``n`` bytes is on stable storage
                        (simulated fsync latency, or a real file fsync)
``clock(name)``         per-node :class:`ClockView` — what ``name``'s
                        local clock reads.  Identity until skewed by the
                        gray-failure injector; all node-local deadline
                        and heartbeat arithmetic goes through it
``models_costs``        True when CostModel delays must be charged
``cooperative``         True when zero-delay loops must still yield to
                        the scheduler (real event loops starve without
                        it; the DES must *not* see extra events)
======================  =================================================

:class:`Interrupt` is the cancellation signal both kernels throw into a
process at its current ``yield`` (deadline watchdogs use it), and
:class:`EnvError` is the base for kernel-misuse errors (the simulator's
``SimulationError`` subclasses it).
"""


class EnvError(Exception):
    """Kernel misuse or unhandled process failure (backend-agnostic)."""


class Interrupt(Exception):
    """Thrown into a process by ``process.interrupt(cause)``.

    The interrupted process receives this exception at its current
    ``yield`` statement and may handle it to implement timeouts or
    cancellation.  Shared by both backends so ``try/except Interrupt``
    in protocol code is environment-independent.
    """

    def __init__(self, cause=None):
        super().__init__(cause)

    @property
    def cause(self):
        """The object passed to ``interrupt()``."""
        return self.args[0]


class ClockView:
    """What one node's local clock reads — the gray-failure skew surface.

    Every node gets a view via ``env.clock(name)``; node-local time
    arithmetic (op deadlines, RPC watchdog remaining-time, heartbeat
    cadence) reads ``now_us()`` on the view instead of the environment.
    An unskewed view is an exact identity — it returns the environment's
    float unchanged, so runs without the skew nemesis stay bit-identical
    to runs that never heard of clock views.

    ``skew(offset_us, drift_ppm)`` anchors a linear transform at the
    current environment time: the node thereafter reads
    ``t + offset + (t - anchor) * drift_ppm * 1e-6``.  ``to_env_delay``
    converts a duration the node *intends* (its timers tick at the
    drifted rate) into environment microseconds.
    """

    __slots__ = ("env", "name", "offset_us", "drift_ppm", "_anchor_us")

    def __init__(self, env, name):
        self.env = env
        self.name = name
        self.offset_us = 0.0
        self.drift_ppm = 0.0
        self._anchor_us = 0.0

    @property
    def skewed(self):
        return self.offset_us != 0.0 or self.drift_ppm != 0.0

    def now_us(self):
        t = self.env.now_us()
        if self.offset_us == 0.0 and self.drift_ppm == 0.0:
            return t
        return t + self.offset_us + (t - self._anchor_us) * (
            self.drift_ppm * 1e-6)

    def to_env_delay(self, local_delay_us):
        """Environment duration of a ``local_delay_us``-long local timer."""
        if self.drift_ppm == 0.0:
            return local_delay_us
        return local_delay_us / (1.0 + self.drift_ppm * 1e-6)

    def skew(self, offset_us=0.0, drift_ppm=0.0):
        """Install a skew anchored at the current environment time."""
        self._anchor_us = self.env.now_us()
        self.offset_us = offset_us
        self.drift_ppm = drift_ppm

    def reset(self):
        self.offset_us = 0.0
        self.drift_ppm = 0.0
        self._anchor_us = 0.0


class Env:
    """Documentation base class for environment backends.

    Backends are duck-typed — protocol code never isinstance-checks —
    but the two defaults declared here mean a backend only overrides
    what differs from the simulator's semantics.
    """

    #: Charge :class:`~repro.net.costs.CostModel` delays as time.
    models_costs = True
    #: Yield to the scheduler even for zero-delay backoffs.
    cooperative = False

    def now_us(self):
        """Current time in microseconds."""
        raise NotImplementedError

    def sleep(self, delay_us):
        """A bare yieldable timeout ``delay_us`` microseconds long."""
        raise NotImplementedError

    def spawn(self, generator):
        """Drive ``generator`` as a concurrent process; returns the
        process handle (yieldable, ``is_alive``, ``interrupt()``)."""
        raise NotImplementedError

    def resource(self, capacity=1):
        """A capacity-limited FIFO resource bound to this environment."""
        raise NotImplementedError

    def store(self):
        """An unbounded FIFO buffer bound to this environment."""
        raise NotImplementedError

    def fsync(self, cost_us, nbytes=0):
        """A yieldable durability barrier for one WAL flush batch."""
        raise NotImplementedError

    def clock(self, name):
        """The :class:`ClockView` for node ``name`` (created on demand)."""
        clocks = getattr(self, "_clocks", None)
        if clocks is None:
            clocks = self._clocks = {}
        view = clocks.get(name)
        if view is None:
            view = clocks[name] = ClockView(self, name)
        return view

    def clock_views(self):
        """All clock views handed out so far (for heal/reset sweeps)."""
        clocks = getattr(self, "_clocks", None)
        return list(clocks.values()) if clocks else []
