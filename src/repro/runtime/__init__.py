"""Environment abstraction: one protocol implementation, two clocks.

``repro.runtime.api`` defines the contract (and is import-cycle-free);
the backends load lazily because :mod:`repro.sim.engine` itself imports
``repro.runtime.api`` — an eager ``from .sim_env import SimEnv`` here
would re-enter a partially initialized package when the import chain
starts from ``repro.sim``.
"""

from repro.runtime.api import Env, EnvError, Interrupt

__all__ = ["AsyncioEnv", "Env", "EnvError", "Interrupt", "SimEnv"]

_LAZY = {
    "SimEnv": "repro.runtime.sim_env",
    "AsyncioEnv": "repro.runtime.aio",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(
            "module {!r} has no attribute {!r}".format(__name__, name)
        )
    import importlib

    return getattr(importlib.import_module(module_name), name)
