"""Real TCP fabric for the asyncio serving mode.

:class:`AioNetwork` extends the in-memory :class:`~repro.net.transport.
Network` with remote delivery: nodes registered in *this* process are
reached through the parent's local path (next scheduler tick — modeled
hop latency is a simulation concern), while names listed in the peer map
go over persistent TCP connections carrying the length-prefixed JSON
frames of :mod:`repro.runtime.wire`.

The RPC surface is unchanged: protocol code still calls ``node.call`` /
``node.respond`` against event-shaped reply handles.  For an outbound
remote call the local reply event is resolved when the matching reply
frame arrives; for an inbound request the reconstructed message carries
a :class:`_RemoteReply` shim whose ``succeed``/``fail`` write the reply
frame back on the originating connection.

Deadlines cross the clock boundary as *remaining* microseconds and are
re-anchored on the receiver's monotonic clock (absolute timestamps from
another machine are meaningless).  The simulator's fault machinery
(``set_down``, partitions) stays sim-only: a vanished peer here is a
really-vanished TCP connection, and the deadline/retry machinery — the
same code that survives simulated black holes — handles it.
"""

import asyncio
from itertools import count

from repro.net.message import Message
from repro.net.rpc import RpcFailure
from repro.net.transport import Network
from repro.obs.context import OpContext
from repro.runtime import wire


class _RemoteReply:
    """Reply handle for a request that arrived over a socket.

    Quacks like the subset of the event API that ``Node.respond`` /
    ``respond_error`` touch: ``succeed`` and ``fail`` serialize the
    outcome onto the originating connection.  One-way messages
    (``rid is None``) swallow the reply, mirroring ``reply_to=None``
    semantics — except the protocol always responds via ``respond``,
    which checks ``reply_to is None`` first, so this shim is only
    installed when a reply is expected.
    """

    __slots__ = ("_conn", "_rid", "defused", "_done")

    def __init__(self, conn, rid):
        self._conn = conn
        self._rid = rid
        self.defused = False
        self._done = False

    def succeed(self, value=None, priority=None):
        if self._done:
            return self
        self._done = True
        self._conn.write_frame(wire.encode_reply(self._rid, value))
        return self

    def fail(self, exception, priority=None):
        if self._done:
            return self
        self._done = True
        if not isinstance(exception, RpcFailure):
            exception = RpcFailure(5, repr(exception))  # EIO
        self._conn.write_frame(
            wire.encode_reply_error(self._rid, exception)
        )
        return self


class _Connection:
    """One live peer connection (either direction) with its reader task."""

    __slots__ = ("network", "reader", "writer", "task", "closed")

    def __init__(self, network, reader, writer):
        self.network = network
        self.reader = reader
        self.writer = writer
        self.closed = False
        self.task = network.env._loop.create_task(self._read_loop())

    def write_frame(self, doc):
        if self.closed:
            return
        try:
            self.writer.write(wire.pack_frame(doc))
        except (ConnectionError, OSError):
            self.close()

    async def _read_loop(self):
        while True:
            doc = await wire.read_frame(self.reader)
            if doc is None:
                break
            self.network._on_frame(self, doc)
        self.close()

    def close(self):
        if self.closed:
            return
        self.closed = True
        try:
            self.writer.close()
        except (ConnectionError, OSError):
            pass


class AioNetwork(Network):
    """TCP-backed fabric: local nodes in-process, peers over sockets."""

    def __init__(self, env, costs, peers=None):
        super().__init__(env, costs)
        #: name -> (host, port) for every remote endpoint.
        self.peers = dict(peers or {})
        self._rids = count(1)
        #: rid -> pending local reply event for outbound calls.
        self._pending = {}
        #: peer name -> established _Connection.
        self._conns = {}
        #: peer name -> list of frames queued while dialing.
        self._dialing = {}
        self._server = None

    # -- lifecycle -------------------------------------------------------

    async def start(self, host, port):
        """Listen for inbound peer connections."""
        self._server = await asyncio.start_server(
            self._on_inbound, host, port
        )

    async def close(self):
        for conn in list(self._conns.values()):
            conn.close()
        self._conns.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    def _on_inbound(self, reader, writer):
        # Inbound connections are anonymous until their first frame; they
        # are tracked only for reply routing (the _RemoteReply holds the
        # connection), never dialed through.
        _Connection(self, reader, writer)

    # -- sending ---------------------------------------------------------

    def send(self, message):
        if message.recipient in self._nodes:
            super().send(message)
            return
        if message.recipient not in self.peers:
            raise RpcFailure(
                5, "unknown endpoint: {}".format(message.recipient)
            )
        self._messages.inc(message.kind)
        self._bytes.inc(message.kind, message.size)
        rid = None
        if message.reply_to is not None:
            rid = next(self._rids)
            self._pending[rid] = message.reply_to
        remaining = None
        ctx = message.ctx
        if ctx is not None and ctx.deadline is not None:
            remaining = ctx.deadline - self.env.now_us()
        self._transmit(message.recipient,
                       wire.encode_request(rid, message, remaining))

    def _transmit(self, peer, doc):
        conn = self._conns.get(peer)
        if conn is not None and not conn.closed:
            conn.write_frame(doc)
            return
        queue = self._dialing.get(peer)
        if queue is not None:
            queue.append(doc)
            return
        self._dialing[peer] = [doc]
        self.env._loop.create_task(self._dial(peer))

    async def _dial(self, peer):
        host, port = self.peers[peer]
        try:
            reader, writer = await asyncio.open_connection(host, port)
        except (ConnectionError, OSError):
            # The peer is unreachable: drop the queued frames.  Callers'
            # per-attempt timeouts turn the silence into ETIMEDOUT and
            # retries — exactly the simulated black-hole discipline.
            for doc in self._dialing.pop(peer, []):
                self._dropped.inc(doc.get("kind"))
            return
        conn = _Connection(self, reader, writer)
        self._conns[peer] = conn
        for doc in self._dialing.pop(peer, []):
            conn.write_frame(doc)

    # -- receiving -------------------------------------------------------

    def _on_frame(self, conn, doc):
        kind = doc.get("t")
        if kind == "rep":
            self._on_reply(doc)
        elif kind == "req":
            self._on_request(conn, doc)

    def _on_reply(self, doc):
        event = self._pending.pop(doc["id"], None)
        if event is None:
            return
        if event.callbacks is None:
            return  # already resolved (cannot happen: rids are unique)
        if doc["ok"]:
            event.succeed(wire.decode(doc["value"]))
        else:
            failure = RpcFailure(doc["code"], doc.get("detail"))
            # An abandoned reply (deadline fired first) arrives defused;
            # failing it then is a silent no-op at dispatch.
            event.fail(failure)

    def _on_request(self, conn, doc):
        recipient = doc["to"]
        node = self._nodes.get(recipient)
        if node is None:
            if doc["id"] is not None:
                conn.write_frame(wire.encode_reply_error(
                    doc["id"],
                    RpcFailure(5, "not served here: {}".format(recipient)),
                ))
            return
        ctx = None
        ctx_doc = doc.get("ctx")
        if ctx_doc is not None:
            deadline = None
            remaining = ctx_doc.get("remaining_us")
            if remaining is not None:
                deadline = self.env.now_us() + remaining
            ctx = OpContext(self.env, ctx_doc["op"],
                            origin=ctx_doc.get("origin"),
                            deadline=deadline)
            ctx.attempt = ctx_doc.get("attempt", 0)
        reply_to = None
        if doc["id"] is not None:
            reply_to = _RemoteReply(conn, doc["id"])
        message = Message(
            doc["from"], recipient, doc["kind"],
            payload=wire.decode(doc["payload"]),
            size=doc.get("size") or self.costs.rpc_request_bytes,
            reply_to=reply_to, ctx=ctx,
        )
        message.arrive_time = self.env.now
        node.deliver(message)
