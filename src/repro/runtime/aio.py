"""The real-time backend of the environment contract.

:class:`AsyncioEnv` mirrors the discrete-event kernel's process model —
generator processes yielding events, capacity resources, FIFO stores,
``Interrupt`` cancellation — on a real :mod:`asyncio` event loop with
the monotonic wall clock.  The protocol layers (client, MNode,
coordinator, replication, WAL) run here *unchanged*: the same
generators, the same ``yield`` points, the same exception flow.

Semantic mapping
----------------
==============================  =====================================
DES kernel                      AsyncioEnv
==============================  =====================================
heap pop at ``(time, seq)``     ``loop.call_soon`` / ``call_later``
``env.now`` (virtual µs)        monotonic clock µs since construction
``Timeout(delay)``              ``call_later(delay / 1e6, ...)``
``Process`` trampoline          same trampoline, loop-scheduled
``Interrupt`` at a ``yield``    same (thrown by the trampoline)
unhandled failed event          recorded in ``env.unhandled`` + raised
==============================  =====================================

Cost-model delays are **not** charged (``models_costs`` is False): in a
live deployment real work takes real time, and sleeping out simulated
CPU slices would only add artificial latency.  Timer-like delays —
retry backoff, request linger, heartbeats — *are* real sleeps.
``cooperative`` is True: zero-backoff retry loops yield to the loop so
a hot retry cannot starve the process's peers.

``fsync`` is a real durability barrier when the environment is given a
backing directory: the batch's bytes are appended to a log file and
``os.fsync``-ed on the loop's executor.  Without a directory it
degrades to a scheduler yield (durability modeling stays sim-only).
"""

import asyncio
import os
import time
from collections import deque

from repro.runtime.api import ClockView, EnvError, Interrupt

_PENDING = object()

#: Scheduling priorities, mirrored from the DES kernel for call-site
#: compatibility (real-time dispatch is FIFO; the values are accepted
#: and ignored).
URGENT = 0
NORMAL = 1


class AioEvent:
    """An occurrence on the real-time backend.

    API-compatible with :class:`repro.sim.engine.Event`: ``succeed`` /
    ``fail`` trigger it, waiters are resumed through ``callbacks``, and
    ``defused`` marks a consumed failure.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self.defused = False

    def __repr__(self):
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))

    @property
    def triggered(self):
        return self._value is not _PENDING

    @property
    def processed(self):
        return self.callbacks is None

    @property
    def ok(self):
        if self._ok is None:
            raise EnvError("event not yet triggered")
        return self._ok

    @property
    def value(self):
        if self._value is _PENDING:
            raise EnvError("event not yet triggered")
        return self._value

    def succeed(self, value=None, priority=NORMAL):
        if self._value is not _PENDING:
            raise EnvError("event already triggered: {!r}".format(self))
        self._ok = True
        self._value = value
        self.env._dispatch_soon(self)
        return self

    def fail(self, exception, priority=NORMAL):
        if not isinstance(exception, BaseException):
            raise EnvError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise EnvError("event already triggered: {!r}".format(self))
        self._ok = False
        self._value = exception
        self.env._dispatch_soon(self)
        return self


class AioTimeout(AioEvent):
    """An event that fires ``delay_us`` wall-clock microseconds later."""

    __slots__ = ("delay",)

    def __init__(self, env, delay_us, value=None):
        if delay_us < 0:
            raise EnvError("negative delay: {!r}".format(delay_us))
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay_us
        if delay_us <= 0:
            env._dispatch_soon(self)
        else:
            env._loop.call_later(delay_us / 1e6, env._dispatch, self)


class AioProcess(AioEvent):
    """Drives a generator, resuming it whenever a yielded event fires.

    The trampoline is the DES kernel's, verbatim in structure: the
    process is itself an event (yieldable by other processes), succeeds
    with the generator's return value or fails with its exception, and
    :meth:`interrupt` throws :class:`Interrupt` at the current yield.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw")

    def __init__(self, env, generator):
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise EnvError(
                "process() requires a generator, got {!r}".format(generator)
            ) from None
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self.defused = False
        self._generator = generator
        self._target = None
        start = AioEvent(env)
        start._ok = True
        start._value = None
        start.callbacks.append(self._resume)
        env._dispatch_soon(start)

    @property
    def is_alive(self):
        return self._value is _PENDING

    def interrupt(self, cause=None):
        if self._value is not _PENDING:
            raise EnvError("cannot interrupt dead process")
        env = self.env
        if env._active_process is self:
            raise EnvError("process cannot interrupt itself")
        event = AioEvent(env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        env._dispatch_soon(event)
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event):
        env = self.env
        env._active_process = self
        send = self._send
        throw = self._throw
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event.defused = True
                    target = throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc)
                return

            try:
                callbacks = target.callbacks
            except AttributeError:
                exc = EnvError(
                    "process yielded a non-event: {!r}".format(target)
                )
                env._active_process = None
                try:
                    throw(exc)
                except BaseException as err:
                    self.fail(err)
                    return
                raise exc

            if callbacks is None:
                event = target
                continue
            self._target = target
            callbacks.append(self._resume)
            break
        env._active_process = None


class _AioCondition(AioEvent):
    __slots__ = ("_events", "_pending_count")

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        self._pending_count = 0
        for event in self._events:
            if event.callbacks is None:
                self._observe(event)
            else:
                self._pending_count += 1
                event.callbacks.append(self._observe)

    def _observe(self, event):
        raise NotImplementedError


class AioAllOf(_AioCondition):
    """Fires when every child fired; value is the list of values."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, events)
        if not self._events and not self.triggered:
            self.succeed([])
        self._check()

    def _observe(self, event):
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending_count -= 1
        self._check()

    def _check(self):
        if (not self.triggered and self._pending_count == 0
                and self._events):
            self.succeed([event._value for event in self._events])


class AioAnyOf(_AioCondition):
    """Fires when the first child fires; value is that event's value."""

    __slots__ = ()

    def __init__(self, env, events):
        if not events:
            raise EnvError("AnyOf requires at least one event")
        super().__init__(env, events)

    def _observe(self, event):
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)


class AioRequest(AioEvent):
    """Event granted by :class:`AioResource.request`."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        super().__init__(resource.env)
        self.resource = resource


class AioResource:
    """Capacity-limited resource with FIFO granting (DES semantics)."""

    __slots__ = ("env", "capacity", "_users", "_waiters")

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise EnvError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users = set()
        self._waiters = deque()

    @property
    def count(self):
        return len(self._users)

    @property
    def queue_length(self):
        return len(self._waiters)

    def request(self):
        req = AioRequest(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, req):
        if req in self._users:
            self._users.remove(req)
        elif req in self._waiters:
            self._waiters.remove(req)
            return
        else:
            raise EnvError("release of a request not held: {!r}".format(req))
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            if nxt.triggered:
                continue
            self._users.add(nxt)
            nxt.succeed()


class AioStore:
    """Unbounded FIFO buffer with blocking ``get`` (DES semantics)."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env):
        self.env = env
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self):
        event = AioEvent(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            getters = self._getters
            if getters and getters[0].triggered:
                self._getters = getters = deque(
                    g for g in getters if not g.triggered
                )
            getters.append(event)
        return event

    def get_nowait(self):
        return self._items.popleft() if self._items else None

    def drain(self):
        items = list(self._items)
        self._items.clear()
        return items


class AsyncioEnv:
    """Real-time environment over a running asyncio event loop.

    Construct *inside* the loop (``asyncio.run`` / a running coroutine):
    node constructors spawn processes immediately.  ``wal_dir`` enables
    real fsync barriers — each named WAL gets an append-only file under
    it (see :meth:`fsync`).
    """

    models_costs = False
    cooperative = True

    def __init__(self, loop=None, wal_dir=None):
        self._loop = loop if loop is not None else asyncio.get_running_loop()
        self._t0 = time.monotonic()
        self._active_process = None
        #: Exceptions from failed events nobody waited on (and did not
        #: defuse).  Live services log these; tests assert emptiness.
        self.unhandled = []
        self.wal_dir = wal_dir
        self._wal_files = {}
        self._clocks = {}

    # -- clock -----------------------------------------------------------

    @property
    def now(self):
        """Microseconds of monotonic wall-clock since construction."""
        return (time.monotonic() - self._t0) * 1e6

    def now_us(self):
        return (time.monotonic() - self._t0) * 1e6

    def clock(self, name):
        """Per-node :class:`ClockView`; identity unless deliberately
        skewed (the live runtime never skews — real clocks drift on
        their own)."""
        view = self._clocks.get(name)
        if view is None:
            view = self._clocks[name] = ClockView(self, name)
        return view

    def clock_views(self):
        return list(self._clocks.values())

    # -- dispatch --------------------------------------------------------

    def _dispatch_soon(self, event):
        self._loop.call_soon(self._dispatch, event)

    def _dispatch(self, event):
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            self.unhandled.append(event._value)
            raise event._value

    # -- constructors ----------------------------------------------------

    def event(self):
        return AioEvent(self)

    def timeout(self, delay_us, value=None):
        return AioTimeout(self, delay_us, value)

    def schedule_timeout(self, delay_us):
        return AioTimeout(self, delay_us)

    def sleep(self, delay_us):
        return AioTimeout(self, delay_us)

    def process(self, generator):
        return AioProcess(self, generator)

    def spawn(self, generator):
        return AioProcess(self, generator)

    def all_of(self, events):
        return AioAllOf(self, events)

    def any_of(self, events):
        return AioAnyOf(self, events)

    def resource(self, capacity=1):
        return AioResource(self, capacity=capacity)

    def store(self):
        return AioStore(self)

    # -- durability ------------------------------------------------------

    def fsync(self, cost_us, nbytes=0, name="wal"):
        """Real durability barrier for one WAL flush batch.

        With a ``wal_dir``, appends ``nbytes`` to the named log file and
        ``os.fsync``-s it on the loop's executor; the returned event
        fires when the device confirms.  Without one, the barrier is a
        scheduler yield (no artificial modeled latency — see module
        docs).
        """
        if self.wal_dir is None:
            return AioTimeout(self, 0)
        done = AioEvent(self)
        handle = self._wal_file(name)

        def _sync():
            if nbytes > 0:
                os.write(handle, b"\x00" * int(nbytes))
            os.fsync(handle)

        future = self._loop.run_in_executor(None, _sync)

        def _finish(fut):
            exc = fut.exception()
            if exc is not None:
                done.fail(exc)
            else:
                done.succeed()

        future.add_done_callback(_finish)
        return done

    def _wal_file(self, name):
        handle = self._wal_files.get(name)
        if handle is None:
            os.makedirs(self.wal_dir, exist_ok=True)
            path = os.path.join(self.wal_dir, "{}.wal".format(name))
            handle = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND)
            self._wal_files[name] = handle
        return handle

    def close(self):
        for handle in self._wal_files.values():
            os.close(handle)
        self._wal_files.clear()

    # -- async integration ----------------------------------------------

    async def wait(self, event):
        """Await an environment event from native ``async`` code."""
        future = self._loop.create_future()

        def _done(ev):
            if future.cancelled():
                ev.defused = ev._ok is False or ev.defused
                return
            if ev._ok:
                future.set_result(ev._value)
            else:
                ev.defused = True
                future.set_exception(ev._value)

        if event.callbacks is None:
            _done(event)
        else:
            event.callbacks.append(_done)
        return await future

    async def run_process(self, generator):
        """Drive a protocol generator to completion; return its value."""
        return await self.wait(AioProcess(self, generator))
