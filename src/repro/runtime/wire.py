"""Length-prefixed JSON-RPC wire format for the real serving mode.

The simulator passes Python objects between nodes by reference; the
multi-process serving mode (:mod:`repro.serve`) must put the same
payloads on real TCP sockets.  This module defines:

* a **tagged-JSON codec** (:func:`encode` / :func:`decode`) covering the
  protocol's payload vocabulary beyond plain JSON — tuples (table keys),
  sets, non-string-keyed dicts, :class:`~repro.core.records.DentryRecord`
  and :class:`~repro.core.records.InodeRecord`;
* **framing**: each frame is a 4-byte big-endian length followed by that
  many bytes of UTF-8 JSON (:func:`pack_frame`, :func:`read_frame`);
* **message envelopes** mapping the in-memory RPC surface onto frames —
  requests carry the operation context with its deadline as *remaining*
  microseconds (re-anchored on the receiver's clock; absolute deadlines
  do not survive a clock boundary), replies carry either a payload or an
  :class:`~repro.net.rpc.RpcFailure` as ``{code, detail}``.

Tag collisions are impossible for protocol payloads: the tag key
``"__w"`` never appears in them, and a literal dict containing it would
be escaped through the ``"d"`` (pair-list) form anyway.
"""

import json
import struct

from repro.core.records import DentryRecord, InodeRecord

_TAG = "__w"
_LEN = struct.Struct(">I")

#: Frames above this size are refused — nothing in the metadata protocol
#: comes close; a larger frame means a corrupt or hostile peer.
MAX_FRAME = 64 * 1024 * 1024


class WireError(Exception):
    """Malformed frame or an unencodable payload object."""


def encode(obj):
    """Recursively convert ``obj`` into a JSON-representable structure."""
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    if isinstance(obj, (list, tuple)):
        items = [encode(item) for item in obj]
        if isinstance(obj, tuple):
            return {_TAG: "t", "v": items}
        return items
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _TAG not in obj:
            return {k: encode(v) for k, v in obj.items()}
        return {_TAG: "d", "v": [[encode(k), encode(v)]
                                 for k, v in obj.items()]}
    if isinstance(obj, (set, frozenset)):
        return {_TAG: "s", "v": sorted(encode(item) for item in obj)}
    if isinstance(obj, DentryRecord):
        return {_TAG: "dr", "v": [obj.ino, obj.mode, obj.uid, obj.gid,
                                  obj.state]}
    if isinstance(obj, InodeRecord):
        return {_TAG: "ir", "v": [obj.ino, obj.is_dir, obj.mode, obj.uid,
                                  obj.gid, obj.size, obj.mtime, obj.nlink]}
    raise WireError("unencodable object: {!r}".format(obj))


def decode(obj):
    """Inverse of :func:`encode`."""
    if isinstance(obj, list):
        return [decode(item) for item in obj]
    if not isinstance(obj, dict):
        return obj
    tag = obj.get(_TAG)
    if tag is None:
        return {k: decode(v) for k, v in obj.items()}
    value = obj["v"]
    if tag == "t":
        return tuple(decode(item) for item in value)
    if tag == "d":
        return {decode(k): decode(v) for k, v in value}
    if tag == "s":
        return set(decode(item) for item in value)
    if tag == "dr":
        return DentryRecord(*value)
    if tag == "ir":
        return InodeRecord(*value)
    raise WireError("unknown wire tag: {!r}".format(tag))


# -- framing -------------------------------------------------------------


def pack_frame(doc):
    """Serialize a JSON document into one length-prefixed frame."""
    body = json.dumps(doc, separators=(",", ":")).encode("utf-8")
    return _LEN.pack(len(body)) + body


async def read_frame(reader):
    """Read one frame from an ``asyncio.StreamReader``.

    Returns the decoded JSON document, or ``None`` on clean EOF at a
    frame boundary.
    """
    try:
        # IncompleteReadError (EOF mid-frame) subclasses EOFError; a torn
        # connection surfaces the same way as a clean close — the peer
        # retries or gives up at the RPC layer, not here.
        header = await reader.readexactly(_LEN.size)
        (length,) = _LEN.unpack(header)
        if length > MAX_FRAME:
            raise WireError("oversized frame: {} bytes".format(length))
        body = await reader.readexactly(length)
    except (EOFError, ConnectionError, OSError):
        return None
    return json.loads(body.decode("utf-8"))


# -- envelopes -----------------------------------------------------------


def encode_request(rid, message, remaining_us=None):
    """Envelope for a request (or one-way) message.

    ``rid`` is ``None`` for one-way sends (no reply expected).  The
    context rides along minimally: operation name, origin, attempt, and
    the deadline as remaining microseconds on the sender's clock.
    """
    ctx = message.ctx
    ctx_doc = None
    if ctx is not None and ctx.op is not None:
        ctx_doc = {"op": ctx.op, "origin": ctx.origin,
                   "attempt": ctx.attempt}
        if remaining_us is not None:
            ctx_doc["remaining_us"] = remaining_us
    return {
        "t": "req",
        "id": rid,
        "from": message.sender,
        "to": message.recipient,
        "kind": message.kind,
        "payload": encode(message.payload),
        "size": message.size,
        "ctx": ctx_doc,
    }


def encode_reply(rid, payload):
    return {"t": "rep", "id": rid, "ok": True, "value": encode(payload)}


def encode_reply_error(rid, failure):
    detail = failure.detail
    if detail is not None and not isinstance(detail, (str, int, float)):
        detail = repr(detail)
    return {"t": "rep", "id": rid, "ok": False,
            "code": failure.code, "detail": detail}
