"""Shared retry/backoff policy and deadline-enforced RPC.

Two helpers replace the ad-hoc retry loops that used to live at every
call site:

* :func:`retry` runs an attempt generator until it succeeds, backing off
  exponentially on retryable :class:`~repro.net.rpc.RpcFailure` codes
  (``ERETRY``, ``EREDIRECT``) according to the context's
  :class:`RetryPolicy`, and giving up with the last failure when the
  attempt budget is exhausted or the next backoff would overshoot the
  deadline.
* :func:`deadline_call` issues one RPC and enforces
  ``OpContext.deadline`` on it using the environment's
  :class:`~repro.runtime.api.Interrupt` machinery: a watchdog process
  interrupts the waiter at the deadline, the abandoned reply event is
  defused (a late error response must not crash the run), and the
  caller sees ``RpcFailure(ETIMEDOUT)``.

Both helpers speak only the :mod:`repro.runtime` contract, so the same
retry loops run under the discrete-event kernel and the asyncio backend.
"""

from repro.net.rpc import RpcError, RpcFailure
from repro.obs.tracer import CAT_RETRY
from repro.runtime import Interrupt

#: Codes the shared :func:`retry` helper treats as transient by default.
RETRYABLE = (RpcError.ERETRY, RpcError.EREDIRECT)

#: Sentinel passed as the interrupt cause by the deadline watchdog.
DEADLINE_EXPIRED = object()


class RetryPolicy:
    """Exponential backoff schedule: ``base * multiplier ** attempt``,
    capped at ``max_backoff_us``.  ``base_us == 0`` means retry
    immediately (no simulated delay — used where determinism matters,
    e.g. stale-replica refetches)."""

    __slots__ = ("max_attempts", "base_us", "multiplier", "max_backoff_us")

    def __init__(self, max_attempts=64, base_us=100.0, multiplier=2.0,
                 max_backoff_us=6400.0):
        self.max_attempts = max_attempts
        self.base_us = base_us
        self.multiplier = multiplier
        self.max_backoff_us = max_backoff_us

    def backoff_us(self, attempt):
        """Delay before attempt ``attempt + 1`` (attempt is 0-based)."""
        if self.base_us <= 0:
            return 0.0
        return min(self.max_backoff_us,
                   self.base_us * self.multiplier ** attempt)

    @classmethod
    def from_config(cls, config):
        return cls(
            max_attempts=config.retry_max_attempts,
            base_us=config.retry_backoff_us,
            multiplier=config.retry_backoff_multiplier,
            max_backoff_us=config.retry_backoff_max_us,
        )

    def __repr__(self):
        return "<RetryPolicy x{} {}us*{}^n<={}us>".format(
            self.max_attempts, self.base_us, self.multiplier,
            self.max_backoff_us,
        )


_DEFAULT_POLICY = RetryPolicy()


def retry(node, ctx, attempt_fn, policy=None, retryable=RETRYABLE):
    """Generator: drive ``attempt_fn`` to success with backoff.

    ``attempt_fn(attempt, hint)`` must be a generator function; ``hint``
    is the redirect destination from the previous ``EREDIRECT`` failure
    (``None`` otherwise).  Non-retryable failures propagate immediately;
    exhausting the budget re-raises the last retryable failure (so an
    ``ERETRY`` storm still surfaces as ``ERETRY`` to the caller).
    """
    if policy is None:
        policy = ctx.retry_policy or _DEFAULT_POLICY
    hint = None
    failure = None
    for attempt in range(policy.max_attempts):
        ctx.attempt = attempt
        try:
            result = yield from attempt_fn(attempt, hint)
            return result
        except RpcFailure as exc:
            if exc.code not in retryable:
                raise
            failure = exc
            hint = exc.detail if exc.code == RpcError.EREDIRECT else None
        delay = policy.backoff_us(attempt)
        if delay > 0:
            if (ctx.deadline is not None
                    and node.env.now_us() + delay >= ctx.deadline):
                raise RpcFailure(
                    RpcError.ETIMEDOUT,
                    "backoff past deadline ({})".format(failure),
                )
            with ctx.span("backoff", CAT_RETRY, node=node.name,
                          attrs={"attempt": attempt}
                          if ctx.traced else None):
                yield node.env.timeout(delay)
        elif node.env.cooperative:
            # Zero-backoff policies retry immediately.  The DES resumes
            # the attempt in the same instant with no extra heap entry;
            # a live event loop must still yield control, or a hot retry
            # (e.g. a stale-replica refetch racing an invalidation)
            # starves every other task on the loop.
            yield node.env.sleep(0)
    raise failure


def deadline_call(node, ctx, target, kind, payload=None, size=None,
                  timeout_us=None):
    """Generator: one RPC from ``node`` to ``target`` under the
    context's deadline.  Returns the reply payload; raises
    ``RpcFailure(ETIMEDOUT)`` at the deadline (without waiting for the
    straggling reply, whose event is defused so a late error cannot
    crash the run), or the responder's failure.

    ``timeout_us`` additionally bounds *this attempt*: the effective
    budget is ``min(deadline remaining, timeout_us)``.  A per-attempt
    timeout is what lets a retry loop survive a black-holed RPC (crashed
    or partitioned peer) without burning the whole operation deadline on
    a reply that will never come.
    """
    env = node.env
    if ctx.deadline is None and timeout_us is None:
        result = yield node.call(target, kind, payload, size, ctx=ctx)
        return result
    remaining = float("inf")
    if ctx.deadline is not None:
        remaining = ctx.deadline - env.now_us()
    if timeout_us is not None:
        remaining = min(remaining, timeout_us)
    if remaining <= 0:
        raise RpcFailure(
            RpcError.ETIMEDOUT, "{} to {} (not sent)".format(kind, target)
        )
    reply = node.call(target, kind, payload, size, ctx=ctx)
    waiter = env.process(_await(reply))
    watchdog = env.process(_watchdog(env, waiter, remaining))
    try:
        result = yield waiter
    except Interrupt:
        # The watchdog fired: abandon the in-flight RPC.  A late reply
        # now resolves an event nobody waits on; defusing it keeps a
        # late *error* response from surfacing as an unhandled failure.
        reply.defused = True
        raise RpcFailure(
            RpcError.ETIMEDOUT, "{} to {}".format(kind, target)
        ) from None
    except BaseException:
        if watchdog.is_alive:
            watchdog.interrupt()
        raise
    if watchdog.is_alive:
        watchdog.interrupt()
    return result


def _await(reply):
    result = yield reply
    return result


def _watchdog(env, victim, delay):
    try:
        yield env.timeout(delay)
    except Interrupt:
        return
    if victim.is_alive:
        victim.interrupt(DEADLINE_EXPIRED)
