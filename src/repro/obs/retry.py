"""Shared retry/backoff policy and deadline-enforced RPC.

Two helpers replace the ad-hoc retry loops that used to live at every
call site:

* :func:`retry` runs an attempt generator until it succeeds, backing off
  exponentially on retryable :class:`~repro.net.rpc.RpcFailure` codes
  (``ERETRY``, ``EREDIRECT``) according to the context's
  :class:`RetryPolicy`, and giving up with the last failure when the
  attempt budget is exhausted or the next backoff would overshoot the
  deadline.
* :func:`deadline_call` issues one RPC and enforces
  ``OpContext.deadline`` on it using the environment's
  :class:`~repro.runtime.api.Interrupt` machinery: a watchdog process
  interrupts the waiter at the deadline, the abandoned reply event is
  defused (a late error response must not crash the run), and the
  caller sees ``RpcFailure(ETIMEDOUT)``.

Both helpers speak only the :mod:`repro.runtime` contract, so the same
retry loops run under the discrete-event kernel and the asyncio backend.
"""

from repro.net.rpc import RpcError, RpcFailure
from repro.obs.tracer import CAT_RETRY
from repro.runtime import Interrupt

#: Codes the shared :func:`retry` helper treats as transient by default.
#: ENOTLEADER/ESTALE_TERM are retryable but — unlike EREDIRECT — carry
#: no destination hint: the retry loop clears the hint, so the next
#: attempt re-resolves the slot through the cluster directory instead
#: of blindly retrying the fenced (or deposed) node it just talked to.
#: EMOVED is retryable-with-hint of a third kind: its detail is an
#: epoch-stamped slot reassignment that the node's ``_on_moved_hint``
#: hook (clients patch their private slot map there) absorbs before the
#: re-resolve — the hint updates *state*, not the next attempt's target.
RETRYABLE = (RpcError.ERETRY, RpcError.EREDIRECT,
             RpcError.ENOTLEADER, RpcError.ESTALE_TERM, RpcError.EMOVED)

#: Sentinel passed as the interrupt cause by the deadline watchdog.
DEADLINE_EXPIRED = object()


class RetryPolicy:
    """Exponential backoff schedule: ``base * multiplier ** attempt``,
    capped at ``max_backoff_us``.  ``base_us == 0`` means retry
    immediately (no simulated delay — used where determinism matters,
    e.g. stale-replica refetches).

    ``jitter`` (a fraction in [0, 1], default 0) spreads each delay
    uniformly over ``[delay * (1 - jitter), delay]`` using the caller's
    seeded RNG, de-synchronizing retry storms after a mass invalidation
    or failover.  It is opt-in and draws only when both the fraction and
    an RNG are supplied, so default-configured runs (and the golden
    traces) never see a draw.
    """

    __slots__ = ("max_attempts", "base_us", "multiplier", "max_backoff_us",
                 "jitter")

    def __init__(self, max_attempts=64, base_us=100.0, multiplier=2.0,
                 max_backoff_us=6400.0, jitter=0.0):
        self.max_attempts = max_attempts
        self.base_us = base_us
        self.multiplier = multiplier
        self.max_backoff_us = max_backoff_us
        self.jitter = jitter

    def backoff_us(self, attempt, rng=None):
        """Delay before attempt ``attempt + 1`` (attempt is 0-based)."""
        if self.base_us <= 0:
            return 0.0
        delay = min(self.max_backoff_us,
                    self.base_us * self.multiplier ** attempt)
        if self.jitter > 0.0 and rng is not None:
            delay -= delay * self.jitter * rng.random()
        return delay

    @classmethod
    def from_config(cls, config):
        return cls(
            max_attempts=config.retry_max_attempts,
            base_us=config.retry_backoff_us,
            multiplier=config.retry_backoff_multiplier,
            max_backoff_us=config.retry_backoff_max_us,
            jitter=getattr(config, "retry_jitter", 0.0),
        )

    def __repr__(self):
        return "<RetryPolicy x{} {}us*{}^n<={}us j={}>".format(
            self.max_attempts, self.base_us, self.multiplier,
            self.max_backoff_us, self.jitter,
        )


_DEFAULT_POLICY = RetryPolicy()


def retry(node, ctx, attempt_fn, policy=None, retryable=RETRYABLE):
    """Generator: drive ``attempt_fn`` to success with backoff.

    ``attempt_fn(attempt, hint)`` must be a generator function; ``hint``
    is the redirect destination from the previous ``EREDIRECT`` failure
    (``None`` otherwise).  Non-retryable failures propagate immediately;
    exhausting the budget re-raises the last retryable failure (so an
    ``ERETRY`` storm still surfaces as ``ERETRY`` to the caller).  A
    budget of zero attempts surfaces as ``ERETRY`` too — there is no
    last failure to re-raise, and ``raise None`` would mask the real
    problem with a ``TypeError``.
    """
    if policy is None:
        policy = ctx.retry_policy or _DEFAULT_POLICY
    clock = getattr(node, "clock", None)
    rng = getattr(node, "retry_rng", None)
    hint = None
    failure = None
    for attempt in range(policy.max_attempts):
        ctx.attempt = attempt
        try:
            result = yield from attempt_fn(attempt, hint)
            return result
        except RpcFailure as exc:
            if exc.code not in retryable:
                raise
            failure = exc
            hint = exc.detail if exc.code == RpcError.EREDIRECT else None
            if (exc.code == RpcError.EMOVED
                    and isinstance(exc.detail, dict)):
                moved = getattr(node, "_on_moved_hint", None)
                if moved is not None:
                    moved(exc.detail)
        delay = policy.backoff_us(attempt, rng)
        if delay > 0:
            now = clock.now_us() if clock is not None else node.env.now_us()
            if ctx.deadline is not None and now + delay >= ctx.deadline:
                raise RpcFailure(
                    RpcError.ETIMEDOUT,
                    "backoff past deadline ({})".format(failure),
                )
            with ctx.span("backoff", CAT_RETRY, node=node.name,
                          attrs={"attempt": attempt}
                          if ctx.traced else None):
                # The node's timer hardware ticks at its (possibly
                # drifted) local rate; identity when unskewed.
                yield node.env.timeout(
                    delay if clock is None else clock.to_env_delay(delay))
        elif node.env.cooperative:
            # Zero-backoff policies retry immediately.  The DES resumes
            # the attempt in the same instant with no extra heap entry;
            # a live event loop must still yield control, or a hot retry
            # (e.g. a stale-replica refetch racing an invalidation)
            # starves every other task on the loop.
            yield node.env.sleep(0)
    if failure is None:
        raise RpcFailure(
            RpcError.ERETRY,
            "retry budget exhausted before any attempt "
            "(max_attempts={})".format(policy.max_attempts),
        )
    raise failure


def deadline_call(node, ctx, target, kind, payload=None, size=None,
                  timeout_us=None):
    """Generator: one RPC from ``node`` to ``target`` under the
    context's deadline.  Returns the reply payload; raises
    ``RpcFailure(ETIMEDOUT)`` at the deadline (without waiting for the
    straggling reply, whose event is defused so a late error cannot
    crash the run), or the responder's failure.

    ``timeout_us`` additionally bounds *this attempt*: the effective
    budget is ``min(deadline remaining, timeout_us)``.  A per-attempt
    timeout is what lets a retry loop survive a black-holed RPC (crashed
    or partitioned peer) without burning the whole operation deadline on
    a reply that will never come.
    """
    env = node.env
    if ctx.deadline is None and timeout_us is None:
        result = yield node.call(target, kind, payload, size, ctx=ctx)
        return result
    clock = getattr(node, "clock", None)
    remaining = float("inf")
    if ctx.deadline is not None:
        # Deadline math is node-local: a skewed clock makes this node
        # judge remaining budget early or late, exactly like production.
        now = clock.now_us() if clock is not None else env.now_us()
        remaining = ctx.deadline - now
    if timeout_us is not None:
        remaining = min(remaining, timeout_us)
    if remaining <= 0:
        raise RpcFailure(
            RpcError.ETIMEDOUT, "{} to {} (not sent)".format(kind, target)
        )
    reply = node.call(target, kind, payload, size, ctx=ctx)
    waiter = env.process(_await(reply))
    watchdog = env.process(_watchdog(
        env, waiter,
        remaining if clock is None else clock.to_env_delay(remaining)))
    try:
        result = yield waiter
    except Interrupt:
        # The watchdog fired: abandon the in-flight RPC.  A late reply
        # now resolves an event nobody waits on; defusing it keeps a
        # late *error* response from surfacing as an unhandled failure.
        reply.defused = True
        raise RpcFailure(
            RpcError.ETIMEDOUT, "{} to {}".format(kind, target)
        ) from None
    except BaseException:
        if watchdog.is_alive:
            watchdog.interrupt()
        raise
    if watchdog.is_alive:
        watchdog.interrupt()
    return result


def _await(reply):
    result = yield reply
    return result


def _watchdog(env, victim, delay):
    try:
        yield env.timeout(delay)
    except Interrupt:
        return
    if victim.is_alive:
        victim.interrupt(DEADLINE_EXPIRED)
