"""Spans, tracers and the JSONL trace sink.

A :class:`Span` is one timed interval attributed to an operation: a
network hop, a queue wait, a lock wait, a WAL flush, a disk IO, a CPU
slice, or a structural envelope (the operation root, an RPC attempt, a
merged batch).  Spans carry the simulated start/end time in microseconds
and arbitrary key/value attributes.

The :class:`Tracer` collects finished spans in memory and optionally
streams them to a :class:`JsonlSink` (one JSON object per line — the
schema is specified in ``docs/protocol.md``).  :data:`NULL_TRACER` is
the disabled tracer: every record call returns ``None`` without
allocating a span, so tracing is zero-cost when off.
"""

import json
from itertools import count

#: Span categories.  ``COMPONENT_CATEGORIES`` are leaf costs that the
#: breakdown analyzer sums per operation; the remaining categories are
#: structural envelopes (excluded from component sums to avoid double
#: counting).
CAT_OP = "op"          # root span of one client-visible operation
CAT_PHASE = "phase"    # envelope: rpc attempt, walk, sub-op, data phase
CAT_BATCH = "batch"    # root span of one merged server batch
CAT_NET = "net"        # wire time of one hop (request or response)
CAT_QUEUE = "queue"    # waiting in a request queue / for a CPU core
CAT_LOCK = "lock"      # waiting for a dentry/inode lock grant
CAT_WAL = "wal"        # waiting for a WAL group-commit flush
CAT_DISK = "disk"      # SSD service time on a storage node
CAT_CPU = "cpu"        # busy CPU time on some node
CAT_RETRY = "retry"    # client-side backoff between attempts

COMPONENT_CATEGORIES = (
    CAT_NET, CAT_QUEUE, CAT_LOCK, CAT_WAL, CAT_DISK, CAT_CPU, CAT_RETRY,
)


class Span:
    """One timed, attributed interval belonging to an operation."""

    __slots__ = ("tracer", "span_id", "op_id", "parent_id", "name",
                 "category", "node", "start", "end", "attrs")

    def __init__(self, tracer, span_id, op_id, parent_id, name, category,
                 node, start, attrs=None):
        self.tracer = tracer
        self.span_id = span_id
        self.op_id = op_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.node = node
        self.start = start
        self.end = None
        self.attrs = attrs

    @property
    def duration(self):
        """Span length in microseconds (0.0 while unfinished)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def annotate(self, **attrs):
        if self.attrs is None:
            self.attrs = {}
        self.attrs.update(attrs)

    def finish(self, now, **attrs):
        """Close the span at simulated time ``now`` and record it."""
        if self.end is not None:
            return self
        if attrs:
            self.annotate(**attrs)
        self.end = now
        self.tracer._finished(self)
        return self

    def to_dict(self):
        """The span's wire form (see docs/protocol.md)."""
        record = {
            "span": self.span_id,
            "op": self.op_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "node": self.node,
            "start": self.start,
            "end": self.end,
        }
        if self.attrs:
            record["attrs"] = self.attrs
        return record

    def __repr__(self):
        return "<Span #{} {} {} [{} - {}]>".format(
            self.span_id, self.category, self.name, self.start, self.end
        )


class Tracer:
    """Collects spans; the enabled counterpart of :data:`NULL_TRACER`."""

    enabled = True

    def __init__(self, sink=None):
        self.sink = sink
        #: Finished spans, in finish order.
        self.spans = []
        self._span_ids = count(1)

    def start(self, op_id, name, category, node, now, parent_id=None,
              attrs=None):
        """Open a span; close it with :meth:`Span.finish`."""
        return Span(self, next(self._span_ids), op_id, parent_id, name,
                    category, node, now, attrs)

    def record(self, op_id, name, category, node, start, end,
               parent_id=None, attrs=None):
        """Record an already-elapsed interval as one finished span."""
        span = self.start(op_id, name, category, node, start,
                          parent_id=parent_id, attrs=attrs)
        return span.finish(end)

    def _finished(self, span):
        self.spans.append(span)
        if self.sink is not None:
            self.sink.write(span.to_dict())

    def clear(self):
        self.spans = []

    def __len__(self):
        return len(self.spans)


class NullTracer:
    """Disabled tracer: no span is ever allocated."""

    enabled = False
    spans = ()

    def start(self, *args, **kwargs):
        return None

    def record(self, *args, **kwargs):
        return None

    def clear(self):
        pass

    def __len__(self):
        return 0


NULL_TRACER = NullTracer()


class JsonlSink:
    """Streams span records to a file, one JSON object per line."""

    def __init__(self, path_or_file):
        if hasattr(path_or_file, "write"):
            self._file = path_or_file
            self._owned = False
        else:
            self._file = open(path_or_file, "w")
            self._owned = True

    def write(self, record):
        self._file.write(json.dumps(record, sort_keys=True))
        self._file.write("\n")

    def close(self):
        if self._owned:
            self._file.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()


def load_spans(path_or_file):
    """Read span dicts back from a JSONL trace file."""
    if hasattr(path_or_file, "read"):
        return [json.loads(line) for line in path_or_file if line.strip()]
    with open(path_or_file) as handle:
        return [json.loads(line) for line in handle if line.strip()]
