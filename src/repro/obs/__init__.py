"""Observability: request-scoped contexts, tracing spans and retry policy.

The substrate every layer of the simulated cluster threads through:

* :class:`OpContext` — one per client-visible operation; carries the
  trace identity, the absolute deadline and the retry policy across
  every hop, from the POSIX entry point down to the WAL;
* :class:`Span` / :class:`Tracer` / :class:`JsonlSink` — distributed
  tracing with zero cost when disabled (:data:`NULL_TRACER` allocates
  no spans);
* :class:`RetryPolicy`, :func:`retry`, :func:`deadline_call` — the
  shared context-driven retry/backoff and deadline-enforcement helpers
  that replace per-call-site retry loops.
"""

from repro.obs.context import NULL_CONTEXT, OpContext
from repro.obs.retry import RETRYABLE, RetryPolicy, deadline_call, retry
from repro.obs.tracer import (
    CAT_CPU,
    CAT_DISK,
    CAT_LOCK,
    CAT_NET,
    CAT_OP,
    CAT_PHASE,
    CAT_QUEUE,
    CAT_RETRY,
    CAT_WAL,
    COMPONENT_CATEGORIES,
    JsonlSink,
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
)

__all__ = [
    "CAT_CPU",
    "CAT_DISK",
    "CAT_LOCK",
    "CAT_NET",
    "CAT_OP",
    "CAT_PHASE",
    "CAT_QUEUE",
    "CAT_RETRY",
    "CAT_WAL",
    "COMPONENT_CATEGORIES",
    "JsonlSink",
    "NULL_CONTEXT",
    "NULL_TRACER",
    "NullTracer",
    "OpContext",
    "RETRYABLE",
    "RetryPolicy",
    "Span",
    "Tracer",
    "deadline_call",
    "retry",
]
