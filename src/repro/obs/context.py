"""Request-scoped operation context.

One :class:`OpContext` is created per client-visible operation and rides
on every message the operation causes, across every hop, until the last
WAL flush.  It carries three things:

* the trace identity (``op_id`` plus the currently-open span, so spans
  recorded anywhere in the cluster parent correctly — safe because the
  simulation is single-threaded and cooperative: while the client
  generator is suspended inside an rpc span, everything the server does
  on its behalf happens "inside" that span);
* the absolute ``deadline`` (simulated microseconds; ``None`` = no
  deadline), enforced at each hop by :func:`repro.obs.retry.deadline_call`
  and checked server-side before expensive work;
* the :class:`~repro.obs.retry.RetryPolicy` consumed by the shared
  :func:`~repro.obs.retry.retry` helper.

When tracing is disabled the context still exists (deadline/retry state
must flow regardless) but every span call returns a shared no-op scope —
no allocation, no bookkeeping.
"""

from itertools import count

from repro.obs.tracer import CAT_OP, NULL_TRACER

_OP_IDS = count(1)


class _NullScope:
    """Shared no-op context manager returned when tracing is disabled."""

    __slots__ = ()
    span = None

    def __enter__(self):
        return None

    def __exit__(self, *exc):
        return False


_NULL_SCOPE = _NullScope()


class _SpanScope:
    """Context manager that opens a child span and restores the parent."""

    __slots__ = ("ctx", "span", "_prev")

    def __init__(self, ctx, span):
        self.ctx = ctx
        self.span = span
        self._prev = None

    def __enter__(self):
        self._prev = self.ctx.current
        self.ctx.current = self.span
        return self.span

    def __exit__(self, exc_type, exc, tb):
        self.ctx.current = self._prev
        if exc_type is not None:
            self.span.finish(self.ctx.env.now, error=repr(exc))
        else:
            self.span.finish(self.ctx.env.now)
        return False


class OpContext:
    """Per-operation identity, deadline and retry budget."""

    __slots__ = ("op_id", "op", "origin", "env", "tracer", "traced",
                 "deadline", "retry_policy", "attempt", "root", "current")

    def __init__(self, env, op, origin=None, tracer=NULL_TRACER,
                 deadline=None, retry_policy=None):
        self.op_id = next(_OP_IDS)
        self.op = op
        self.origin = origin
        self.env = env
        self.tracer = tracer
        #: Cached ``tracer.enabled`` — ``enabled`` is a class attribute on
        #: both tracer types, fixed for the tracer's lifetime, so hot call
        #: sites can gate span/attrs work on one attribute load.  Callers
        #: use it to skip building ``attrs`` dicts entirely when untraced.
        self.traced = tracer.enabled
        #: Absolute simulated time the operation must finish by, or None.
        self.deadline = deadline
        self.retry_policy = retry_policy
        #: Attempts consumed so far by the shared retry helper.
        self.attempt = 0
        self.root = None
        self.current = None

    # -- deadline ------------------------------------------------------------

    def remaining(self):
        """Microseconds until the deadline (``inf`` when none is set)."""
        if self.deadline is None:
            return float("inf")
        return self.deadline - self.env.now_us()

    def expired(self):
        return self.deadline is not None and self.env.now_us() >= self.deadline

    # -- spans ---------------------------------------------------------------

    def begin(self, node=None, attrs=None, category=CAT_OP):
        """Open the root span for this operation."""
        if not self.traced:
            return None
        self.root = self.tracer.start(
            self.op_id, self.op, category, node or self.origin,
            self.env.now, attrs=attrs,
        )
        self.current = self.root
        return self.root

    def finish(self, error=None):
        """Close the root span (no-op when tracing is disabled)."""
        if self.root is None:
            return None
        if error is not None:
            self.root.annotate(error=error)
        span = self.root.finish(self.env.now)
        self.current = None
        return span

    def start_span(self, name, category, node=None, attrs=None):
        """Open a child span of the currently-open span (or ``None``)."""
        if not self.traced:
            return None
        parent = self.current.span_id if self.current is not None else None
        return self.tracer.start(
            self.op_id, name, category, node or self.origin,
            self.env.now, parent_id=parent, attrs=attrs,
        )

    def record(self, name, category, start, end, node=None, attrs=None):
        """Record an already-elapsed interval under the current span."""
        if not self.traced:
            return None
        parent = self.current.span_id if self.current is not None else None
        return self.tracer.record(
            self.op_id, name, category, node or self.origin, start, end,
            parent_id=parent, attrs=attrs,
        )

    def span(self, name, category, node=None, attrs=None):
        """``with ctx.span(...):`` — child span scoped to the block."""
        if not self.traced:
            return _NULL_SCOPE
        return _SpanScope(self, self.start_span(name, category, node, attrs))

    def __repr__(self):
        return "<OpContext #{} {}>".format(self.op_id, self.op)


class _NullContext:
    """Module-level fallback for call sites with no live operation.

    Behaves like a context with tracing disabled, no deadline and no
    retry policy.  The retry helper's bookkeeping writes (``attempt``)
    land on the shared instance and are harmless.
    """

    op_id = 0
    op = None
    origin = None
    env = None
    tracer = NULL_TRACER
    traced = False
    deadline = None
    retry_policy = None
    attempt = 0
    root = None
    current = None

    def remaining(self):
        return float("inf")

    def expired(self):
        return False

    def begin(self, node=None, attrs=None):
        return None

    def finish(self, error=None):
        return None

    def start_span(self, name, category, node=None, attrs=None):
        return None

    def record(self, name, category, start, end, node=None, attrs=None):
        return None

    def span(self, name, category, node=None, attrs=None):
        return _NULL_SCOPE

    def __repr__(self):
        return "<NullContext>"


NULL_CONTEXT = _NullContext()
