"""RPC error codes shared by all simulated file systems.

Codes mirror the POSIX errnos the paper's operations can return, plus
protocol-internal conditions (redirects, stale exception tables).
"""

import errno


class RpcError:
    """Symbolic error codes carried by :class:`RpcFailure`."""

    ENOENT = errno.ENOENT
    EEXIST = errno.EEXIST
    ENOTEMPTY = errno.ENOTEMPTY
    EACCES = errno.EACCES
    ENOTDIR = errno.ENOTDIR
    EISDIR = errno.EISDIR
    EINVAL = errno.EINVAL
    #: The operation's deadline expired before a reply arrived.
    ETIMEDOUT = errno.ETIMEDOUT
    #: The receiving server is not responsible for this key; the payload
    #: carries the correct destination (used for stale exception tables).
    EREDIRECT = 1001
    #: Transient retry (e.g. inode blocked during migration).
    ERETRY = 1002
    #: The receiving replica is not the slot's current leader (its lease
    #: expired, it was fenced, or it never was one).  Carries no hint:
    #: the client must *re-resolve* leadership through the cluster
    #: directory rather than retry the same target.
    ENOTLEADER = 1003
    #: The message carried a consensus term older than the receiver's —
    #: the sender is a deposed leader (or a stale candidate) and must
    #: step down before anything it says can be believed.
    ESTALE_TERM = 1004
    #: The addressed directory slot migrated away from this node.  The
    #: detail carries ``{"slot", "node", "epoch"}`` — the destination
    #: node index and the slot-map epoch that installed it — so the
    #: client can patch its local slot map and retry without a full
    #: re-fetch (the elastic-namespace analogue of EREDIRECT).
    EMOVED = 1005

    _NAMES = {
        errno.ENOENT: "ENOENT",
        errno.EEXIST: "EEXIST",
        errno.ENOTEMPTY: "ENOTEMPTY",
        errno.EACCES: "EACCES",
        errno.ENOTDIR: "ENOTDIR",
        errno.EISDIR: "EISDIR",
        errno.EINVAL: "EINVAL",
        errno.ETIMEDOUT: "ETIMEDOUT",
        1001: "EREDIRECT",
        1002: "ERETRY",
        1003: "ENOTLEADER",
        1004: "ESTALE_TERM",
        1005: "EMOVED",
    }

    @classmethod
    def name(cls, code):
        return cls._NAMES.get(code, "E{}".format(code))


class RpcFailure(Exception):
    """Failure result of an RPC; carries a code and optional detail."""

    def __init__(self, code, detail=None):
        super().__init__(RpcError.name(code), detail)
        self.code = code
        self.detail = detail

    def __str__(self):
        if self.detail is None:
            return RpcError.name(self.code)
        return "{}: {}".format(RpcError.name(self.code), self.detail)
