"""Base class for protocol machines (environment-agnostic)."""

from functools import partial

from repro.metrics import MetricsRegistry
from repro.net.message import Message
from repro.obs.tracer import CAT_CPU, CAT_NET, CAT_QUEUE


class Node:
    """A machine on the fabric: named endpoint, CPU cores, inbox.

    Subclasses implement :meth:`handle`, a generator run as a process for
    every delivered message.  The default delivery policy spawns one handler
    process per message; contention is then modeled by the shared ``cpu``
    resource (via :meth:`execute`).  Subclasses that schedule work
    differently (e.g. the FalconFS MNode's typed request queues) override
    :meth:`deliver`.
    """

    def __init__(self, env, network, name, cores=None):
        self.env = env
        self.network = network
        self.costs = network.costs
        self.name = name
        self.cpu = env.resource(capacity=cores or network.costs.server_cores)
        self.inbox = env.store()
        self.metrics = MetricsRegistry(name)
        # Pre-bound per-message counters (send/receive/respond run once
        # per message; the registry lookup is paid once, here).
        self._sent = self.metrics.counter("sent")
        self._received = self.metrics.counter("received")
        self._responded = self.metrics.counter("responded")
        self._responded_error = self.metrics.counter("responded_error")
        #: Set when this incarnation is retired (crashed and replaced by
        #: a restarted instance under the same name): its in-flight
        #: handlers park forever instead of resuming once the *name*
        #: becomes reachable again.
        self.halted = False
        #: This node's local clock (identity unless the clock-skew
        #: nemesis is active): deadline and heartbeat math reads this,
        #: never ``env.now_us()`` directly.
        self.clock = env.clock(name)
        network.register(self)

    def __repr__(self):
        return "<{} {}>".format(type(self).__name__, self.name)

    # -- messaging ------------------------------------------------------

    def deliver(self, message):
        """Called by the network when a message arrives."""
        self._received.inc(message.kind)
        self.env.process(self._handle_guard(message))

    def _handle_guard(self, message):
        # Every message costs a decode/dispatch slice on the receiver.
        yield from self.execute(self.costs.dispatch_us, ctx=message.ctx)
        result = yield from self.handle(message)
        return result

    def handle(self, message):
        """Process one message.  Subclasses must override (generator)."""
        raise NotImplementedError(
            "{} received unexpected message {!r}".format(self, message)
        )
        yield  # pragma: no cover - makes this a generator

    def send(self, recipient, kind, payload=None, size=None, reply_to=None,
             ctx=None):
        """Send a message to ``recipient``; returns immediately.

        ``ctx`` (an :class:`~repro.obs.OpContext`) rides on the message so
        the receiver inherits the operation's deadline and trace identity.
        """
        if size is None:
            size = self.costs.rpc_request_bytes
        msg = Message(self.name, recipient, kind, payload, size, reply_to,
                      ctx=ctx)
        self._sent.inc(kind)
        self.network.send(msg)
        return msg

    def call(self, recipient, kind, payload=None, size=None, ctx=None):
        """Issue an RPC; returns the reply event to ``yield`` on.

        The reply event succeeds with the responder's payload, or fails
        with :class:`~repro.net.rpc.RpcFailure` carrying an
        :class:`~repro.net.rpc.RpcError` code.
        """
        reply = self.env.event()
        self.send(recipient, kind, payload, size, reply_to=reply, ctx=ctx)
        return reply

    def respond(self, message, payload=None, size=None):
        """Answer an RPC ``message`` successfully with ``payload``.

        The response hop goes through the :class:`~repro.net.transport.
        Network`, so it shows up in network metrics and obeys the fault
        model (a reply from a node that just crashed is black-holed).
        """
        if message.reply_to is None:
            return
        if size is None:
            size = self.costs.rpc_response_bytes
        reply_to = message.reply_to
        ctx = message.ctx
        if ctx is not None and ctx.traced:
            start = self.env.now

            def deliver(env=self.env):
                if env.now > start:
                    ctx.record(
                        "net.response", CAT_NET, start, env.now,
                        node=message.sender,
                        attrs={"kind": message.kind, "bytes": size},
                    )
                reply_to.succeed(payload)
        else:
            deliver = partial(reply_to.succeed, payload)
        self.network.send_response(self.name, message, size, deliver)
        self._responded.inc(message.kind)

    def respond_error(self, message, failure):
        """Answer an RPC ``message`` with a failure exception."""
        if message.reply_to is None:
            return
        size = self.costs.rpc_response_bytes
        reply_to = message.reply_to
        ctx = message.ctx
        if ctx is not None and ctx.traced:
            start = self.env.now

            def deliver(env=self.env):
                if env.now > start:
                    ctx.record(
                        "net.response", CAT_NET, start, env.now,
                        node=message.sender,
                        attrs={"kind": message.kind, "error": str(failure)},
                    )
                reply_to.fail(failure)
        else:
            deliver = partial(reply_to.fail, failure)
        self.network.send_response(self.name, message, size, deliver)
        self._responded_error.inc(message.kind)

    # -- CPU -------------------------------------------------------------

    def alive_barrier(self):
        """Generator: park while this node is down (crashed or hung).

        A crash never resumes it; a transient hang resumes it at
        :meth:`~repro.net.transport.Network.set_up`.  A *retired*
        incarnation (``halted`` — the machine restarted and a fresh node
        object took over the name) parks forever: its processes died
        with it, and must not run on just because the name is reachable
        again.
        """
        while self.halted or self.network.is_down(self.name):
            if self.halted:
                yield self.env.event()
                continue
            yield self.network.resume_event(self.name)

    def execute(self, cost_us, ctx=None):
        """Consume ``cost_us`` of one CPU core (generator; yield from it).

        With a traced ``ctx``, records a ``cpu.wait`` span for time spent
        queued for a core and a ``cpu`` span for the busy slice itself.

        A down node's CPU is frozen: execution parks on the network's
        resume event, both before the slice and after it (so a handler
        whose timer straddles the crash instant cannot run on and commit
        a zombie transaction).  A crash never resumes; a transient hang
        (:meth:`~repro.net.transport.Network.set_up`) does.
        """
        # Guarded barrier: allocating the alive_barrier() generator twice
        # per CPU slice costs more than the liveness check it performs,
        # and nodes are alive for the overwhelming majority of slices.
        network = self.network
        if self.halted or network.is_down(self.name):
            yield from self.alive_barrier()
        env = self.env
        traced = ctx is not None and ctx.traced
        req = self.cpu.request()
        wait_start = env.now if (traced and not req.triggered) else None
        yield req
        if wait_start is not None:
            ctx.record("cpu.wait", CAT_QUEUE, wait_start, env.now,
                       node=self.name)
        try:
            # Modeled CPU slices are charged only where the environment
            # models hardware costs; on a live clock real work already
            # takes real time.
            if cost_us > 0 and env.models_costs:
                start = env.now
                yield env.schedule_timeout(cost_us)
                if traced:
                    ctx.record("cpu", CAT_CPU, start, env.now,
                               node=self.name)
            if self.halted or network.is_down(self.name):
                yield from self.alive_barrier()
        finally:
            self.cpu.release(req)
