"""Base class for simulated machines."""

from repro.metrics import MetricsRegistry
from repro.net.message import Message
from repro.obs.tracer import CAT_CPU, CAT_NET, CAT_QUEUE
from repro.sim import Resource, Store


class Node:
    """A machine on the fabric: named endpoint, CPU cores, inbox.

    Subclasses implement :meth:`handle`, a generator run as a process for
    every delivered message.  The default delivery policy spawns one handler
    process per message; contention is then modeled by the shared ``cpu``
    resource (via :meth:`execute`).  Subclasses that schedule work
    differently (e.g. the FalconFS MNode's typed request queues) override
    :meth:`deliver`.
    """

    def __init__(self, env, network, name, cores=None):
        self.env = env
        self.network = network
        self.costs = network.costs
        self.name = name
        self.cpu = Resource(env, capacity=cores or network.costs.server_cores)
        self.inbox = Store(env)
        self.metrics = MetricsRegistry(name)
        network.register(self)

    def __repr__(self):
        return "<{} {}>".format(type(self).__name__, self.name)

    # -- messaging ------------------------------------------------------

    def deliver(self, message):
        """Called by the network when a message arrives."""
        self.metrics.counter("received").inc(message.kind)
        self.env.process(self._handle_guard(message))

    def _handle_guard(self, message):
        # Every message costs a decode/dispatch slice on the receiver.
        yield from self.execute(self.costs.dispatch_us, ctx=message.ctx)
        result = yield from self.handle(message)
        return result

    def handle(self, message):
        """Process one message.  Subclasses must override (generator)."""
        raise NotImplementedError(
            "{} received unexpected message {!r}".format(self, message)
        )
        yield  # pragma: no cover - makes this a generator

    def send(self, recipient, kind, payload=None, size=None, reply_to=None,
             ctx=None):
        """Send a message to ``recipient``; returns immediately.

        ``ctx`` (an :class:`~repro.obs.OpContext`) rides on the message so
        the receiver inherits the operation's deadline and trace identity.
        """
        if size is None:
            size = self.costs.rpc_request_bytes
        msg = Message(self.name, recipient, kind, payload, size, reply_to,
                      ctx=ctx)
        self.metrics.counter("sent").inc(kind)
        self.network.send(msg)
        return msg

    def call(self, recipient, kind, payload=None, size=None, ctx=None):
        """Issue an RPC; returns the reply event to ``yield`` on.

        The reply event succeeds with the responder's payload, or fails
        with :class:`~repro.net.rpc.RpcFailure` carrying an
        :class:`~repro.net.rpc.RpcError` code.
        """
        reply = self.env.event()
        self.send(recipient, kind, payload, size, reply_to=reply, ctx=ctx)
        return reply

    def respond(self, message, payload=None, size=None):
        """Answer an RPC ``message`` successfully with ``payload``."""
        if message.reply_to is None:
            return
        if size is None:
            size = self.costs.rpc_response_bytes
        delay = self.costs.hop_us(size)
        reply_to = message.reply_to
        ctx = message.ctx

        def arrive(env=self.env, start=self.env.now):
            yield env.timeout(delay)
            if ctx is not None and ctx.tracer.enabled:
                ctx.record(
                    "net.response", CAT_NET, start, env.now,
                    node=message.sender,
                    attrs={"kind": message.kind, "bytes": size},
                )
            reply_to.succeed(payload)

        if message.sender == self.name:
            reply_to.succeed(payload)
        else:
            self.env.process(arrive())
        self.metrics.counter("responded").inc(message.kind)

    def respond_error(self, message, failure):
        """Answer an RPC ``message`` with a failure exception."""
        if message.reply_to is None:
            return
        delay = self.costs.hop_us(self.costs.rpc_response_bytes)
        reply_to = message.reply_to
        ctx = message.ctx

        def arrive(env=self.env, start=self.env.now):
            yield env.timeout(delay)
            if ctx is not None and ctx.tracer.enabled:
                ctx.record(
                    "net.response", CAT_NET, start, env.now,
                    node=message.sender,
                    attrs={"kind": message.kind, "error": str(failure)},
                )
            reply_to.fail(failure)

        if message.sender == self.name:
            reply_to.fail(failure)
        else:
            self.env.process(arrive())
        self.metrics.counter("responded_error").inc(message.kind)

    # -- CPU -------------------------------------------------------------

    def execute(self, cost_us, ctx=None):
        """Consume ``cost_us`` of one CPU core (generator; yield from it).

        With a traced ``ctx``, records a ``cpu.wait`` span for time spent
        queued for a core and a ``cpu`` span for the busy slice itself.
        """
        traced = ctx is not None and ctx.tracer.enabled
        req = self.cpu.request()
        wait_start = self.env.now if (traced and not req.triggered) else None
        yield req
        if wait_start is not None:
            ctx.record("cpu.wait", CAT_QUEUE, wait_start, self.env.now,
                       node=self.name)
        try:
            if cost_us > 0:
                start = self.env.now
                yield self.env.timeout(cost_us)
                if traced:
                    ctx.record("cpu", CAT_CPU, start, self.env.now,
                               node=self.name)
        finally:
            self.cpu.release(req)
