"""The cluster cost model.

All simulated durations are microseconds.  Defaults approximate the paper's
testbed (Table 2: 100 GbE, NVMe SSD, Xeon cores) at the granularity that
matters for the evaluation's *shapes*: network hops and fsyncs are orders of
magnitude more expensive than in-memory work, and SSD bandwidth caps the
data path.

Experiments never edit these class attributes; they construct a
``CostModel`` (optionally overriding fields) and hand it to the cluster
builders, so ablations and sensitivity sweeps are pure data changes.
"""

from dataclasses import dataclass


@dataclass
class CostModel:
    """Timing and sizing constants for the simulated cluster."""

    # -- network -------------------------------------------------------
    #: One-way message latency between any two machines (switch + kernel).
    rpc_latency_us: float = 8.0
    #: NIC/link bandwidth for payload transfer (100 GbE ~ 12.5 GB/s).
    net_bandwidth_bytes_per_us: float = 12500.0
    #: Wire size of a plain metadata request/response.
    rpc_request_bytes: int = 256
    rpc_response_bytes: int = 256

    # -- server CPU ----------------------------------------------------
    #: CPU cores per metadata server (the paper restricts servers to 4).
    server_cores: int = 4
    #: Per-request server entry overhead: decode, session lookup, and the
    #: hand-off from the connection pool to an execution thread.  FalconFS
    #: pays this once per merged batch; the baselines pay it per request.
    dispatch_us: float = 12.0
    #: Fixed CPU cost of beginning/committing a (local) transaction.
    txn_begin_us: float = 0.5
    txn_commit_us: float = 0.5
    #: Lock-manager costs: the paper's lock coalescing amortizes these.
    lock_acquire_us: float = 0.4
    lock_release_us: float = 0.2
    #: B-link tree operation costs (in-memory index probe / update).
    index_lookup_us: float = 0.8
    index_insert_us: float = 1.2
    index_delete_us: float = 1.0
    #: Per-path-component cost of server-side namespace resolution.
    resolve_component_us: float = 0.3

    # -- write-ahead log -------------------------------------------------
    #: Synchronous flush latency of a WAL append (NVMe write + barrier).
    wal_fsync_us: float = 60.0
    #: Marginal cost per logged byte (memcpy + device transfer).
    wal_us_per_byte: float = 0.002
    #: Log record payload per metadata mutation.
    wal_record_bytes: int = 160
    #: Segment rotation threshold for the durable log.
    wal_segment_bytes: int = 1 << 20
    #: Redo cost per replayed WAL record at restart (read + index apply).
    wal_replay_us_per_record: float = 0.5

    # -- client --------------------------------------------------------
    #: Client-side per-operation overhead (syscall + marshaling).
    client_op_us: float = 2.0
    #: Cost of a client-side cache (dcache/icache) probe.
    cache_probe_us: float = 0.15

    # -- data path -------------------------------------------------------
    #: Per-SSD sequential bandwidth (bytes per microsecond).
    ssd_read_bandwidth_bytes_per_us: float = 3600.0
    ssd_write_bandwidth_bytes_per_us: float = 1400.0
    #: Fixed per-IO cost on the storage node (NVMe submission + interrupt).
    ssd_io_us: float = 10.0
    #: NVMe queue depth: concurrent IOs per device; bandwidth is shared
    #: across the in-flight IOs.
    ssd_queue_depth: int = 8
    #: Data is striped in blocks of this size across storage nodes.
    block_size_bytes: int = 1 << 20

    # -- coordinator / replication ----------------------------------------
    #: CPU cost of applying one invalidation at an MNode.
    invalidate_apply_us: float = 0.5
    #: CPU cost per 2PC participant round at the initiating node.
    two_phase_round_us: float = 3.0

    def transfer_us(self, size_bytes):
        """Wire transfer time for ``size_bytes`` on one link."""
        return size_bytes / self.net_bandwidth_bytes_per_us

    def hop_us(self, size_bytes):
        """Total one-way delivery time for a message of ``size_bytes``."""
        return self.rpc_latency_us + self.transfer_us(size_bytes)

    def degraded_hop_us(self, size_bytes, latency_factor):
        """One-way delivery time across a gray-degraded link.

        Both the fixed latency and the serialization term stretch by
        ``latency_factor``: a sagging NIC retransmits and backs off, so
        effective per-byte throughput drops along with base latency.
        ``latency_factor == 1.0`` reproduces :meth:`hop_us` exactly.
        """
        return (self.rpc_latency_us + self.transfer_us(size_bytes)) \
            * latency_factor
