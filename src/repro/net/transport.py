"""The message fabric connecting simulated machines.

Delivery of a message takes one hop: fixed RPC latency plus payload size
divided by link bandwidth.  Link-level contention is not modeled — in the
paper's metadata experiments the bottleneck is server CPU and WAL, and in
the data experiments it is SSD bandwidth; both are modeled explicitly at
the endpoints.
"""

from repro.metrics import MetricsRegistry
from repro.obs.tracer import CAT_NET
from repro.sim.engine import SimulationError

#: Metric label for co-located deliveries, which take zero network hops.
#: Keeping them out of the per-kind buckets keeps hop counts exact.
LOCAL_LABEL = "local"


class Network:
    """Registry of nodes plus the send primitive."""

    def __init__(self, env, costs):
        self.env = env
        self.costs = costs
        self.metrics = MetricsRegistry("network")
        self._nodes = {}

    def register(self, node):
        """Attach ``node`` to the fabric under its unique name."""
        if node.name in self._nodes:
            raise SimulationError("duplicate node name: {}".format(node.name))
        self._nodes[node.name] = node

    def node(self, name):
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError("unknown node: {}".format(name)) from None

    def nodes(self):
        return list(self._nodes.values())

    def send(self, message):
        """Put ``message`` on the wire; it arrives after one hop delay.

        Messages between co-located endpoints (same machine name) skip the
        network and are delivered immediately; they are counted under the
        ``local`` label rather than the message kind, so per-kind counts
        equal actual network hops.
        """
        dst = self.node(message.recipient)
        message.send_time = self.env.now
        if message.sender == message.recipient:
            self.metrics.counter("messages").inc(LOCAL_LABEL)
            self.metrics.counter("bytes").inc(LOCAL_LABEL, message.size)
            message.arrive_time = self.env.now
            dst.deliver(message)
            return
        self.metrics.counter("messages").inc(message.kind)
        self.metrics.counter("bytes").inc(message.kind, message.size)
        delay = self.costs.hop_us(message.size)
        ctx = message.ctx

        def arrive(env=self.env):
            yield env.timeout(delay)
            message.arrive_time = env.now
            if ctx is not None and ctx.tracer.enabled:
                ctx.record(
                    "net.hop", CAT_NET, message.send_time, env.now,
                    node=message.recipient,
                    attrs={"kind": message.kind, "bytes": message.size},
                )
            dst.deliver(message)

        self.env.process(arrive())

    def message_count(self, kind=None):
        """Messages sent: network hops of ``kind``, or the grand total
        (co-located deliveries included) when ``kind`` is ``None``."""
        counter = self.metrics.counter("messages")
        if kind is None:
            return counter.total()
        return counter.get(kind)
