"""The message fabric connecting simulated machines.

Delivery of a message takes one hop: fixed RPC latency plus payload size
divided by link bandwidth.  Link-level contention is not modeled — in the
paper's metadata experiments the bottleneck is server CPU and WAL, and in
the data experiments it is SSD bandwidth; both are modeled explicitly at
the endpoints.

Fault model
-----------
The fabric also owns the cluster's failure state: nodes can be marked
*down* (crashed or hung) and node pairs can be *partitioned*.  A message
whose sender or recipient is unreachable is **black-holed** — dropped
silently, counted under the ``dropped`` counter — never answered with an
error.  Reachability is re-checked at *arrival* time too, so a crash also
loses the victim's in-flight messages (the kernel socket buffers die with
the machine); that is what makes asynchronous replication's lost-window
observable.  Callers survive black holes via the deadline/retry machinery
(:mod:`repro.obs.retry`), not via transport-level failure signals.

RPC responses take the same fabric path (:meth:`Network.send_response`),
so response hops/bytes appear in network metrics (under the ``responses``
/ ``response_bytes`` counters, keyed by the request kind) and a dead or
partitioned responder cannot deliver a reply.

Gray degradation
----------------
Beyond binary down/partitioned, a node's links can be *degraded*
(:meth:`Network.degrade_link`): every hop touching that node gets a
latency multiplier, seeded per-message packet loss (counted under
``gray_lost`` — black-holed like a drop, but probabilistic), and a
seeded reorder jitter added to the hop delay, which deliberately breaks
the fabric's otherwise per-link-FIFO delivery for equal-size messages.
All randomness comes from a per-degradation ``random.Random(rng_seed)``
drawn in send order, so runs replay bit-identically; with no degraded
links the send paths take their original branches untouched.
"""

import random

from repro.metrics import MetricsRegistry
from repro.obs.tracer import CAT_NET
from repro.runtime import EnvError

#: Metric label for co-located deliveries, which take zero network hops.
#: Keeping them out of the per-kind buckets keeps hop counts exact.
LOCAL_LABEL = "local"


class LinkQuality:
    """Gray degradation state for one node's links.

    ``latency_factor`` stretches hop latency, ``loss_prob`` drops each
    message independently, ``reorder_window_us`` adds uniform jitter in
    ``[0, window]`` to the hop delay (breaking FIFO between messages
    less than a window apart).  Draws come from a private seeded RNG in
    message-send order, keeping degraded runs deterministic.
    """

    __slots__ = ("latency_factor", "loss_prob", "reorder_window_us", "rng")

    def __init__(self, latency_factor=1.0, loss_prob=0.0,
                 reorder_window_us=0.0, rng_seed=0):
        self.latency_factor = latency_factor
        self.loss_prob = loss_prob
        self.reorder_window_us = reorder_window_us
        self.rng = random.Random(rng_seed)


class Network:
    """Registry of nodes plus the send primitive."""

    def __init__(self, env, costs):
        self.env = env
        self.costs = costs
        self.metrics = MetricsRegistry("network")
        # Pre-bound counters: send/send_response run once per message, so
        # the per-call registry lookup is paid here instead.
        self._messages = self.metrics.counter("messages")
        self._bytes = self.metrics.counter("bytes")
        self._responses = self.metrics.counter("responses")
        self._response_bytes = self.metrics.counter("response_bytes")
        self._dropped = self.metrics.counter("dropped")
        self._lost = self.metrics.counter("gray_lost")
        self._nodes = {}
        #: node name -> LinkQuality while gray-degraded (usually empty;
        #: every hot path guards on truthiness so healthy runs never pay).
        self._link_quality = {}
        #: Names of nodes currently down (crashed or hung).
        self._down = set()
        #: Directed (src, dst) pairs currently partitioned.
        self._blocked = set()
        #: Per-down-node event fired by :meth:`set_up` — what a frozen
        #: node's processes park on (see :meth:`resume_event`).
        self._resume = {}

    def register(self, node):
        """Attach ``node`` to the fabric under its unique name."""
        if node.name in self._nodes:
            raise EnvError("duplicate node name: {}".format(node.name))
        self._nodes[node.name] = node

    def node(self, name):
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise EnvError("unknown node: {}".format(name)) from None

    def nodes(self):
        return list(self._nodes.values())

    # -- fault state -----------------------------------------------------

    def set_down(self, name):
        """Mark ``name`` down: all its traffic is black-holed from now on,
        including messages already in flight to or from it, and its CPU
        freezes (in-flight handlers park at their next execute slice
        instead of committing zombie transactions after the crash)."""
        self.node(name)  # validate
        self._down.add(name)
        if name not in self._resume:
            self._resume[name] = self.env.event()

    def set_up(self, name):
        """Bring ``name`` back (a hang ending, not a state recovery):
        traffic flows again and frozen processes resume where they were."""
        self._down.discard(name)
        event = self._resume.pop(name, None)
        if event is not None:
            event.succeed()

    def reincarnate(self, name):
        """Prepare ``name`` for a restarted incarnation after a crash.

        A restart is not a hang ending: the crashed process is gone, so
        its registration is dropped and its frozen handlers are
        *abandoned* — the resume event is discarded without firing, so
        anything parked on it stays parked forever and can never apply
        zombie writes or answer with the dead incarnation's state.  The
        caller then registers the new node object under the same name,
        and traffic flows to the fresh incarnation.
        """
        if name not in self._down:
            raise EnvError(
                "cannot reincarnate {}: not down".format(name)
            )
        self.node(name)  # validate registration exists
        del self._nodes[name]
        self._resume.pop(name, None)
        self._down.discard(name)

    def is_down(self, name):
        return name in self._down

    def resume_event(self, name):
        """The event a down node's frozen processes wait on; fires at
        :meth:`set_up` (never, for a crash that is not recovered)."""
        return self._resume.setdefault(name, self.env.event())

    def partition(self, group_a, group_b):
        """Block traffic (both directions) between the two node groups."""
        for a in group_a:
            for b in group_b:
                self._blocked.add((a, b))
                self._blocked.add((b, a))

    def partition_directed(self, srcs, dsts):
        """Block traffic in *one* direction only: ``srcs`` -> ``dsts``.

        An asymmetric partition — the receiver can still talk back.
        This is the fault that distinguishes a consensus election from
        heartbeat-ordained promotion: a leader that can send appends but
        never hear acks must stop serving when its lease lapses, even
        though every member still sees it as alive."""
        for a in srcs:
            for b in dsts:
                self._blocked.add((a, b))

    def heal(self, group_a=None, group_b=None):
        """Undo a partition; with no arguments, heal every partition."""
        if group_a is None and group_b is None:
            self._blocked.clear()
            return
        for a in group_a:
            for b in group_b:
                self._blocked.discard((a, b))
                self._blocked.discard((b, a))

    def reachable(self, src, dst):
        """True when a message from ``src`` can currently reach ``dst``."""
        return (src not in self._down and dst not in self._down
                and (src, dst) not in self._blocked)

    def _drop(self, message):
        self._dropped.inc(message.kind)

    # -- gray degradation ------------------------------------------------

    def degrade_link(self, name, latency_factor=1.0, loss_prob=0.0,
                     reorder_window_us=0.0, rng_seed=0):
        """Degrade every link touching ``name`` (slow-not-dead NIC)."""
        self.node(name)  # validate
        self._link_quality[name] = LinkQuality(
            latency_factor=latency_factor, loss_prob=loss_prob,
            reorder_window_us=reorder_window_us, rng_seed=rng_seed,
        )

    def restore_link(self, name):
        """End ``name``'s link degradation (no-op when not degraded)."""
        self._link_quality.pop(name, None)

    def restore_links(self):
        """End every link degradation (heal sweep)."""
        self._link_quality.clear()

    def is_degraded(self, name):
        return name in self._link_quality

    def _gray_fate(self, src, dst, size, delay):
        """Loss/latency/jitter verdict for one hop between ``src`` and
        ``dst``: ``None`` when the message is lost, else the adjusted
        hop delay.  Draws happen in a fixed order (src endpoint, then
        dst) so every run of the same schedule replays identically."""
        factor = 1.0
        jitter = 0.0
        for name in (src, dst):
            quality = self._link_quality.get(name)
            if quality is None:
                continue
            if quality.loss_prob and quality.rng.random() < quality.loss_prob:
                return None
            factor *= quality.latency_factor
            if quality.reorder_window_us:
                jitter += quality.rng.uniform(0.0, quality.reorder_window_us)
        if factor != 1.0 and self.env.models_costs:
            delay = self.costs.degraded_hop_us(size, factor)
        return delay + jitter

    # -- sending ---------------------------------------------------------

    def send(self, message):
        """Put ``message`` on the wire; it arrives after one hop delay.

        Messages between co-located endpoints (same machine name) skip the
        network and are delivered immediately; they are counted under the
        ``local`` label rather than the message kind, so per-kind counts
        equal actual network hops.

        Unreachable messages (down endpoint, partition) are black-holed —
        both at send time and again at arrival time, so a crash loses the
        victim's in-flight traffic.
        """
        dst = self.node(message.recipient)
        message.send_time = self.env.now
        faults = self._down or self._blocked
        if faults and not self.reachable(message.sender, message.recipient):
            self._drop(message)
            return
        if message.sender == message.recipient:
            self._messages.inc(LOCAL_LABEL)
            self._bytes.inc(LOCAL_LABEL, message.size)
            message.arrive_time = self.env.now
            dst.deliver(message)
            return
        self._messages.inc(message.kind)
        self._bytes.inc(message.kind, message.size)
        # Modeled hop latency is charged only under a cost-modeling
        # environment; a live in-process fabric delivers on the next
        # scheduler tick (a zero timeout still defers, preserving the
        # "send returns before delivery" contract).
        delay = self.costs.hop_us(message.size) if self.env.models_costs \
            else 0.0
        if self._link_quality:
            delay = self._gray_fate(message.sender, message.recipient,
                                    message.size, delay)
            if delay is None:
                self._lost.inc(message.kind)
                return
        ctx = message.ctx

        def arrive(env=self.env):
            yield env.schedule_timeout(delay)
            if ((self._down or self._blocked) and not
                    self.reachable(message.sender, message.recipient)):
                self._drop(message)
                return
            message.arrive_time = env.now
            if ctx is not None and ctx.traced:
                ctx.record(
                    "net.hop", CAT_NET, message.send_time, env.now,
                    node=message.recipient,
                    attrs={"kind": message.kind, "bytes": message.size},
                )
            dst.deliver(message)

        self.env.process(arrive())

    def send_response(self, responder, message, size, deliver):
        """Model the response hop for an RPC ``message``.

        ``deliver()`` is invoked when the response reaches the original
        sender — after one hop delay, or immediately for a co-located
        pair.  Response hops/bytes are accounted under the ``responses``
        and ``response_bytes`` counters keyed by the *request* kind
        (co-located responses under ``local``, mirroring requests), and
        the hop obeys the fault model: a response from a crashed node, or
        across a partition, is black-holed.
        """
        requester = message.sender
        faults = self._down or self._blocked
        if faults and not self.reachable(responder, requester):
            self._drop(message)
            return
        if responder == requester:
            self._responses.inc(LOCAL_LABEL)
            self._response_bytes.inc(LOCAL_LABEL, size)
            deliver()
            return
        self._responses.inc(message.kind)
        self._response_bytes.inc(message.kind, size)
        delay = self.costs.hop_us(size) if self.env.models_costs else 0.0
        if self._link_quality:
            delay = self._gray_fate(responder, requester, size, delay)
            if delay is None:
                self._lost.inc(message.kind)
                return

        def arrive(env=self.env):
            yield env.schedule_timeout(delay)
            if ((self._down or self._blocked) and not
                    self.reachable(responder, requester)):
                self._drop(message)
                return
            deliver()

        self.env.process(arrive())

    # -- accounting ------------------------------------------------------

    def message_count(self, kind=None):
        """Request messages sent: network hops of ``kind``, or the grand
        total (co-located deliveries included) when ``kind`` is ``None``.
        Response hops are counted separately — see :meth:`response_count`.
        """
        if kind is None:
            return self._messages.total()
        return self._messages.get(kind)

    def response_count(self, kind=None):
        """Response deliveries, keyed by the request kind (or the grand
        total when ``kind`` is ``None``)."""
        if kind is None:
            return self._responses.total()
        return self._responses.get(kind)

    def dropped_count(self, kind=None):
        """Black-holed messages (down node or partition), by kind."""
        if kind is None:
            return self._dropped.total()
        return self._dropped.get(kind)

    def lost_count(self, kind=None):
        """Messages lost to gray link degradation, by kind."""
        if kind is None:
            return self._lost.total()
        return self._lost.get(kind)
