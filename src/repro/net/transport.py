"""The message fabric connecting simulated machines.

Delivery of a message takes one hop: fixed RPC latency plus payload size
divided by link bandwidth.  Link-level contention is not modeled — in the
paper's metadata experiments the bottleneck is server CPU and WAL, and in
the data experiments it is SSD bandwidth; both are modeled explicitly at
the endpoints.
"""

from repro.metrics import MetricsRegistry
from repro.sim.engine import SimulationError


class Network:
    """Registry of nodes plus the send primitive."""

    def __init__(self, env, costs):
        self.env = env
        self.costs = costs
        self.metrics = MetricsRegistry("network")
        self._nodes = {}

    def register(self, node):
        """Attach ``node`` to the fabric under its unique name."""
        if node.name in self._nodes:
            raise SimulationError("duplicate node name: {}".format(node.name))
        self._nodes[node.name] = node

    def node(self, name):
        """Look up a node by name."""
        try:
            return self._nodes[name]
        except KeyError:
            raise SimulationError("unknown node: {}".format(name)) from None

    def nodes(self):
        return list(self._nodes.values())

    def send(self, message):
        """Put ``message`` on the wire; it arrives after one hop delay.

        Messages between co-located endpoints (same machine name) skip the
        network and are delivered immediately.
        """
        dst = self.node(message.recipient)
        message.send_time = self.env.now
        self.metrics.counter("messages").inc(message.kind)
        self.metrics.counter("bytes").inc(message.kind, message.size)
        if message.sender == message.recipient:
            dst.deliver(message)
            return
        delay = self.costs.hop_us(message.size)

        def arrive(env=self.env):
            yield env.timeout(delay)
            dst.deliver(message)

        self.env.process(arrive())

    def message_count(self, kind=None):
        """Total messages sent, optionally filtered by kind."""
        counter = self.metrics.counter("messages")
        if kind is None:
            return counter.total()
        return counter.get(kind)
