"""Network message representation."""

from itertools import count

_message_ids = count(1)


class Message:
    """A single message on the simulated fabric.

    ``kind`` names the protocol verb (e.g. ``"open"``, ``"lookup"``,
    ``"invalidate"``); ``payload`` is an arbitrary Python object (the
    simulated wire format); ``size`` is the modeled wire size in bytes used
    for bandwidth accounting; ``reply_to`` is the event a server triggers to
    answer an RPC; ``ctx`` is the originating operation's
    :class:`~repro.obs.OpContext` (or ``None``), propagated across every
    hop so deadlines and trace spans follow the request.
    """

    __slots__ = (
        "msg_id",
        "sender",
        "recipient",
        "kind",
        "payload",
        "size",
        "reply_to",
        "ctx",
        "send_time",
        "arrive_time",
    )

    def __init__(self, sender, recipient, kind, payload=None, size=256,
                 reply_to=None, ctx=None):
        self.msg_id = next(_message_ids)
        self.sender = sender
        self.recipient = recipient
        self.kind = kind
        self.payload = payload
        self.size = size
        self.reply_to = reply_to
        self.ctx = ctx
        self.send_time = None
        self.arrive_time = None

    def __repr__(self):
        return "<Message #{} {}:{} -> {}>".format(
            self.msg_id, self.kind, self.sender, self.recipient
        )
