"""Simulated cluster network: nodes, messages, RPC, cost model.

The network layer gives every simulated machine a named endpoint with an
inbox, CPU cores modeled as a :class:`~repro.sim.Resource`, and a
message-passing fabric with per-hop latency plus size/bandwidth transfer
delay.  All timing constants live in :class:`CostModel` so experiments and
ablations vary data, not code.
"""

from repro.net.costs import CostModel
from repro.net.message import Message
from repro.net.node import Node
from repro.net.rpc import RpcError, RpcFailure
from repro.net.transport import Network

__all__ = [
    "CostModel",
    "Message",
    "Network",
    "Node",
    "RpcError",
    "RpcFailure",
]
