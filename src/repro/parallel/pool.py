"""Persistent process pool with ordered, crash-tolerant results.

The simulator is deterministic but single-threaded, so the cheap
structural speedup for seed exploration and experiment sweeps is
process parallelism over *independent* tasks with a deterministic
merge.  This module provides exactly that and nothing more:

* :class:`WorkerPool` — ``jobs`` long-lived worker processes, each
  spawned once (importing :mod:`repro` once) and reused for every task,
  so per-task cost is one pickle round-trip, not an interpreter start.
* :meth:`WorkerPool.imap` — a generator yielding one
  :class:`TaskResult` per task **in task order regardless of completion
  order** (a reorder buffer holds early finishers).  Consuming it
  partially and closing it (``break``) terminates the pool promptly —
  the early-exit path for "stop at the first ordered failure".
* :func:`pmap` — the convenience wrapper: run ``fn`` over ``tasks``,
  return the values in task order, raise :class:`ParallelError` if any
  task failed.  ``jobs <= 1`` runs inline in the parent, bit-identical
  to never having imported this module.

The determinism/merge contract callers rely on:

* ``fn`` must be a **module-level callable** (pickled by reference) and
  each task a picklable value; the return value must be picklable and
  *pure* — derived from the task alone, never from worker-local state.
* All aggregation happens in the parent, in task order.  Because every
  task is independent and results are re-ordered, ``jobs=8`` and
  ``jobs=1`` feed the parent the same record stream byte for byte.

Failure semantics:

* a task that **raises** is caught in the worker: the full traceback
  comes back in ``TaskResult.error`` and the worker survives for the
  next task;
* a worker that **dies** (segfault, ``os._exit``, OOM kill) fails only
  the task it was holding (``TaskResult.crashed`` set, exit code in the
  error) and is replaced so the remaining tasks still complete;
* **KeyboardInterrupt** in the parent terminates every worker and
  re-raises — no hang on a half-drained pipe.

Workers use the ``spawn`` start method: identical behaviour on every
platform, no inherited locks, and an import-clean child that proves
every task is self-contained.
"""

import multiprocessing
import os
import traceback
from multiprocessing import connection


class TaskResult:
    """Outcome of one task: ``value`` on success, ``error`` (a formatted
    traceback or crash report) on failure."""

    __slots__ = ("index", "value", "error", "crashed")

    def __init__(self, index, value=None, error=None, crashed=False):
        self.index = index
        self.value = value
        self.error = error
        self.crashed = crashed

    @property
    def ok(self):
        return self.error is None

    def __repr__(self):
        status = "ok" if self.ok else ("crashed" if self.crashed
                                       else "error")
        return "TaskResult(index={}, {})".format(self.index, status)


class ParallelError(RuntimeError):
    """One or more tasks failed; ``failures`` holds their TaskResults."""

    def __init__(self, failures):
        self.failures = list(failures)
        first = self.failures[0]
        super().__init__(
            "{} of the parallel tasks failed; first failure "
            "(task {}):\n{}".format(
                len(self.failures), first.index, first.error))


def _worker_main(conn):
    """Worker loop: receive ``(index, fn, task)``, answer
    ``(index, error, value)``.  Runs until EOF or a ``None`` sentinel."""
    while True:
        try:
            item = conn.recv()
        except (EOFError, OSError):
            return
        except KeyboardInterrupt:
            return  # parent is tearing the pool down
        if item is None:
            return
        index, fn, task = item
        try:
            payload = (index, None, fn(task))
        except KeyboardInterrupt:
            return
        except BaseException:  # noqa: BLE001 - shipped to the parent
            payload = (index, traceback.format_exc(), None)
        try:
            conn.send(payload)
        except (BrokenPipeError, OSError):
            return
        except Exception:  # result not picklable — still answer
            conn.send((index,
                       "result for task {} is not picklable:\n{}".format(
                           index, traceback.format_exc()),
                       None))


class _Worker:
    __slots__ = ("process", "conn", "task")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        self.task = None  # index of the in-flight task, or None


class WorkerPool:
    """``jobs`` persistent worker processes behind :meth:`imap`.

    Use as a context manager; :meth:`close` joins idle workers,
    :meth:`terminate` kills them (both idempotent).
    """

    def __init__(self, jobs, start_method="spawn"):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got {}".format(jobs))
        self._ctx = multiprocessing.get_context(start_method)
        self.jobs = int(jobs)
        self._workers = []
        self._closed = False

    # -- lifecycle -----------------------------------------------------

    def _spawn_worker(self):
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,), daemon=True)
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _retire(self, worker):
        self._workers.remove(worker)
        try:
            worker.conn.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join()

    def close(self):
        """Send every worker its shutdown sentinel and join."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=5.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def terminate(self):
        """Kill every worker immediately (the interrupt path)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            if worker.process.is_alive():
                worker.process.terminate()
        for worker in self._workers:
            worker.process.join()
            try:
                worker.conn.close()
            except OSError:
                pass
        self._workers = []

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        if exc_type is None:
            self.close()
        else:
            self.terminate()
        return False

    # -- execution -----------------------------------------------------

    def imap(self, fn, tasks):
        """Yield a :class:`TaskResult` per task, **in task order**.

        Dispatches eagerly to every idle worker, buffers out-of-order
        completions, and replaces crashed workers so one bad task never
        strands the rest.  Closing the generator early terminates the
        pool.
        """
        tasks = list(tasks)
        if self._closed:
            raise RuntimeError("pool is closed")
        while len(self._workers) < min(self.jobs, len(tasks)):
            self._spawn_worker()
        results = {}
        next_dispatch = 0
        next_yield = 0
        try:
            while next_yield < len(tasks):
                for worker in self._workers:
                    if worker.task is None and next_dispatch < len(tasks):
                        index = next_dispatch
                        try:
                            worker.conn.send((index, fn, tasks[index]))
                        except (BrokenPipeError, OSError):
                            continue  # dead worker; reaped below
                        worker.task = index
                        next_dispatch += 1
                while next_yield in results:
                    yield results.pop(next_yield)
                    next_yield += 1
                if next_yield >= len(tasks):
                    break
                busy = {w.conn: w for w in self._workers
                        if w.task is not None}
                if not busy:
                    # every worker died before accepting work
                    raise RuntimeError(
                        "worker pool has no live workers left")
                for ready in connection.wait(list(busy)):
                    worker = busy[ready]
                    try:
                        index, error, value = worker.conn.recv()
                    except (EOFError, OSError):
                        index = worker.task
                        worker.process.join()
                        results[index] = TaskResult(
                            index, error="worker crashed while running "
                            "task {} (exit code {})".format(
                                index, worker.process.exitcode),
                            crashed=True)
                        self._retire(worker)
                        self._spawn_worker()
                    else:
                        results[index] = TaskResult(index, value=value,
                                                    error=error)
                        worker.task = None
        except GeneratorExit:
            # the consumer broke out early — stop the in-flight work
            self.terminate()
            raise
        except BaseException:  # KeyboardInterrupt included: no hang
            self.terminate()
            raise


def pmap(tasks, fn, jobs=1):
    """Map ``fn`` over ``tasks``; return values in task order.

    ``jobs <= 1`` (or a single task) runs inline in the parent — the
    bit-identical serial reference path.  Otherwise the pool drains
    every task even after failures, then raises :class:`ParallelError`
    carrying each failure's traceback.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    with WorkerPool(min(jobs, len(tasks))) as pool:
        results = list(pool.imap(fn, tasks))
    failures = [r for r in results if not r.ok]
    if failures:
        raise ParallelError(failures)
    return [r.value for r in results]


def default_jobs():
    """A sensible ``--jobs`` ceiling: the machine's CPU count."""
    return os.cpu_count() or 1
