"""Process-parallel execution of independent simulation tasks.

See :mod:`repro.parallel.pool` for the pool design and the
determinism/merge contract (ordered results, parent-side aggregation,
``jobs=1`` as the inline reference path).
"""

from repro.parallel.pool import (
    ParallelError,
    TaskResult,
    WorkerPool,
    default_jobs,
    pmap,
)

__all__ = [
    "ParallelError",
    "TaskResult",
    "WorkerPool",
    "default_jobs",
    "pmap",
]
