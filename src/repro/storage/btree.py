"""A B-link tree: B+ tree with right-sibling links and high keys.

This is the index structure PostgreSQL uses for its B-tree access method
(Lehman & Yao).  The MNode stores its dentry and inode tables in these
trees keyed by ``(parent_id, name)`` tuples, so "children of directory d"
is the range scan ``[(d, ''), (d, +inf))``.

Deletion is lazy in the PostgreSQL style: entries are removed from leaves
but pages are never eagerly merged, trading transient sparsity for simple,
always-correct structure.  Splits maintain the right-link and high-key
invariants, which :func:`check_invariants` (used by the property tests)
verifies.
"""

import bisect


class _TreeNode:
    __slots__ = ("leaf", "keys", "children", "values", "right", "high_key")

    def __init__(self, leaf):
        self.leaf = leaf
        self.keys = []
        self.children = [] if not leaf else None
        self.values = [] if leaf else None
        self.right = None
        #: Upper bound (exclusive) of keys in this node; ``None`` means
        #: unbounded (rightmost node at its level).
        self.high_key = None


class BLinkTree:
    """An ordered mapping with range scans.

    ``order`` is the maximum number of keys per node; nodes split at
    ``order + 1``.
    """

    def __init__(self, order=64):
        if order < 3:
            raise ValueError("order must be >= 3")
        self.order = order
        self._root = _TreeNode(leaf=True)
        self._size = 0
        #: Hash shadow of the leaf level: key -> value.  Point reads are
        #: the hot path (every dentry/inode access); the tree structure
        #: is only needed for ordered scans, so ``get`` answers from the
        #: dict and ``insert``/``delete`` keep both in lockstep.
        self._map = {}

    def __len__(self):
        return self._size

    def __contains__(self, key):
        return key in self._map

    # -- search ----------------------------------------------------------

    def _descend(self, key):
        """Return (leaf, path) where path is the list of internal nodes."""
        node = self._root
        path = []
        while not node.leaf:
            # Follow right-links if the key is beyond this node's range.
            while node.high_key is not None and key >= node.high_key:
                node = node.right
            path.append(node)
            idx = bisect.bisect_right(node.keys, key)
            node = node.children[idx]
        while node.high_key is not None and key >= node.high_key:
            node = node.right
        return node, path

    def get(self, key, default=None):
        """Return the value for ``key``, or ``default`` if absent."""
        return self._map.get(key, default)

    # -- mutation ----------------------------------------------------------

    def insert(self, key, value, overwrite=True):
        """Insert ``key`` -> ``value``.

        Returns True if a new entry was created, False if an existing
        entry was found (and overwritten when ``overwrite``).
        """
        leaf, path = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            if overwrite:
                leaf.values[idx] = value
                self._map[key] = value
            return False
        leaf.keys.insert(idx, key)
        leaf.values.insert(idx, value)
        self._map[key] = value
        self._size += 1
        self._split_upward(leaf, path)
        return True

    def delete(self, key):
        """Remove ``key``; returns True if it was present."""
        leaf, _ = self._descend(key)
        idx = bisect.bisect_left(leaf.keys, key)
        if idx < len(leaf.keys) and leaf.keys[idx] == key:
            leaf.keys.pop(idx)
            leaf.values.pop(idx)
            del self._map[key]
            self._size -= 1
            return True
        return False

    def _split_upward(self, node, path):
        while len(node.keys) > self.order:
            mid = len(node.keys) // 2
            sibling = _TreeNode(leaf=node.leaf)
            if node.leaf:
                split_key = node.keys[mid]
                sibling.keys = node.keys[mid:]
                sibling.values = node.values[mid:]
                node.keys = node.keys[:mid]
                node.values = node.values[:mid]
            else:
                # The middle key moves up; it separates node and sibling.
                split_key = node.keys[mid]
                sibling.keys = node.keys[mid + 1:]
                sibling.children = node.children[mid + 1:]
                node.keys = node.keys[:mid]
                node.children = node.children[:mid + 1]
            sibling.right = node.right
            sibling.high_key = node.high_key
            node.right = sibling
            node.high_key = split_key

            if path:
                parent = path.pop()
                # split_key is not in parent yet; insert key and child.
                idx = bisect.bisect_left(parent.keys, split_key)
                parent.keys.insert(idx, split_key)
                parent.children.insert(idx + 1, sibling)
                node = parent
            else:
                root = _TreeNode(leaf=False)
                root.keys = [split_key]
                root.children = [node, sibling]
                self._root = root
                return

    # -- scans -------------------------------------------------------------

    def items(self, lo=None, hi=None):
        """Yield (key, value) pairs with lo <= key < hi, in key order."""
        if lo is None:
            node = self._leftmost_leaf()
            idx = 0
        else:
            node, _ = self._descend(lo)
            idx = bisect.bisect_left(node.keys, lo)
        while node is not None:
            while idx < len(node.keys):
                key = node.keys[idx]
                if hi is not None and key >= hi:
                    return
                yield key, node.values[idx]
                idx += 1
            node = node.right
            idx = 0

    def keys(self, lo=None, hi=None):
        for key, _ in self.items(lo, hi):
            yield key

    def first_key(self, lo=None, hi=None):
        """The smallest key in [lo, hi), or None when the range is empty."""
        for key in self.keys(lo, hi):
            return key
        return None

    def _leftmost_leaf(self):
        node = self._root
        while not node.leaf:
            node = node.children[0]
        return node

    # -- verification ------------------------------------------------------

    def check_invariants(self):
        """Raise AssertionError if any structural invariant is violated.

        Checked: key ordering within nodes, children ranges vs separator
        keys, leaf chain ordering, high-key bounds, and size accounting.
        """
        count = self._check_node(self._root, None, None)
        assert count == self._size, "size mismatch: {} != {}".format(
            count, self._size
        )
        prev = None
        for key in self.keys():
            assert prev is None or prev < key, "leaf chain out of order"
            prev = key
        assert self._map == dict(self.items()), "hash shadow out of sync"

    def _check_node(self, node, lo, hi):
        keys = node.keys
        assert keys == sorted(keys), "node keys unsorted"
        for key in keys:
            assert lo is None or key >= lo, "key below range"
            assert hi is None or key < hi, "key above range"
        if node.high_key is not None:
            for key in keys:
                assert key < node.high_key, "key >= high_key"
        if node.leaf:
            assert len(node.values) == len(keys)
            return len(keys)
        assert len(node.children) == len(keys) + 1
        total = 0
        bounds = [lo] + list(keys) + [hi]
        for i, child in enumerate(node.children):
            total += self._check_node(child, bounds[i], bounds[i + 1])
        return total


_MISSING = object()
