"""Per-MNode storage engine.

The paper's metadata nodes are PostgreSQL instances with custom extensions,
relying on the database's B-link tree index, write-ahead logging and
transactions.  This package provides those primitives natively:

* :class:`BLinkTree` — an ordered index with right-sibling links and lazy
  deletion (PostgreSQL-style: pages are never eagerly merged).
* :class:`WriteAheadLog` — a group-committing log; concurrent commits
  arriving during a flush coalesce into the next flush, which is exactly
  the WAL-coalescing behaviour FalconFS's request merging exploits.
* :class:`LockManager` — shared/exclusive locks with FIFO fairness.
* :class:`Table` / :class:`Transaction` — a transactional key-value table
  over the tree with buffered writes applied at commit.
"""

from repro.storage.btree import BLinkTree
from repro.storage.replication import LogShipper, Standby, divergence
from repro.storage.locks import LockManager, LockMode
from repro.storage.table import Table, Transaction
from repro.storage.wal import WriteAheadLog

__all__ = [
    "BLinkTree",
    "LogShipper",
    "Standby",
    "divergence",
    "LockManager",
    "LockMode",
    "Table",
    "Transaction",
    "WriteAheadLog",
]
