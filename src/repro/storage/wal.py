"""Write-ahead log with group commit.

A commit request hands the log a number of record bytes and receives an
event that fires when those bytes are durable.  If a flush is already in
flight, the request joins the *next* flush — so concurrent committers
share one fsync.  This is the mechanism behind FalconFS's WAL coalescing
(§4.4): batching K operations into one transaction turns K fsyncs into
one, and the log's metrics expose exactly that ratio.
"""

from repro.obs.tracer import CAT_WAL


class WriteAheadLog:
    """Group-committing log owned by one MNode."""

    def __init__(self, env, costs, metrics=None):
        self.env = env
        self.costs = costs
        self.metrics = metrics
        self._pending = []
        self._flushing = False
        #: Totals for experiment readout.
        self.flush_count = 0
        self.bytes_written = 0
        self.records_written = 0

    def commit(self, nbytes, records=1, ctx=None):
        """Request durability of ``nbytes`` of log; returns an event.

        With a traced ``ctx``, a ``wal.commit`` span covers the full wait
        (queueing behind an in-flight flush plus the fsync itself)."""
        done = self.env.event()
        if ctx is not None and ctx.tracer.enabled:
            span = ctx.start_span(
                "wal.commit", CAT_WAL,
                attrs={"bytes": nbytes, "records": records},
            )
            done.callbacks.append(
                lambda _event, span=span: span.finish(self.env.now)
            )
        self._pending.append((done, nbytes, records))
        if not self._flushing:
            self._flushing = True
            self.env.process(self._flusher())
        return done

    def _flusher(self):
        while self._pending:
            batch, self._pending = self._pending, []
            nbytes = sum(b for _, b, _ in batch)
            records = sum(r for _, _, r in batch)
            duration = (
                self.costs.wal_fsync_us + nbytes * self.costs.wal_us_per_byte
            )
            yield self.env.timeout(duration)
            self.flush_count += 1
            self.bytes_written += nbytes
            self.records_written += records
            if self.metrics is not None:
                self.metrics.counter("wal_flushes").inc()
                self.metrics.counter("wal_bytes").inc(amount=nbytes)
            for done, _, _ in batch:
                done.succeed()
        self._flushing = False

    @property
    def records_per_flush(self):
        """Average commit-batch size achieved so far (1.0 = no batching)."""
        if self.flush_count == 0:
            return 0.0
        return self.records_written / self.flush_count
