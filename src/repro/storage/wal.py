"""Durable write-ahead log with group commit, segments and redo replay.

A commit request hands the log a transaction's logical records and
receives an event that fires when those records are durable.  If a flush
is already in flight, the request joins the *next* flush — so concurrent
committers share one fsync.  This is the mechanism behind FalconFS's WAL
coalescing (§4.4): batching K operations into one transaction turns K
fsyncs into one, and the log's metrics expose exactly that ratio.

Unlike a pure timing device, the log actually *stores* what it was asked
to make durable, the way the paper's PostgreSQL MNodes do:

* every :meth:`commit` appends one :class:`WalRecord` (LSN, logical
  payload, per-record checksum) to the active :class:`WalSegment`;
  segments rotate at ``costs.wal_segment_bytes``;
* the **fsync horizon** ``durable_lsn`` advances only when a flush
  completes — records at or below it survive a crash;
* a crash mid-flush (:meth:`power_fail`) leaves a **torn tail**: the
  in-flight batch was partially written, so its records fail their
  checksum on replay and its waiters are *never* acknowledged (a dead
  machine must not confirm durability it never reached);
* :meth:`replay` is the redo scan a restarting node runs: it reads the
  segments in LSN order and truncates at the first record that fails
  verification (torn tail or injected disk corruption).
"""

import zlib

from repro.obs.tracer import CAT_WAL


def wal_checksum(lsn, payload, term=0):
    """Deterministic per-record checksum over the logical payload.

    ``term`` (the consensus term of the appending leader) folds into the
    checksum only when nonzero, so records written outside consensus
    mode — and every pre-existing golden trace — keep their bytes."""
    if term:
        return zlib.crc32(repr((term, lsn, payload)).encode("utf-8"))
    return zlib.crc32(repr((lsn, payload)).encode("utf-8"))


class WalRecord:
    """One appended transaction: LSN, logical records, term, checksum.

    ``payload`` is the transaction's logical record list
    (``(table, key, value-or-None)`` tuples, as produced by
    :meth:`~repro.storage.table.Transaction.export_writes`), or ``None``
    for control records (2PC votes) that carry no redo content.
    ``term`` is the consensus term under which the record was appended
    (0 when the log is not part of a replicated consensus group).
    """

    __slots__ = ("lsn", "payload", "nbytes", "term", "_delta")

    def __init__(self, lsn, payload, nbytes, term=0):
        self.lsn = lsn
        self.payload = payload
        self.nbytes = nbytes
        self.term = term
        #: XOR distance between the stored and the true checksum.  Zero
        #: means the on-disk image is intact; a mid-flush tear or fault
        #:  injection sets a nonzero delta.  Kept as a delta so the CRC
        #: itself is only computed when something actually reads it —
        #: commits on the happy path never pay for it.
        self._delta = 0

    def tear(self):
        """Mark the on-disk image partial (crash mid-write)."""
        self._delta = 0xFFFFFFFF

    def corrupt(self):
        """Flip the stored checksum (disk corruption injection)."""
        self._delta = 0x1

    @property
    def checksum(self):
        return wal_checksum(self.lsn, self.payload, self.term)

    @property
    def stored(self):
        """What the medium actually holds; diverges from ``checksum``
        when the record is torn or corrupted."""
        return self.checksum ^ self._delta

    @property
    def intact(self):
        return self._delta == 0


class WalSegment:
    """A contiguous run of records sharing one log file."""

    __slots__ = ("index", "records", "nbytes")

    def __init__(self, index):
        self.index = index
        self.records = []
        self.nbytes = 0

    def append(self, record):
        self.records.append(record)
        self.nbytes += record.nbytes


class DiskSlowdown:
    """Gray slow-not-dead disk state for one WAL.

    While active, fsync latency and per-byte bandwidth cost stretch
    toward ``fsync_factor`` / ``bandwidth_factor``, ramping up linearly
    over ``ramp_us`` (production disks degrade gradually — a cliff is a
    crash, a ramp is a gray failure).  Outside ``[start, start+duration]``
    the factors are exactly 1.0.
    """

    __slots__ = ("start_us", "duration_us", "ramp_us", "fsync_factor",
                 "bandwidth_factor")

    def __init__(self, start_us, duration_us, fsync_factor=8.0,
                 bandwidth_factor=4.0, ramp_us=500.0):
        self.start_us = start_us
        self.duration_us = duration_us
        self.ramp_us = ramp_us
        self.fsync_factor = fsync_factor
        self.bandwidth_factor = bandwidth_factor

    def factors_at(self, now_us):
        """``(fsync_multiplier, bandwidth_multiplier)`` at ``now_us``."""
        t = now_us - self.start_us
        if t < 0.0 or t > self.duration_us:
            return 1.0, 1.0
        scale = 1.0
        if self.ramp_us > 0.0 and t < self.ramp_us:
            scale = t / self.ramp_us
        return (1.0 + (self.fsync_factor - 1.0) * scale,
                1.0 + (self.bandwidth_factor - 1.0) * scale)


class WriteAheadLog:
    """Group-committing durable log owned by one MNode."""

    def __init__(self, env, costs, metrics=None):
        self.env = env
        self.costs = costs
        self.metrics = metrics
        self._pending = []
        self._flushing = False
        #: Monotone LSN allocator (1-based; 0 = nothing appended).
        self.next_lsn = 1
        #: Fsync horizon: highest LSN whose flush completed.
        self.durable_lsn = 0
        #: True after :meth:`power_fail` — the owning machine crashed.
        self.failed = False
        #: On-disk segments (records that at least entered a flush).
        self.segments = [WalSegment(0)]
        #: Appended commits that never reached the device (crash before
        #: their flush started) — unfsynced and unwritten.
        self.lost_unwritten = 0
        #: Records physically torn by a crash mid-flush.
        self.torn_records = 0
        #: Totals for experiment readout.
        self.flush_count = 0
        self.bytes_written = 0
        self.records_written = 0
        #: Active :class:`DiskSlowdown`, or None (the overwhelmingly
        #: common case — the flush path charges the original cost
        #: expression untouched, keeping golden traces bit-identical).
        self.slow_disk = None
        #: Consensus term stamped on every appended record; stays 0 (and
        #: therefore invisible to checksums and goldens) outside a
        #: replicated consensus group.
        self.term = 0

    # -- appending -------------------------------------------------------

    def commit(self, nbytes, records=1, ctx=None, payload=None):
        """Request durability of one transaction; returns an event.

        ``payload`` is the transaction's logical record list, retained
        in the log for redo replay.  With a traced ``ctx``, a
        ``wal.commit`` span covers the full wait (queueing behind an
        in-flight flush plus the fsync itself)."""
        done = self.env.event()
        if self.failed:
            # A dead machine's log accepts nothing; the caller parks on
            # an event that never fires (its process died too).
            return done
        if ctx is not None and ctx.traced:
            span = ctx.start_span(
                "wal.commit", CAT_WAL,
                attrs={"bytes": nbytes, "records": records},
            )
            done.callbacks.append(
                lambda _event, span=span: span.finish(self.env.now)
            )
        record = WalRecord(self.next_lsn, payload, nbytes, term=self.term)
        self.next_lsn += 1
        self._pending.append((done, record, records))
        if not self._flushing:
            self._flushing = True
            self.env.process(self._flusher())
        return done

    def bootstrap(self, payloads, terms=None):
        """Install a base image: append ``payloads`` as already-durable
        records (no simulated time).  A promoted or redo-recovered node
        starts from the state its tables were built from — this is the
        base backup its future crash recovery replays before any new
        records.  ``terms`` (optional, parallel to ``payloads``) stamps
        each record with the consensus term it was originally appended
        under, so redo recovery preserves term history."""
        for i, payload in enumerate(payloads):
            term = terms[i] if terms is not None else self.term
            record = WalRecord(self.next_lsn, payload,
                               self.costs.wal_record_bytes, term=term)
            self.next_lsn += 1
            self._segment_append(record)
            self.durable_lsn = record.lsn

    def _segment_append(self, record):
        segment = self.segments[-1]
        if segment.nbytes >= self.costs.wal_segment_bytes and segment.records:
            segment = WalSegment(segment.index + 1)
            self.segments.append(segment)
        segment.append(record)

    # -- flushing --------------------------------------------------------

    def _flusher(self):
        while self._pending:
            batch, self._pending = self._pending, []
            nbytes = sum(r.nbytes for _, r, _ in batch)
            records = sum(n for _, _, n in batch)
            # The batch hits the device now; the barrier completes after
            # the fsync latency.  Records are on disk but not yet safe.
            for _, record, _ in batch:
                self._segment_append(record)
            slow = self.slow_disk
            if slow is None:
                duration = (
                    self.costs.wal_fsync_us
                    + nbytes * self.costs.wal_us_per_byte
                )
            else:
                fsync_mult, bw_mult = slow.factors_at(self.env.now_us())
                duration = (
                    self.costs.wal_fsync_us * fsync_mult
                    + nbytes * self.costs.wal_us_per_byte * bw_mult
                )
            # The environment owns the durability barrier: the simulator
            # charges the modeled fsync latency; the live backend syncs a
            # real log file and fires when the device confirms.
            yield self.env.fsync(duration, nbytes)
            if self.failed:
                # The machine lost power while this fsync was in flight:
                # the batch is a torn tail — partially persisted, failing
                # checksums on replay — and its waiters are never told
                # the write was durable (no zombie durability acks).
                for _, record, _ in batch:
                    record.tear()
                self.torn_records += len(batch)
                self.lost_unwritten += len(self._pending)
                self._pending = []
                return
            self.durable_lsn = batch[-1][1].lsn
            self.flush_count += 1
            self.bytes_written += nbytes
            self.records_written += records
            if self.metrics is not None:
                self.metrics.counter("wal_flushes").inc()
                self.metrics.counter("wal_bytes").inc(amount=nbytes)
            for done, _, _ in batch:
                done.succeed()
        self._flushing = False

    # -- crash and recovery ----------------------------------------------

    def power_fail(self):
        """The owning machine crashed.  From this instant the log
        acknowledges nothing: an fsync in flight becomes a torn tail and
        commits that never reached the device are dropped.  (A transient
        hang does **not** power-fail the log — the device completes its
        writes while the host is unreachable.)"""
        if self.failed:
            return
        self.failed = True
        if not self._flushing and self._pending:
            self.lost_unwritten += len(self._pending)
            self._pending = []

    def replay(self):
        """Redo scan: read the segments in LSN order.

        Returns ``(payloads, torn)`` where ``payloads`` is the list of
        ``(lsn, payload)`` for every record up to the first verification
        failure, and ``torn`` counts the records truncated from that
        point on (the torn tail, plus anything behind an injected
        corruption — standard WAL recovery stops at the first bad
        record).  Read-only and idempotent.
        """
        payloads = []
        torn = 0
        broken = False
        for segment in self.segments:
            for record in segment.records:
                if broken or not record.intact:
                    broken = True
                    torn += 1
                    continue
                payloads.append((record.lsn, record.payload))
        return payloads, torn

    def replay_entries(self):
        """Like :meth:`replay` but keeps consensus terms: returns
        ``(entries, torn)`` where entries are ``(lsn, term, payload)``
        triples for the verified durable prefix."""
        entries = []
        torn = 0
        broken = False
        for segment in self.segments:
            for record in segment.records:
                if broken or not record.intact:
                    broken = True
                    torn += 1
                    continue
                entries.append((record.lsn, record.term, record.payload))
        return entries, torn

    # -- readout ---------------------------------------------------------

    @property
    def appended_txns(self):
        """Transactions handed to :meth:`commit` (durable or not)."""
        return self.next_lsn - 1

    @property
    def unfsynced_txns(self):
        """Appended transactions that never reached the fsync horizon."""
        return self.appended_txns - self.durable_lsn

    @property
    def segment_count(self):
        return len(self.segments)

    @property
    def records_per_flush(self):
        """Average commit-batch size achieved so far (1.0 = no batching)."""
        if self.flush_count == 0:
            return 0.0
        return self.records_written / self.flush_count
