"""Transactional key-value tables over the B-link tree.

A :class:`Table` stores tuples keyed by ``(parent_id, name)`` (the paper's
Table 1 schema for both dentries and inodes).  A :class:`Transaction`
buffers writes against one or more tables and applies them atomically at
commit, after its WAL records are durable.  Isolation between concurrent
transactions is the caller's job (the MNode holds its dentry/inode locks
across the transaction, and FalconFS batches compatible requests into a
single transaction — §4.4).
"""

from repro.storage.btree import BLinkTree

_MISSING = object()
_DELETED = object()


class Table:
    """A named, ordered key-value table."""

    def __init__(self, name, order=64):
        self.name = name
        self.tree = BLinkTree(order=order)
        # Point reads go straight to the tree's hash shadow (mutated in
        # place, never rebound), skipping two call frames on the hot path.
        self.get = self.tree._map.get

    def __len__(self):
        return len(self.tree)

    def __contains__(self, key):
        return key in self.tree

    def get(self, key, default=None):
        return self.tree.get(key, default)

    def put(self, key, value):
        """Non-transactional insert/overwrite (used for bulk loading)."""
        self.tree.insert(key, value, overwrite=True)

    def delete(self, key):
        return self.tree.delete(key)

    def scan(self, lo=None, hi=None):
        return self.tree.items(lo, hi)

    def scan_prefix(self, prefix):
        """Iterate entries whose tuple key starts with ``prefix``.

        With keys of the form ``(pid, name)`` and ``prefix = (pid,)`` this
        enumerates a directory's children in name order.
        """
        lo = prefix
        for key, value in self.tree.items(lo=lo):
            if key[: len(prefix)] != prefix:
                return
            yield key, value

    def has_prefix(self, prefix):
        """True if at least one key starts with ``prefix``."""
        for _ in self.scan_prefix(prefix):
            return True
        return False


class Transaction:
    """Buffered writes over tables, made durable and applied at commit.

    ``on_commit`` (optional) is invoked with the transaction after its
    writes are applied — the hook log-shipping replication uses to ship
    committed records to a standby.

    ``barrier`` (optional) is a generator function run after WAL
    durability but before the writes are applied — the hook a node uses
    to freeze a commit whose fsync wait straddled a crash, so a dead
    machine cannot apply zombie writes.
    """

    __slots__ = ("env", "wal", "costs", "on_commit", "barrier", "ctx",
                 "_writes", "committed", "aborted")

    def __init__(self, env, wal, costs, on_commit=None, ctx=None,
                 barrier=None):
        self.env = env
        self.wal = wal
        self.costs = costs
        self.on_commit = on_commit
        self.barrier = barrier
        #: Operation (or batch) context the WAL commit is attributed to.
        self.ctx = ctx
        self._writes = {}
        self.committed = False
        self.aborted = False

    def _bucket(self, table):
        return self._writes.setdefault(id(table), (table, {}))[1]

    def get(self, table, key, default=None):
        """Read through the transaction's own writes, then the table."""
        bucket = self._writes.get(id(table))
        if bucket is not None and key in bucket[1]:
            value = bucket[1][key]
            return default if value is _DELETED else value
        return table.get(key, default)

    def put(self, table, key, value):
        self._check_open()
        self._bucket(table)[key] = value

    def delete(self, table, key):
        self._check_open()
        self._bucket(table)[key] = _DELETED

    @property
    def write_count(self):
        return sum(len(bucket) for _, bucket in self._writes.values())

    def commit(self):
        """Generator: persist WAL, then apply writes.  ``yield from`` it."""
        self._check_open()
        records = self.write_count
        if records:
            nbytes = records * self.costs.wal_record_bytes
            yield self.wal.commit(nbytes, records=records, ctx=self.ctx,
                                  payload=self.export_writes())
        if self.barrier is not None:
            yield from self.barrier()
        for table, bucket in self._writes.values():
            for key, value in bucket.items():
                if value is _DELETED:
                    table.delete(key)
                else:
                    table.put(key, value)
        self.committed = True
        if self.on_commit is not None:
            self.on_commit(self)

    def abort(self):
        self._check_open()
        self._writes.clear()
        self.aborted = True

    def export_writes(self):
        """Logical records for replication: (table, key, value|None).

        Values are copies (when the record supports ``copy()``) so the
        standby never aliases the primary's live objects.
        """
        records = []
        for table, bucket in self._writes.values():
            for key, value in bucket.items():
                if value is _DELETED:
                    records.append((table.name, key, None))
                else:
                    copied = value.copy() if hasattr(value, "copy") else value
                    records.append((table.name, key, copied))
        return records

    def _check_open(self):
        if self.committed or self.aborted:
            raise RuntimeError("transaction is closed")
