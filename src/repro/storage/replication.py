"""Primary-standby metadata replication (log shipping).

The paper's MNodes are PostgreSQL instances and inherit its
primary-secondary replication; the evaluation runs with replication
disabled, but the mechanism belongs to the system.  This module
implements asynchronous log shipping:

* every committed transaction on a primary exports its logical records
  (table, key, new value or tombstone) and ships them to the standby in
  commit order;
* the standby applies records in order, tracks its applied LSN, exposes
  replication lag, and acknowledges its applied LSN back to the primary
  (``wal_ack``), which prunes the acknowledged prefix of its shipping
  history — retention is bounded by the unacked suffix, not the run
  length;
* a standby can also **catch up from scratch** (:meth:`Standby.catch_up`):
  it fetches a snapshot of the primary's tables, installs it, fast-
  forwards its applied LSN to the snapshot point and then drains the
  buffered log-shipping delta — the rejoin path a redo-recovered node
  takes after a promotion already replaced it;
* :func:`divergence` compares a primary's tables against its standby for
  convergence checking (used by tests and by operators after drain).

Failover (promoting a standby into the MNode ring) additionally requires
rerouting in the cluster directory; the standby conservatively marks all
replicated namespace dentries INVALID on promotion so lazy replication
re-validates them — see :meth:`Standby.promote_tables`.
"""

from repro.core.records import INVALID
from repro.net import Node
from repro.storage.table import Table


class LogShipper:
    """Primary-side hook: serialize committed writes to the standby.

    Shipping and acks are fire-and-forget messages, so a gray-degraded
    link (seeded packet loss) can swallow either side.  A lost
    ``wal_ship`` is a silent, *permanent* replication gap — the standby
    buffers around it forever and every later promotion loses the
    acked transaction, far outside any excusable crash window; a lost
    ``wal_ack`` strands retained history.  The shipper therefore
    retransmits: while ``history`` (the unacknowledged suffix, full
    logical records) is non-empty and ``retry_us > 0``, a timer re-ships
    the suffix whenever a period passes without ack progress.  The timer
    only exists while there is something unacknowledged — an idle
    cluster still runs to quiescence — and duplicate shipments are
    ignored (and re-acked) by the standby, so retransmission is safe
    under reordering too.
    """

    def __init__(self, node, standby_name, start_lsn=1, retry_us=0.0):
        self.node = node
        self.standby_name = standby_name
        self.next_lsn = start_lsn
        #: Highest LSN the standby has acknowledged applying.
        self.acked_lsn = start_lsn - 1
        self.shipped_records = 0
        #: (lsn, [(table, key, value), ...]) per shipped-but-
        #: unacknowledged transaction — the retained suffix of the
        #: primary's shipping index, full records so the suffix can be
        #: retransmitted verbatim.  Acknowledged entries are pruned
        #: (bounded retention); after a crash, the entries above the
        #: standby's applied LSN are exactly the lost-unshipped window.
        self.history = []
        #: Retransmission period (0 disables — the pre-gray behavior).
        self.retry_us = retry_us
        self.resent_records = 0
        self._retx_armed = False

    def ship(self, txn):
        """Ship one committed transaction's writes (fire-and-forget;
        asynchronous replication does not delay the commit path)."""
        self.ship_payload(txn.export_writes())

    def ship_payload(self, records, lsn=None):
        """Ship a logical record list; assigns the next LSN unless a
        re-ship ``lsn`` is given (restart catch-up resends the durable
        suffix the standby missed under its original LSNs)."""
        if not records:
            return None
        if lsn is None:
            lsn = self.next_lsn
            self.next_lsn += 1
            self.history.append((lsn, records))
        elif (lsn > self.acked_lsn
              and all(entry[0] != lsn for entry in self.history)):
            # Explicit-LSN re-ship (restart catch-up): retain it unless
            # that LSN is already tracked or acknowledged, so
            # retransmission never duplicates a history entry and never
            # re-retains what the standby already confirmed.
            self.history.append((lsn, records))
        self._send(lsn, records)
        self._arm_retransmit()
        return lsn

    def _send(self, lsn, records):
        self.shipped_records += len(records)
        self.node.send(
            self.standby_name, "wal_ship",
            {"lsn": lsn, "records": records},
            size=self.node.costs.rpc_request_bytes
            + self.node.costs.wal_record_bytes * len(records),
        )

    def resend_unacked(self):
        """Re-ship the entire unacknowledged suffix (idempotent at the
        standby: duplicates are dropped and re-acked)."""
        for lsn, records in list(self.history):
            self._send(lsn, records)
            self.resent_records += len(records)

    def _arm_retransmit(self):
        if self.retry_us <= 0.0 or self._retx_armed or not self.history:
            return
        self._retx_armed = True
        self.node.env.process(self._retransmit_loop())

    def _retransmit_loop(self):
        """Event-driven retransmission: sleeps one period at a time and
        re-ships when no ack progress was made; exits the moment the
        suffix drains (quiescence-safe — no standing periodic timer).
        A down node parks on its resume event instead of spinning; a
        halted (replaced) incarnation stops retransmitting for good."""
        node = self.node
        env = node.env
        try:
            while self.history:
                acked_before = self.acked_lsn
                yield env.sleep(self.retry_us)
                while node.network.is_down(node.name) and not node.halted:
                    yield node.network.resume_event(node.name)
                if node.halted:
                    return
                if self.history and self.acked_lsn == acked_before:
                    self.resend_unacked()
        finally:
            self._retx_armed = False

    def acknowledge(self, applied_lsn):
        """Consume a standby ack: prune history up to ``applied_lsn``,
        keeping only the unacknowledged suffix.  Pruning runs even for
        no-progress acks — a duplicate re-ack must still clear any
        stale entry a re-ship parked at or below the acked horizon, or
        the retransmit timer would re-ship it forever."""
        if applied_lsn > self.acked_lsn:
            self.acked_lsn = applied_lsn
        if self.history:
            self.history = [
                entry for entry in self.history
                if entry[0] > self.acked_lsn
            ]

    @property
    def retained(self):
        """Unacknowledged entries currently held (retention readout)."""
        return len(self.history)


class Standby(Node):
    """A warm standby holding a replica of one primary's tables."""

    def __init__(self, env, network, name, table_names=("dentry", "inode")):
        super().__init__(env, network, name)
        self.tables = {name: Table(name) for name in table_names}
        self.applied_lsn = 0
        self.applied_records = 0
        #: Out-of-order buffer (shipping is FIFO per sender in this
        #: simulator, but the protocol tolerates reordering).
        self._pending = {}
        #: While True (snapshot fetch in flight), shipments are buffered
        #: in ``_pending`` but not applied — the snapshot install decides
        #: which of them the base image already covers.
        self.catching_up = False
        #: Set by :meth:`promote_tables`: this standby's tables are now
        #: the live primary's tables (installed by reference), so any
        #: late shipment must be ignored — applying it would write stale
        #: values straight into the promoted node's state.
        self.promoted = False
        self.ignored_shipments = 0
        self.duplicate_shipments = 0

    def table(self, name):
        return self.tables[name]

    def handle(self, message):
        if message.kind == "applied_query":
            # A restarted primary asking where to resume the delta.
            yield from self.execute(self.costs.index_lookup_us)
            self.respond(message, {"applied_lsn": self.applied_lsn})
            return
        if message.kind != "wal_ship":
            raise RuntimeError(
                "{} cannot handle {!r}".format(self.name, message)
            )
        payload = message.payload
        lsn = payload["lsn"]
        if self.promoted:
            # Zombie shipment: this standby's tables now belong to the
            # promoted primary.  A delayed or reordered ship arriving
            # after promotion must not apply (it would overwrite newer
            # promoted-primary writes with stale values), and must not
            # be acked (the sender is a retired incarnation).
            self.ignored_shipments += 1
            return
        if lsn <= self.applied_lsn and not self.catching_up:
            # Duplicate / already-covered shipment (a retransmission
            # after a lost ack, or a reordered straggler): drop it, but
            # re-ack the applied horizon so the primary can prune the
            # history the lost ack stranded.
            self.duplicate_shipments += 1
            self.send(message.sender, "wal_ack",
                      {"applied_lsn": self.applied_lsn})
            self.respond(message, {"applied_lsn": self.applied_lsn})
            return
        self._pending[lsn] = payload["records"]
        applied = 0
        if not self.catching_up:
            applied = self._apply_ready()
        if applied:
            yield from self.execute(
                self.costs.index_insert_us * applied
            )
        # Acknowledge the applied horizon so the primary can prune its
        # retained history (fire-and-forget, like shipping itself).
        self.send(message.sender, "wal_ack",
                  {"applied_lsn": self.applied_lsn})
        self.respond(message, {"applied_lsn": self.applied_lsn})

    def _apply_ready(self):
        """Apply every buffered shipment that extends the applied LSN
        contiguously; returns the number of records applied."""
        applied = 0
        while self.applied_lsn + 1 in self._pending:
            self.applied_lsn += 1
            for table_name, key, value in self._pending.pop(
                    self.applied_lsn):
                table = self.tables.setdefault(table_name,
                                               Table(table_name))
                if value is None:
                    table.delete(key)
                else:
                    table.put(key, value)
                applied += 1
        self.applied_records += applied
        return applied

    # -- rejoin catch-up -------------------------------------------------

    def catch_up(self, primary_name, ctx=None):
        """Generator: full resynchronization from ``primary_name``.

        Fetches a snapshot of the primary's tables (the primary's
        shipper must already point here, so commits concurrent with the
        snapshot arrive as buffered deltas), installs it, fast-forwards
        the applied LSN to the snapshot point, then drains whatever
        buffered shipments the snapshot does not cover.

        Idempotent under duplicated and overlapping deliveries: a
        second catch-up racing the first returns immediately (the
        in-flight install decides coverage), and a snapshot *below*
        the already-applied horizon is *refused* — installing it would
        rewind ``applied_lsn`` past deltas this standby already applied
        and acknowledged, which the primary has pruned from its
        retained history; the rewound gap could then never be refilled
        and every later promotion would silently lose those acked
        transactions.  (A snapshot exactly *at* the horizon installs:
        it is the same state, and a fresh standby facing an idle
        primary starts with both at zero.)
        """
        if self.catching_up:
            return 0
        self.catching_up = True
        try:
            reply = yield self.call(primary_name, "snapshot", {}, ctx=ctx)
        except BaseException:
            self.catching_up = False
            raise
        if self.promoted or reply["lsn"] < self.applied_lsn:
            # Stale or duplicate snapshot (an overlapping catch-up
            # already installed a newer one, or deltas advanced past
            # this image while it was in flight): keep the newer state.
            self.catching_up = False
            self._pending = {
                lsn: records for lsn, records in self._pending.items()
                if lsn > self.applied_lsn
            }
            applied = self._apply_ready()
            if applied:
                yield from self.execute(self.costs.index_insert_us * applied)
            self.send(primary_name, "wal_ack",
                      {"applied_lsn": self.applied_lsn})
            return 0
        tables = {}
        installed = 0
        for table_name, entries in reply["tables"].items():
            table = Table(table_name)
            for key, value in entries:
                table.put(tuple(key), value)
                installed += 1
            tables[table_name] = table
        self.tables = tables
        self.applied_lsn = reply["lsn"]
        # Shipments the snapshot already covers are dropped; the rest
        # stay buffered and apply in order below.
        self._pending = {
            lsn: records for lsn, records in self._pending.items()
            if lsn > self.applied_lsn
        }
        self.catching_up = False
        applied = self._apply_ready()
        yield from self.execute(
            self.costs.index_insert_us * (installed + applied)
        )
        self.send(primary_name, "wal_ack",
                  {"applied_lsn": self.applied_lsn})
        return installed

    def lag(self, shipper):
        """Transactions shipped but not yet applied."""
        return (shipper.next_lsn - 1) - self.applied_lsn

    def promote_tables(self):
        """Prepare this standby's tables for promotion to primary.

        Replicated dentry records may be stale relative to other
        replicas' invalidation state, so they are all marked INVALID —
        lazy replication re-fetches them on first use (§4.3).  Returns
        the table dict for installation into a new MNode.
        """
        self.promoted = True
        dentries = self.tables.get("dentry")
        if dentries is not None:
            for _, record in dentries.scan():
                record.state = INVALID
        return self.tables


def divergence(primary, standby):
    """List of (table, key, primary_value, standby_value) differences.

    Compares the primary MNode's ``dentries``/``inodes`` tables against
    the standby's replicas; an empty list after the standby has drained
    means the pair has converged.  Two classes of primary-local state are
    excluded: dentry *state* flags, and dentry entries the primary does
    not own (lazily fetched copies of other MNodes' directories are
    coherence cache, not replicated data).  A key deleted on the primary
    and never seen (or tombstoned) on the standby compares equal —
    tombstone-vs-missing is convergence, not divergence.
    """
    differences = []
    pairs = (
        ("dentry", primary.dentries),
        ("inode", primary.inodes),
    )
    for name, table in pairs:
        replica = standby.tables.get(name, Table(name))
        keys = {k for k, _ in table.scan()}
        keys |= {k for k, _ in replica.scan()}
        for key in sorted(keys):
            if name == "dentry" and not _owned_by(primary, key):
                continue
            mine = table.get(key)
            theirs = replica.get(key)
            if not _records_equal(mine, theirs):
                differences.append((name, key, mine, theirs))
    return differences


def _owned_by(primary, key):
    try:
        return primary.index.locate(key[0], key[1]) in primary.hosted_slots
    except AttributeError:
        return True


def _records_equal(mine, theirs):
    if mine is None or theirs is None:
        return mine is None and theirs is None
    for field in ("ino", "mode", "uid", "gid"):
        if getattr(mine, field, None) != getattr(theirs, field, None):
            return False
    for field in ("is_dir", "size"):
        mv = getattr(mine, field, None)
        tv = getattr(theirs, field, None)
        if mv is not None and tv is not None and mv != tv:
            return False
    return True
