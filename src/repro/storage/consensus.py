"""Quorum consensus for one directory slot's metadata group.

Replaces coordinator-ordained standby promotion with a Raft-shaped
protocol over the existing log-shipping machinery.  Each MNode slot is
a three-member group:

* the **leader** — the serving MNode, whose committed transactions
  become replicated-log entries (:class:`ReplicatedLog` is the
  leader-side shipper: it assigns consensus LSNs, stamps the leader's
  term on every entry, and tracks per-member replication progress);
* one **data follower** — a :class:`ConsensusFollower` (a
  :class:`~repro.storage.replication.Standby` that speaks
  AppendEntries instead of bare ``wal_ship``): it durably appends the
  leader's entries, applies only the *committed* prefix to its tables
  (an uncommitted suffix can still be truncated on conflict; applied
  state cannot), and is the only member that can stand for election;
* one **witness** — a vote-only member holding ``(lsn, term)``
  positions but no data.  It makes the quorum cheap (no third table
  copy) while keeping the safety math: commit quorum and vote quorum
  are both 2-of-3, so they intersect.

Safety properties this module provides (and the checker's tightened
oracle asserts — no promotion-loss excusal):

* **quorum commit** — an operation acknowledges only after the leader
  *and* at least one other member have durably appended it.  A leader
  partitioned into a minority can never reach that quorum, so it can
  never acknowledge a write that a later leader would lack;
* **election safety** — the witness grants at most one vote per term,
  refuses candidates whose ``(last_term, last_lsn)`` trails its own
  positions (so an elected follower provably holds every quorum-acked
  entry), and refuses *any* candidate while it has heard from a live
  leader within an election timeout (leader stickiness).  A pre-vote
  round probes all of that without bumping terms, so a flapping
  partition cannot inflate terms and depose a healthy leader on heal;
* **log matching** — AppendEntries carries the ``(lsn, term)`` of the
  entry preceding the shipped suffix; a member that disagrees refuses
  and truncates its conflicting (always uncommitted) suffix, so two
  members that agree on the term at any LSN hold identical prefixes;
* **leases** — the leader only *serves* (plans operations, answers
  reads) while its lease is live.  The lease is renewed by member acks
  and anchored at the leader-clock **send** timestamp the ack echoes
  back (never at receive time, which would extend it by a stale RTT).
  ``election_timeout_us`` must exceed ``lease_us``: a deposed zombie's
  lease provably lapses before any member can elect a successor, so a
  zombie cannot even serve stale reads into the new leader's reign.

The coordinator is demoted to lease *issuer* and membership registry:
it validates term monotonicity on ``leader_claim`` and runs the
directory surgery, but never ordains a promotion on its own.
"""

from repro.net import Node
from repro.net.rpc import RpcFailure
from repro.obs import NULL_CONTEXT, deadline_call
from repro.storage.replication import Standby
from repro.storage.table import Table


class ReplicatedLog:
    """Leader-side consensus log for one metadata group.

    Drop-in for :class:`~repro.storage.replication.LogShipper` on the
    MNode's commit hook (``ship(txn)``), but every shipped transaction
    becomes a term-stamped log entry and the commit path can park on
    :meth:`wait_quorum` until a majority has durably appended it.

    Entries live above a ``(base_lsn, base_term)`` horizon — the
    snapshot point the leader's tables were built from (bulk load,
    redo recovery, or an election install).  Everything in ``entries``
    carries the *current* term (a leader never appends under an old
    term), which is what makes commit-by-counting safe without Raft's
    §5.4.2 current-term restriction as a separate check.

    Retention is the full in-memory suffix above the base: a lagging
    member backfills from it via gap-nack hints; a member that has
    fallen below the base resynchronizes by snapshot (data follower)
    or by adopting the base (witness).
    """

    def __init__(self, node, witness_name, standby_name=None, term=1,
                 base_lsn=0, base_term=0, group_size=3,
                 lease_us=3000.0, heartbeat_us=1000.0):
        self.node = node
        self.witness_name = witness_name
        #: Kept for LogShipper-compatible readouts (divergence audits,
        #: cluster wiring); the data member's name or None.
        self.standby_name = standby_name
        self.term = term
        self.base_lsn = base_lsn
        self.base_term = base_term
        #: ``[(lsn, term, records), ...]`` — contiguous, strictly above
        #: the base, all stamped with the current term.
        self.entries = []
        self.commit_lsn = base_lsn
        self.quorum = group_size // 2 + 1
        self.lease_us = lease_us
        self.heartbeat_us = heartbeat_us
        #: Leader-clock instant the lease dies unless an ack renews it.
        #: A fresh leader gets one free lease: the election (or the
        #: registry, for an initial/restart grant) just established
        #: that no competitor can be elected within this window.
        self.lease_until = node.clock.now_us() + lease_us
        #: Permanent fence: a member nacked us with a higher term, so a
        #: successor exists.  A deposed log never serves, never acks,
        #: never heartbeats again.
        self.deposed = False
        #: name -> {"match": highest acked lsn, "next": next lsn to
        #: send, "hi": highest lsn ever sent, "data": carries records}.
        #: ``match`` starts at 0 (unknown), never at the base —
        #: commit progress only ever comes from fresh acks.
        self.members = {}
        if standby_name is not None:
            self.members[standby_name] = {
                "match": 0, "next": base_lsn + 1, "hi": 0, "data": True,
            }
        self.members[witness_name] = {
            "match": 0, "next": base_lsn + 1, "hi": 0, "data": False,
        }
        self._waiters = []
        self._running = False
        self.shipped_records = 0
        self.resent_records = 0
        self.quorum_failures = 0

    # -- compat readouts -------------------------------------------------

    @property
    def last_lsn(self):
        return self.entries[-1][0] if self.entries else self.base_lsn

    @property
    def last_term(self):
        return self.entries[-1][1] if self.entries else self.base_term

    @property
    def next_lsn(self):
        """LogShipper-compatible: the LSN the next entry will take."""
        return self.last_lsn + 1

    @property
    def acked_lsn(self):
        """Highest LSN the data member has acknowledged (0 if none)."""
        best = 0
        for member in self.members.values():
            if member["data"]:
                best = max(best, member["match"])
        return best

    @property
    def history(self):
        """Uncommitted suffix as LogShipper-style ``(lsn, records)``."""
        return [(lsn, records) for lsn, _, records in self.entries
                if lsn > self.commit_lsn]

    @property
    def retained(self):
        return len(self.entries)

    # -- appending and shipping ------------------------------------------

    def ship(self, txn):
        """Commit hook: append one committed transaction's writes.

        The WAL's durability barrier has already completed when the
        commit hook runs, so the leader's own copy of this entry is
        durable before any member sees it."""
        self.append(txn.export_writes())

    def ship_payload(self, records, lsn=None):
        """LogShipper-compatible entry point (re-ship LSNs are ignored:
        a consensus log owns its LSN space)."""
        if records:
            self.append(records)

    def append(self, records):
        if not records or self.deposed:
            return None
        lsn = self.last_lsn + 1
        self.entries.append((lsn, self.term, records))
        for name, member in self.members.items():
            self._send_member(name, member)
        return lsn

    def _position_at(self, lsn):
        """``(lsn, term)`` for an LSN at or above the base."""
        if lsn <= self.base_lsn:
            return (self.base_lsn, self.base_term)
        return (lsn, self.entries[lsn - self.base_lsn - 1][1])

    def _send_member(self, name, member):
        """Ship the member's pending suffix (possibly empty — then the
        message is a pure heartbeat that still renews the lease and
        lets the member detect gaps via the ``prev`` check)."""
        if self.deposed:
            return
        start = max(member["next"], self.base_lsn + 1)
        member["next"] = start
        prev = self._position_at(start - 1)
        suffix = self.entries[start - self.base_lsn - 1:]
        if member["data"]:
            body = [[lsn, term, records] for lsn, term, records in suffix]
            shipped = sum(len(records) for _, _, records in suffix)
        else:
            body = [[lsn, term, None] for lsn, term, _ in suffix]
            shipped = len(suffix)
        self.shipped_records += shipped
        resent = sum(1 for lsn, _, _ in suffix if lsn <= member["hi"])
        self.resent_records += resent
        if suffix:
            member["hi"] = max(member["hi"], suffix[-1][0])
            member["next"] = suffix[-1][0] + 1
        self.node.send(
            name, "append_entries",
            {
                "term": self.term, "leader": self.node.name,
                "prev": [prev[0], prev[1]],
                "base": [self.base_lsn, self.base_term],
                "entries": body,
                "commit_lsn": self.commit_lsn,
                "echo": self.node.clock.now_us(),
            },
            size=self.node.costs.rpc_request_bytes
            + self.node.costs.wal_record_bytes * max(1, len(body)),
        )

    def attach_data_member(self, name):
        """(Re)attach a data follower (a rejoin after crash/demotion)."""
        self.standby_name = name
        self.members[name] = {
            "match": 0, "next": self.base_lsn + 1, "hi": 0, "data": True,
        }

    # -- acks, commit, lease ---------------------------------------------

    def on_ack(self, payload):
        """Consume a member's ``append_ack`` (fire-and-forget)."""
        term = payload["term"]
        if term > self.term:
            # A successor's term exists: we are a zombie.  Fence forever.
            self._depose()
            return
        if term < self.term:
            return  # stale ack from before the member adopted our term
        member = self.members.get(payload.get("member"))
        if member is None:
            return
        echo = payload.get("echo")
        if echo is not None and not self.deposed:
            # Anchor the renewal at the *send* instant the ack echoes:
            # the member provably heard us no earlier than then, so the
            # no-election window extends exactly lease_us past it.
            self.lease_until = max(self.lease_until, echo + self.lease_us)
        if payload["ok"]:
            if payload["match_lsn"] > member["match"]:
                member["match"] = payload["match_lsn"]
                self._advance_commit()
            member["next"] = max(member["next"], member["match"] + 1)
        else:
            hint = payload.get("match_lsn", 0)
            member["next"] = max(self.base_lsn + 1,
                                 min(member["next"], hint + 1))
            member["match"] = min(member["match"], hint)
            self._send_member(payload["member"], member)

    def _advance_commit(self):
        matches = sorted(
            [self.last_lsn] + [m["match"] for m in self.members.values()],
            reverse=True,
        )
        candidate = matches[self.quorum - 1]
        if candidate > self.commit_lsn:
            self.commit_lsn = candidate
            for lsn, event in list(self._waiters):
                if lsn <= self.commit_lsn and not event.triggered:
                    event.succeed()

    def _depose(self):
        if self.deposed:
            return
        self.deposed = True
        self.lease_until = float("-inf")
        for _, event in self._waiters:
            if not event.triggered:
                event.succeed()
        self._waiters = []

    def leading(self, now_us):
        """May this leader serve (plan operations, answer reads) now?

        Outside the live-timer phases (setup, drain) the lease is not
        enforced — there are no heartbeats to renew it — but a deposed
        log stays fenced forever."""
        if self.deposed:
            return False
        if not self._running:
            return True
        return now_us < self.lease_until

    def wait_quorum(self, lsn=None):
        """Generator: park until ``lsn`` is quorum-committed.

        Returns True when a majority has durably appended the entry —
        only then may the operation acknowledge.  Returns False when
        that became impossible or unpromisable: the log was deposed
        (a successor exists) or the lease lapsed while waiting (we may
        be the minority side of a partition; the caller answers
        ENOTLEADER and the client re-resolves).  A committed entry
        reports True even under a lapsed lease: a majority holds it,
        so every future leader will too."""
        if lsn is None:
            lsn = self.last_lsn
        env = self.node.env
        clock = self.node.clock
        while True:
            if lsn <= self.commit_lsn:
                return True
            if self.deposed:
                self.quorum_failures += 1
                return False
            if self._running and clock.now_us() >= self.lease_until:
                self.quorum_failures += 1
                return False
            event = env.event()
            self._waiters.append((lsn, event))
            if self._running:
                wait_us = max(1.0, self.lease_until - clock.now_us() + 1.0)
                yield env.any_of(
                    [event, env.timeout(clock.to_env_delay(wait_us))]
                )
            else:
                yield event
            try:
                self._waiters.remove((lsn, event))
            except ValueError:
                pass

    # -- heartbeats ------------------------------------------------------

    def start(self):
        """Start the heartbeat loop (a standing timer: the cluster's
        heal path stops it before quiescence)."""
        if self._running:
            return
        self._running = True
        self.node.env.process(self._heartbeat_loop())

    def stop(self):
        self._running = False

    def _heartbeat_loop(self):
        """Heartbeat doubles as retransmission: each tick re-ships every
        member's pending suffix (usually empty — optimistic pipelining
        advanced ``next`` at send time; a member that lost an append
        nacks the heartbeat's ``prev`` gap and the hint walks ``next``
        back for an immediate backfill)."""
        node = self.node
        env = node.env
        clock = node.clock
        while self._running and not self.deposed and not node.halted:
            yield env.timeout(clock.to_env_delay(self.heartbeat_us))
            if not self._running or self.deposed:
                return
            while node.network.is_down(node.name) and not node.halted:
                yield node.network.resume_event(node.name)
            if node.halted or not self._running or self.deposed:
                return
            for name, member in self.members.items():
                self._send_member(name, member)


class ConsensusFollower(Standby):
    """The data-holding voter of a metadata group.

    Extends :class:`~repro.storage.replication.Standby` with a proper
    replicated log: entries buffer in ``log`` above a snapshot base and
    only the quorum-committed prefix is applied to the tables, so a
    conflicting (necessarily uncommitted) suffix can still be truncated
    without un-applying anything.  It is the only member that can stand
    for election: on a full election-timeout of silence it pre-votes,
    then votes, then claims the slot with the coordinator's registry.
    """

    def __init__(self, env, network, name, slot, witness_name,
                 coordinator_name, rng, election_timeout_us=4000.0,
                 rpc_timeout_us=400.0, table_names=("dentry", "inode")):
        super().__init__(env, network, name, table_names)
        self.slot = slot
        self.witness_name = witness_name
        self.coordinator_name = coordinator_name
        #: Seeded per-follower RNG (from ``shared.streams``) for the
        #: randomized election timeout draw.
        self.rng = rng
        self.election_timeout_us = election_timeout_us
        self.rpc_timeout_us = rpc_timeout_us
        self.term = 0
        self.leader_name = None
        #: ``[(lsn, term, records), ...]`` above ``(log_base_lsn,
        #: log_base_term)`` — the snapshot horizon from catch-up.
        self.log = []
        self.log_base_lsn = 0
        self.log_base_term = 0
        self.commit_lsn = 0
        #: Bumped on every message from a live leader; the election
        #: loop compares epochs across its sleep instead of managing a
        #: cancellable timer.
        self.heard_epoch = 0
        self.elections_started = 0
        self.elections_won = 0
        self.truncations = 0
        self._running = False

    # -- log helpers -----------------------------------------------------

    def _last_lsn(self):
        return self.log[-1][0] if self.log else self.log_base_lsn

    def _last_term(self):
        return self.log[-1][1] if self.log else self.log_base_term

    def _term_at(self, lsn):
        if lsn <= self.log_base_lsn:
            return self.log_base_term if lsn == self.log_base_lsn else None
        index = lsn - self.log_base_lsn - 1
        if index >= len(self.log):
            return None
        return self.log[index][1]

    def _truncate_from(self, lsn):
        if lsn <= self.commit_lsn:
            raise RuntimeError(
                "log-matching violation on {}: asked to truncate "
                "committed entry {} (commit_lsn={})".format(
                    self.name, lsn, self.commit_lsn))
        self.truncations += 1
        self.log = [entry for entry in self.log if entry[0] < lsn]

    def _heard(self):
        self.heard_epoch += 1

    # -- message handling ------------------------------------------------

    def handle(self, message):
        kind = message.kind
        if kind == "append_entries":
            yield from self._on_append(message)
            return
        if kind == "applied_query":
            yield from self.execute(self.costs.index_lookup_us)
            self.respond(message, {"applied_lsn": self.applied_lsn})
            return
        if kind == "wal_ship":
            # Legacy shipping must never reach a consensus follower.
            self.ignored_shipments += 1
            return
        raise RuntimeError(
            "{} cannot handle {!r}".format(self.name, message)
        )

    def _on_append(self, message):
        payload = message.payload
        if self.promoted:
            # We are (becoming) the leader; a deposed sender's traffic
            # is noise.  Never ack it — an ack would renew its lease.
            self.ignored_shipments += 1
            return
        if payload["term"] < self.term:
            self.send(message.sender, "append_ack", {
                "term": self.term, "ok": False, "stale": True,
                "match_lsn": self._last_lsn(),
                "echo": payload["echo"], "member": self.name,
            })
            return
        if payload["term"] > self.term:
            self.term = payload["term"]
        self.leader_name = payload["leader"]
        self._heard()
        if self.catching_up:
            # A snapshot install is in flight and will reset the log
            # base; appends in the meantime are dropped (the leader's
            # heartbeat re-offers the suffix after the install).
            return
        base_lsn, base_term = payload["base"]
        if base_lsn > self._last_lsn():
            # The leader's log starts above everything we have: only a
            # snapshot can catch us up.
            self.env.process(self._resync(payload["leader"]))
            return
        prev_lsn, prev_term = payload["prev"]
        if prev_lsn > self._last_lsn():
            self._nack(message.sender, payload)  # gap
            return
        mine = self._term_at(prev_lsn)
        if mine is not None and mine != prev_term:
            self._truncate_from(prev_lsn)
            self._nack(message.sender, payload)
            return
        appended = 0
        nbytes = 0
        for lsn, term, records in payload["entries"]:
            if lsn <= self.log_base_lsn:
                continue
            have = self._term_at(lsn)
            if have == term:
                continue  # duplicate delivery
            if have is not None:
                self._truncate_from(lsn)
            self.log.append((lsn, term, records))
            appended += 1
            nbytes += self.costs.wal_record_bytes * len(records)
        if appended:
            # Durable append *before* the ack — quorum commit is only
            # meaningful if an ack certifies durability.
            yield self.env.fsync(
                self.costs.wal_fsync_us
                + nbytes * self.costs.wal_us_per_byte, nbytes)
            if self.halted or self.promoted:
                return
        commit = min(payload["commit_lsn"], self._last_lsn())
        if commit > self.commit_lsn:
            self.commit_lsn = commit
            applied = self._apply_committed()
            if applied:
                yield from self.execute(self.costs.index_insert_us * applied)
                if self.halted or self.promoted:
                    return
        self.send(message.sender, "append_ack", {
            "term": self.term, "ok": True, "match_lsn": self._last_lsn(),
            "echo": payload["echo"], "member": self.name,
        })

    def _nack(self, sender, payload):
        self.send(sender, "append_ack", {
            "term": self.term, "ok": False, "match_lsn": self._last_lsn(),
            "echo": payload["echo"], "member": self.name,
        })

    def _apply_committed(self):
        """Apply log entries up to the commit horizon; returns records
        applied.  This is the only path that touches the tables."""
        applied = 0
        for lsn, _, records in self.log:
            if lsn <= self.applied_lsn:
                continue
            if lsn > self.commit_lsn:
                break
            for table_name, key, value in records:
                table = self.tables.setdefault(table_name,
                                               Table(table_name))
                if value is None:
                    table.delete(key)
                else:
                    table.put(key, value)
                applied += 1
            self.applied_lsn = lsn
        self.applied_records += applied
        return applied

    def force_apply_all(self):
        """Apply the *entire* log, including the uncommitted suffix.

        Used at election install: an elected follower's log is
        authoritative, and a quorum-acked entry may sit above its last
        known commit horizon (the leader died before piggybacking the
        new commit_lsn) — discarding the suffix would lose acked
        writes."""
        self.commit_lsn = self._last_lsn()
        return self._apply_committed()

    # -- catch-up (snapshot resync) --------------------------------------

    def _resync(self, leader_name):
        if self.catching_up or self.promoted or self.halted:
            return
        try:
            yield from self.catch_up(leader_name)
        except RpcFailure:
            pass  # leader unreachable; the next heartbeat re-triggers

    def catch_up(self, primary_name, ctx=None):
        """Snapshot resynchronization, consensus flavor: installs the
        leader's tables and resets the log base to the snapshot point.
        Idempotent under duplicated/overlapping deliveries — a snapshot
        below the applied horizon is stale and refused (installing it
        would rewind past records the leader already pruned); one at
        exactly the horizon is the same state and installs."""
        if self.catching_up:
            return 0
        self.catching_up = True
        try:
            reply = yield self.call(primary_name, "snapshot", {}, ctx=ctx)
        except BaseException:
            self.catching_up = False
            raise
        snap_lsn = reply["lsn"]
        self.term = max(self.term, reply.get("term", 0))
        if self.promoted or snap_lsn < self.applied_lsn:
            self.catching_up = False
            return 0
        tables = {}
        installed = 0
        for table_name, entries in reply["tables"].items():
            table = Table(table_name)
            for key, value in entries:
                table.put(tuple(key), value)
                installed += 1
            tables[table_name] = table
        self.tables = tables
        self.applied_lsn = snap_lsn
        self.commit_lsn = snap_lsn
        self.log = []
        self.log_base_lsn = snap_lsn
        self.log_base_term = reply.get("term", 0)
        self._pending = {}
        self.catching_up = False
        yield from self.execute(self.costs.index_insert_us * installed)
        self.send(primary_name, "append_ack", {
            "term": self.term, "ok": True, "match_lsn": snap_lsn,
            "echo": None, "member": self.name,
        })
        return installed

    # -- elections -------------------------------------------------------

    def start_elections(self):
        if self._running:
            return
        self._running = True
        self.env.process(self._election_loop())

    def stop_elections(self):
        self._running = False

    def _election_loop(self):
        """Randomized election timer: sleep a seeded draw from
        ``[T, 2T]``; if no leader traffic arrived across the whole
        window (epoch unchanged), stand for election."""
        env = self.env
        clock = self.clock
        while self._running:
            timeout = self.rng.uniform(self.election_timeout_us,
                                       2.0 * self.election_timeout_us)
            epoch = self.heard_epoch
            yield env.timeout(clock.to_env_delay(timeout))
            if not self._running or self.promoted or self.halted:
                return
            while self.network.is_down(self.name) and not self.halted:
                yield self.network.resume_event(self.name)
            if self.halted or not self._running or self.promoted:
                return
            if self.heard_epoch != epoch or self.catching_up:
                continue
            yield from self._run_election()
            if self.promoted:
                return

    def _run_election(self):
        self.elections_started += 1
        last = [self._last_lsn(), self._last_term()]
        # Pre-vote: probe electability (witness reachable, our log
        # up-to-date, leader actually silent) WITHOUT bumping the term,
        # so a partitioned follower cannot inflate terms and depose a
        # healthy leader the moment the partition heals.
        try:
            reply = yield from deadline_call(
                self, NULL_CONTEXT, self.witness_name, "request_vote",
                {"term": self.term + 1, "candidate": self.name,
                 "last": last, "pre": True},
                timeout_us=self.rpc_timeout_us,
            )
        except RpcFailure:
            return
        if not reply["granted"]:
            return
        term = self.term + 1
        self.term = term
        try:
            reply = yield from deadline_call(
                self, NULL_CONTEXT, self.witness_name, "request_vote",
                {"term": term, "candidate": self.name,
                 "last": last, "pre": False},
                timeout_us=self.rpc_timeout_us,
            )
        except RpcFailure:
            return
        if not reply["granted"]:
            self.term = max(self.term, reply["term"])
            return
        # Self + witness = 2-of-3: quorum.  Claim the slot — the
        # registry validates term monotonicity and runs the install
        # surgery synchronously before answering.
        try:
            claim = yield from deadline_call(
                self, NULL_CONTEXT, self.coordinator_name, "leader_claim",
                {"slot": self.slot, "term": term, "name": self.name,
                 "last": last},
                timeout_us=self.rpc_timeout_us * 8,
            )
        except RpcFailure:
            return
        if not claim.get("ok"):
            self.term = max(self.term, claim.get("term", 0))
            return
        self.elections_won += 1


class Witness(Node):
    """Vote-only consensus member: durable ``(lsn, term)`` positions,
    no data.  Acks appends (after paying the fsync), grants at most one
    vote per term, and enforces the two election safety rules — log
    up-to-dateness and leader stickiness."""

    def __init__(self, env, network, name, election_timeout_us=4000.0):
        super().__init__(env, network, name)
        self.election_timeout_us = election_timeout_us
        self.term = 0
        #: Candidate granted in the current term (one vote per term).
        self.voted_for = None
        self.leader_name = None
        #: Witness-clock instant of the last message from a live leader;
        #: votes are refused within ``election_timeout_us`` of it.
        self.last_heard = float("-inf")
        #: ``[(lsn, term), ...]`` above ``(base_lsn, base_term)``.
        self.positions = []
        self.base_lsn = 0
        self.base_term = 0
        self.acked_appends = 0
        self.votes_granted = 0
        self.votes_refused = 0
        self.adoptions = 0
        self.truncations = 0

    def _last_lsn(self):
        return self.positions[-1][0] if self.positions else self.base_lsn

    def _last_term(self):
        return self.positions[-1][1] if self.positions else self.base_term

    def _term_at(self, lsn):
        if lsn <= self.base_lsn:
            return self.base_term if lsn == self.base_lsn else None
        index = lsn - self.base_lsn - 1
        if index >= len(self.positions):
            return None
        return self.positions[index][1]

    def _truncate_from(self, lsn):
        self.truncations += 1
        self.positions = [p for p in self.positions if p[0] < lsn]

    def handle(self, message):
        if message.kind == "append_entries":
            yield from self._on_append(message)
            return
        if message.kind == "request_vote":
            yield from self._on_vote(message)
            return
        raise RuntimeError(
            "{} cannot handle {!r}".format(self.name, message)
        )

    def _on_append(self, message):
        payload = message.payload
        if payload["term"] < self.term:
            self.send(message.sender, "append_ack", {
                "term": self.term, "ok": False, "stale": True,
                "match_lsn": self._last_lsn(),
                "echo": payload["echo"], "member": self.name,
            })
            return
        if payload["term"] > self.term:
            self.term = payload["term"]
            self.voted_for = None
        self.leader_name = payload["leader"]
        self.last_heard = self.clock.now_us()
        base = payload["base"]
        prev_lsn, prev_term = payload["prev"]
        gap = prev_lsn > self._last_lsn()
        mine = None if gap else self._term_at(prev_lsn)
        conflict = mine is not None and mine != prev_term
        if gap or conflict:
            if [prev_lsn, prev_term] == base:
                # The current-term leader's snapshot horizon: adopt it.
                # This is the witness's install-snapshot — the elected
                # (or restarted) leader's base is authoritative, and
                # the vote rule guarantees our positions never exceed
                # an elected leader's log.
                self.adoptions += 1
                self.positions = []
                self.base_lsn, self.base_term = base
            elif conflict:
                self._truncate_from(prev_lsn)
                self._nack(message.sender, payload)
                return
            else:
                self._nack(message.sender, payload)
                return
        appended = 0
        for lsn, term, _ in payload["entries"]:
            if lsn <= self.base_lsn:
                continue
            have = self._term_at(lsn)
            if have == term:
                continue
            if have is not None:
                self._truncate_from(lsn)
            self.positions.append((lsn, term))
            appended += 1
        if appended:
            yield self.env.fsync(self.costs.wal_fsync_us,
                                 appended * self.costs.wal_record_bytes)
            if self.halted:
                return
        self.acked_appends += 1
        self.send(message.sender, "append_ack", {
            "term": self.term, "ok": True, "match_lsn": self._last_lsn(),
            "echo": payload["echo"], "member": self.name,
        })

    def _nack(self, sender, payload):
        self.send(sender, "append_ack", {
            "term": self.term, "ok": False, "match_lsn": self._last_lsn(),
            "echo": payload["echo"], "member": self.name,
        })

    def _on_vote(self, message):
        payload = message.payload
        yield from self.execute(self.costs.index_lookup_us)
        now = self.clock.now_us()
        heard_recently = (now - self.last_heard) < self.election_timeout_us
        c_lsn, c_term = payload["last"]
        up_to_date = (c_term, c_lsn) >= (self._last_term(),
                                         self._last_lsn())
        if payload.get("pre"):
            granted = (payload["term"] > self.term and up_to_date
                       and not heard_recently)
            self.respond(message, {"granted": granted, "term": self.term})
            return
        if payload["term"] < self.term:
            self.votes_refused += 1
            self.respond(message, {"granted": False, "term": self.term})
            return
        if payload["term"] > self.term:
            self.term = payload["term"]
            self.voted_for = None
        granted = (not heard_recently and up_to_date
                   and self.voted_for in (None, payload["candidate"]))
        if granted:
            self.voted_for = payload["candidate"]
            # Granting resets the stickiness window: no competing
            # candidate gets a vote while this election is in flight.
            self.last_heard = now
            self.votes_granted += 1
        else:
            self.votes_refused += 1
        self.respond(message, {"granted": granted, "term": self.term})


def term_positions(member):
    """``{lsn: term}`` for any consensus participant — leader log
    (:class:`ReplicatedLog`), data follower, or witness — including its
    base position.  Genesis (lsn 0) is excluded."""
    if isinstance(member, ReplicatedLog):
        base = (member.base_lsn, member.base_term)
        tail = [(lsn, term) for lsn, term, _ in member.entries]
    elif isinstance(member, ConsensusFollower):
        base = (member.log_base_lsn, member.log_base_term)
        tail = [(lsn, term) for lsn, term, _ in member.log]
    elif isinstance(member, Witness):
        base = (member.base_lsn, member.base_term)
        tail = list(member.positions)
    else:
        raise TypeError("not a consensus participant: {!r}".format(member))
    out = {}
    if base[0] > 0:
        out[base[0]] = base[1]
    out.update(dict(tail))
    return out


def log_matching_violations(named_maps):
    """Check the log-matching invariant across replicas.

    ``named_maps`` is ``[(name, {lsn: term}), ...]`` (from
    :func:`term_positions`).  For every pair, if the two agree on the
    term at some LSN they must agree at every common LSN below it.
    Returns a list of violation tuples
    ``(name_a, name_b, agreeing_lsn, diverging_lsn)`` — empty means the
    invariant holds."""
    violations = []
    for i in range(len(named_maps)):
        name_a, a = named_maps[i]
        for j in range(i + 1, len(named_maps)):
            name_b, b = named_maps[j]
            common = sorted(set(a) & set(b))
            agree = [lsn for lsn in common if a[lsn] == b[lsn]]
            disagree = [lsn for lsn in common if a[lsn] != b[lsn]]
            if agree and disagree and max(agree) > min(disagree):
                violations.append(
                    (name_a, name_b, max(agree), min(disagree)))
    return violations
