"""Shared/exclusive lock manager with FIFO fairness.

Used for dentry and inode locks on MNodes and the coordinator (§4.3 of the
paper).  Grant policy: requests queue in arrival order; a shared request is
granted only if no exclusive request is queued ahead of it, which prevents
writer starvation and matches PostgreSQL's lock manager behaviour.

Acquisition returns a simulation event, so lock *waiting* consumes
simulated time naturally; the CPU cost of the acquire/release bookkeeping
itself is charged by the caller (FalconFS coalesces it per batch, §4.4).
"""

from collections import deque

from repro.obs.tracer import CAT_LOCK
from repro.runtime import EnvError


class LockMode:
    SHARED = "S"
    EXCLUSIVE = "X"


_MODES = (LockMode.SHARED, LockMode.EXCLUSIVE)


class Grant:
    """A held (or queued) lock; pass back to :meth:`LockManager.release`."""

    __slots__ = ("key", "mode", "event", "granted", "span")

    def __init__(self, key, mode, event):
        self.key = key
        self.mode = mode
        self.event = event
        self.granted = False
        #: Open ``lock.wait`` span while the grant is queued (traced only).
        self.span = None

    def __repr__(self):
        state = "held" if self.granted else "waiting"
        return "<Grant {}:{} {}>".format(self.key, self.mode, state)


class _LockState:
    __slots__ = ("holders", "waiters")

    def __init__(self):
        self.holders = []
        self.waiters = deque()


class LockManager:
    """Per-key S/X locks."""

    def __init__(self, env):
        self.env = env
        self._locks = {}

    def acquire(self, key, mode, ctx=None):
        """Request a lock; returns a :class:`Grant` whose ``event`` fires
        once the lock is held.  With a traced ``ctx``, a ``lock.wait``
        span covers any time spent queued behind other holders."""
        if mode not in _MODES:
            raise EnvError("bad lock mode: {!r}".format(mode))
        state = self._locks.get(key)
        if state is None:
            # Fresh key: trivially grantable, skip the compatibility scan.
            state = _LockState()
            self._locks[key] = state
            grant = Grant(key, mode, self.env.event())
            self._grant(state, grant)
            return grant
        grant = Grant(key, mode, self.env.event())
        if self._grantable(state, mode):
            self._grant(state, grant)
        else:
            if ctx is not None and ctx.traced:
                grant.span = ctx.start_span(
                    "lock.wait", CAT_LOCK,
                    attrs={"key": str(key), "mode": mode},
                )
            state.waiters.append(grant)
        return grant

    def try_acquire(self, key, mode):
        """Non-blocking acquire: a granted :class:`Grant` or ``None``.

        A miss must not create state: only :meth:`release` prunes empty
        ``_LockState`` entries, so inserting one on the failure path would
        leak an entry per missed poll.
        """
        state = self._locks.get(key)
        fresh = state is None
        if fresh:
            state = _LockState()
        if not self._grantable(state, mode):
            return None
        if fresh:
            self._locks[key] = state
        grant = Grant(key, mode, self.env.event())
        self._grant(state, grant)
        return grant

    def release(self, grant):
        """Release a held grant (or cancel a queued one)."""
        state = self._locks.get(grant.key)
        if state is None:
            raise EnvError("release on unknown key: {}".format(grant.key))
        if grant.granted:
            state.holders.remove(grant)
        else:
            state.waiters.remove(grant)
            if grant.span is not None:
                grant.span.finish(self.env.now, cancelled=True)
                grant.span = None
        self._wake(state)
        if not state.holders and not state.waiters:
            del self._locks[grant.key]

    def _grantable(self, state, mode):
        if mode == LockMode.EXCLUSIVE:
            return not state.holders and not state.waiters
        # Shared: compatible with shared holders, but FIFO — don't jump
        # ahead of a queued exclusive.
        holds_exclusive = any(
            g.mode == LockMode.EXCLUSIVE for g in state.holders
        )
        return not holds_exclusive and not state.waiters

    def _grant(self, state, grant):
        grant.granted = True
        if grant.span is not None:
            grant.span.finish(self.env.now)
            grant.span = None
        state.holders.append(grant)
        grant.event.succeed(grant)

    def _wake(self, state):
        while state.waiters:
            head = state.waiters[0]
            if head.mode == LockMode.EXCLUSIVE:
                if state.holders:
                    return
                state.waiters.popleft()
                self._grant(state, head)
                return
            if any(g.mode == LockMode.EXCLUSIVE for g in state.holders):
                return
            state.waiters.popleft()
            self._grant(state, head)

    # -- introspection -----------------------------------------------------

    def holders(self, key):
        """Modes currently held on ``key`` (empty list when free)."""
        state = self._locks.get(key)
        if state is None:
            return []
        return [g.mode for g in state.holders]

    def queue_length(self, key):
        state = self._locks.get(key)
        return len(state.waiters) if state else 0

    def is_locked(self, key):
        return bool(self.holders(key))
