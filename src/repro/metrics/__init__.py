"""Measurement substrate: counters, histograms, time series, load stats."""

from repro.metrics.stats import (
    coefficient_of_variation,
    load_share_extremes,
    mean,
    percentile,
    stddev,
)
from repro.metrics.registry import (
    Counter,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    render_prometheus,
)

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "render_prometheus",
    "coefficient_of_variation",
    "load_share_extremes",
    "mean",
    "percentile",
    "stddev",
]
