"""Small statistics helpers used by experiments and load balancing.

Implemented directly (rather than via numpy) so the core library stays
dependency-free; the experiment harness may still hand results to numpy.
"""

import math


def mean(values):
    """Arithmetic mean of a non-empty sequence."""
    values = list(values)
    if not values:
        raise ValueError("mean() of empty sequence")
    return sum(values) / len(values)


def stddev(values):
    """Population standard deviation of a non-empty sequence."""
    values = list(values)
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def coefficient_of_variation(values):
    """Standard deviation normalized by the mean (0 for perfectly even)."""
    mu = mean(values)
    if mu == 0:
        return 0.0
    return stddev(values) / mu


def percentile(values, q):
    """The ``q``-th percentile (0..100) via linear interpolation."""
    if not 0 <= q <= 100:
        raise ValueError("percentile q must be in [0, 100]")
    ordered = sorted(values)
    if not ordered:
        raise ValueError("percentile() of empty sequence")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100) * (len(ordered) - 1)
    low = int(math.floor(rank))
    high = int(math.ceil(rank))
    if low == high:
        return ordered[low]
    frac = rank - low
    return ordered[low] * (1 - frac) + ordered[high] * frac


def load_share_extremes(counts):
    """Max and min share of the total across nodes, as fractions.

    This is the statistic Table 3 of the paper reports for inode
    distribution: a perfectly even placement over ``n`` nodes gives
    ``max = min = 1/n``.
    """
    counts = list(counts)
    total = sum(counts)
    if total == 0:
        share = 1.0 / len(counts) if counts else 0.0
        return share, share
    return max(counts) / total, min(counts) / total
