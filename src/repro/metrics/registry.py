"""Labeled counters, histograms and time series.

Every simulated node owns a :class:`MetricsRegistry`; experiments read the
registries after the run to build the paper's tables and figures (request
composition in Fig 13b, MDS load variance in Fig 4b, latency in Fig 11).
"""

from collections import defaultdict

from repro.metrics.stats import mean, percentile


class Counter:
    """A monotonically increasing counter, optionally labeled.

    ``inc(label)`` keeps independent counts per label; ``total()`` sums
    them.  Unlabeled use goes through the ``None`` label.
    """

    def __init__(self, name):
        self.name = name
        self._counts = defaultdict(int)

    def inc(self, label=None, amount=1):
        self._counts[label] += amount

    def get(self, label=None):
        # Plain .get: reading through the defaultdict would materialize
        # the label with a zero count, polluting by_label() snapshots.
        return self._counts.get(label, 0)

    def total(self):
        return sum(self._counts.values())

    def by_label(self):
        """Snapshot of per-label counts as a plain dict."""
        return dict(self._counts)

    def __repr__(self):
        return "<Counter {} total={}>".format(self.name, self.total())


class Histogram:
    """Records raw observations; summarizes on demand.

    Observation counts in the experiments are small enough (1e4-1e6) that
    keeping raw values is simpler and exact; percentile() interpolates.
    """

    def __init__(self, name):
        self.name = name
        self.values = []

    def observe(self, value):
        self.values.append(value)

    def __len__(self):
        return len(self.values)

    def mean(self):
        return mean(self.values)

    def percentile(self, q):
        return percentile(self.values, q)

    def summary(self):
        """Dict of count/mean/p50/p95/p99/max, or zeros when empty."""
        if not self.values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": len(self.values),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self.values),
        }

    def __repr__(self):
        return "<Histogram {} n={}>".format(self.name, len(self.values))


class TimeSeries:
    """(time, value) samples, e.g. instantaneous queue lengths."""

    def __init__(self, name):
        self.name = name
        self.samples = []

    def record(self, time, value):
        self.samples.append((time, value))

    def values(self):
        return [v for _, v in self.samples]

    def __len__(self):
        return len(self.samples)


class MetricsRegistry:
    """A namespace of metrics with get-or-create semantics."""

    def __init__(self, name=""):
        self.name = name
        self._counters = {}
        self._histograms = {}
        self._series = {}

    def counter(self, name):
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name):
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def time_series(self, name):
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self):
        return dict(self._counters)

    def histograms(self):
        return dict(self._histograms)
