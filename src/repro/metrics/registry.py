"""Labeled counters, histograms and time series.

Every simulated node owns a :class:`MetricsRegistry`; experiments read the
registries after the run to build the paper's tables and figures (request
composition in Fig 13b, MDS load variance in Fig 4b, latency in Fig 11).
"""

from collections import defaultdict

from repro.metrics.stats import mean, percentile


class Counter:
    """A monotonically increasing counter, optionally labeled.

    ``inc(label)`` keeps independent counts per label; ``total()`` sums
    them.  Unlabeled use goes through the ``None`` label.
    """

    def __init__(self, name):
        self.name = name
        self._counts = defaultdict(int)

    def inc(self, label=None, amount=1):
        self._counts[label] += amount

    def get(self, label=None):
        # Plain .get: reading through the defaultdict would materialize
        # the label with a zero count, polluting by_label() snapshots.
        return self._counts.get(label, 0)

    def total(self):
        return sum(self._counts.values())

    def by_label(self):
        """Snapshot of per-label counts as a plain dict."""
        return dict(self._counts)

    def __repr__(self):
        return "<Counter {} total={}>".format(self.name, self.total())


class Histogram:
    """Records raw observations; summarizes on demand.

    Observation counts in the experiments are small enough (1e4-1e6) that
    keeping raw values is simpler and exact; percentile() interpolates.
    """

    def __init__(self, name):
        self.name = name
        self.values = []

    def observe(self, value):
        self.values.append(value)

    def __len__(self):
        return len(self.values)

    def mean(self):
        return mean(self.values)

    def percentile(self, q):
        return percentile(self.values, q)

    def summary(self):
        """Dict of count/mean/p50/p95/p99/max, or zeros when empty."""
        if not self.values:
            return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0,
                    "p99": 0.0, "max": 0.0}
        return {
            "count": len(self.values),
            "mean": self.mean(),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": max(self.values),
        }

    def __repr__(self):
        return "<Histogram {} n={}>".format(self.name, len(self.values))


class TimeSeries:
    """(time, value) samples, e.g. instantaneous queue lengths."""

    def __init__(self, name):
        self.name = name
        self.samples = []

    def record(self, time, value):
        self.samples.append((time, value))

    def values(self):
        return [v for _, v in self.samples]

    def __len__(self):
        return len(self.samples)


class MetricsRegistry:
    """A namespace of metrics with get-or-create semantics."""

    def __init__(self, name=""):
        self.name = name
        self._counters = {}
        self._histograms = {}
        self._series = {}

    def counter(self, name):
        if name not in self._counters:
            self._counters[name] = Counter(name)
        return self._counters[name]

    def histogram(self, name):
        if name not in self._histograms:
            self._histograms[name] = Histogram(name)
        return self._histograms[name]

    def time_series(self, name):
        if name not in self._series:
            self._series[name] = TimeSeries(name)
        return self._series[name]

    def counters(self):
        return dict(self._counters)

    def histograms(self):
        return dict(self._histograms)


# -- Prometheus text exposition ------------------------------------------

def _prom_name(name):
    """Sanitize a metric or label token for the Prometheus grammar."""
    out = []
    for ch in name:
        out.append(ch if (ch.isalnum() or ch == "_") else "_")
    text = "".join(out)
    if text and text[0].isdigit():
        text = "_" + text
    return text or "_"


def _prom_label_value(value):
    return str(value).replace("\\", r"\\").replace('"', r"\"") \
        .replace("\n", r"\n")


def render_prometheus(registries, namespace="falconfs"):
    """Render registries in the Prometheus text format (version 0.0.4).

    Counters become ``<ns>_<name>_total`` with ``node`` and ``label``
    labels; histograms become a ``_count`` plus quantile gauges (p50,
    p95, p99) and a mean — computed from the raw observations at scrape
    time, which the serving mode's cardinality (a handful of histograms
    per node) makes affordable.
    """
    lines = []
    for registry in registries:
        node = _prom_label_value(registry.name)
        for counter in registry.counters().values():
            metric = "{}_{}_total".format(namespace, _prom_name(counter.name))
            lines.append("# TYPE {} counter".format(metric))
            for label, value in sorted(
                    counter.by_label().items(),
                    key=lambda item: str(item[0])):
                tags = 'node="{}"'.format(node)
                if label is not None:
                    tags += ',label="{}"'.format(_prom_label_value(label))
                lines.append("{}{{{}}} {}".format(metric, tags, value))
        for histogram in registry.histograms().values():
            metric = "{}_{}".format(namespace, _prom_name(histogram.name))
            summary = histogram.summary()
            lines.append("# TYPE {} summary".format(metric))
            for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                                  ("0.99", "p99")):
                lines.append('{}{{node="{}",quantile="{}"}} {}'.format(
                    metric, node, quantile, summary[key]))
            lines.append('{}_count{{node="{}"}} {}'.format(
                metric, node, summary["count"]))
            lines.append('{}_sum{{node="{}"}} {}'.format(
                metric, node, summary["mean"] * summary["count"]))
    return "\n".join(lines) + "\n"
