"""Shared machinery for the baseline DFS models.

The baselines follow the classic stateful-client architecture:

* metadata is partitioned by **directory** — ``placement(parent_ino)``
  names the metadata server holding every entry of that directory, which
  is what concentrates same-directory bursts on one server (§2.4);
* clients resolve paths **client-side** through a VFS dentry cache; every
  cache miss on an intermediate component costs a ``lookup`` RPC (§2.3);
* each request is executed individually (no request merging), with
  journaling behaviour supplied by the concrete system model.

Concrete systems subclass :class:`MetaServer` (journaling, placement,
per-op costs) and :class:`BaselineCluster` (wiring + system profile).
"""

from dataclasses import dataclass

from repro.core.cluster import FalconFilesystem
from repro.core.filestore import BlockClient, StorageNode
from repro.core.indexing import stable_hash
from repro.core.records import (
    InodeRecord,
    inode_to_wire,
)
from repro.core.shared import ClusterShared, FalconConfig
from repro.net import CostModel, Network, Node
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import (
    CAT_CPU,
    CAT_PHASE,
    NULL_CONTEXT,
    OpContext,
    RetryPolicy,
    deadline_call,
    retry,
)
from repro.runtime import SimEnv
from repro.storage import LockManager, LockMode, Table, WriteAheadLog
from repro.vfs import DentryCache, InodeAttrs, PathWalker, ROOT_INO
from repro.vfs.pathwalk import split_path


@dataclass
class SystemProfile:
    """Knobs that distinguish CephFS / Lustre / JuiceFS behaviour."""

    name: str = "baseline"
    #: Multiplier on server CPU costs (software-stack weight).
    stack_factor: float = 1.0
    #: Server-side coherence-lock cost per lookup/open (caps, intents).
    coherence_lock_us: float = 0.0
    #: Additional server cost of an *open* (intent lock processing,
    #: capability issuance and open-state tracking).
    open_extra_us: float = 0.0
    #: Journal mutations to a remote storage node instead of locally.
    journal_remote: bool = False
    #: Round trips per remote journal commit (RADOS replication acks).
    journal_rounds: int = 1
    #: Mutations also update the parent directory's metadata, with a
    #: cross-server RPC when the parent inode lives elsewhere.
    update_dir_metadata: bool = False
    #: Percolator-style two-round transactional commit (JuiceFS/TiKV).
    two_round_commit: bool = False
    #: Fraction of metadata servers that actually lead key ranges
    #: (< 1.0 models TiKV leader imbalance).
    leader_fraction: float = 1.0
    #: Clients open files via a plain lookup (CephFS; counted as open).
    open_via_lookup: bool = False
    #: Clients send an explicit close RPC after read-only access
    #: (capability / open-state release).
    close_releases_caps: bool = False
    #: Extra data-path overhead per block (object-store indirection).
    data_overhead_us: float = 0.0


class MetaServer(Node):
    """One baseline metadata server (MDS / MDT / KV region leader)."""

    def __init__(self, env, network, shared, index, profile):
        super().__init__(
            env, network, "{}-mds-{}".format(profile.name, index),
            cores=shared.config.server_cores,
        )
        self.shared = shared
        self.my_index = index
        self.profile = profile
        self.inodes = Table("inode")
        self.locks = LockManager(env)
        self.wal = WriteAheadLog(env, self.costs, self.metrics)
        #: mtime of directories whose children this server owns.
        self.dir_mtimes = {}
        self._journal_seq = 0
        #: CephFS's MDS journal has a single log writer; remote journal
        #: appends serialize through it.

        self._journal_writer = env.resource(capacity=1)

    # -- placement ----------------------------------------------------------

    def placement(self, parent_ino):
        """Index of the server owning directory ``parent_ino``'s entries."""
        return placement_index(
            parent_ino, self.shared.config.num_mnodes,
            self.profile.leader_fraction,
        )

    def peer_name(self, index):
        return "{}-mds-{}".format(self.profile.name, index)

    # -- request handling ------------------------------------------------

    def handle(self, message):
        handler = getattr(self, "_on_" + message.kind, None)
        if handler is None:
            raise RuntimeError(
                "{} cannot handle {!r}".format(self.name, message)
            )
        try:
            if (message.ctx is not None and message.ctx.expired()):
                raise RpcFailure(RpcError.ETIMEDOUT, message.kind)
            # The stack-weighted remainder of per-request entry overhead
            # (the base dispatch slice is charged by ``_handle_guard``).
            extra = self.costs.dispatch_us * (self.profile.stack_factor - 1.0)
            if extra > 0:
                yield from self._charge(extra / self.profile.stack_factor,
                                        ctx=message.ctx)
            yield from handler(message)
        except RpcFailure as failure:
            self.metrics.counter("op_errors").inc(RpcError.name(failure.code))
            self.respond_error(message, failure)

    def _charge(self, cost_us, ctx=None):
        return self.execute(cost_us * self.profile.stack_factor, ctx=ctx)

    def _journal(self, records=1, ctx=None):
        """Generator: make ``records`` metadata mutations durable."""
        nbytes = records * self.costs.wal_record_bytes
        if self.profile.journal_remote:
            # CephFS journals its metadata log to the OSD cluster through
            # a single log writer: a network round trip plus an SSD write,
            # serialized per MDS.
            writer = self._journal_writer.request()
            yield writer
            try:
                for _ in range(self.profile.journal_rounds):
                    self._journal_seq += 1
                    target = self.shared.storage_names[
                        self._journal_seq % len(self.shared.storage_names)
                    ]
                    yield self.call(
                        target, "write_block", {"size": nbytes},
                        size=nbytes + self.costs.rpc_request_bytes,
                        ctx=ctx,
                    )
            finally:
                self._journal_writer.release(writer)
        else:
            yield self.wal.commit(nbytes, records=records, ctx=ctx)
        if self.profile.two_round_commit:
            # Percolator: prewrite round against the primary lock peer,
            # then the commit record — a second durable write.
            peer = self.peer_name(
                (self.my_index + 1) % self.shared.config.num_mnodes
            )
            if peer != self.name:
                yield self.call(peer, "txn_round", {}, ctx=ctx)
            yield self.wal.commit(self.costs.wal_record_bytes, ctx=ctx)

    def _on_txn_round(self, message):
        yield from self._charge(self.costs.txn_begin_us, ctx=message.ctx)
        yield self.wal.commit(self.costs.wal_record_bytes, ctx=message.ctx)
        self.respond(message, {"ok": True})

    def _lock(self, key, mode, ctx=None):
        grant = self.locks.acquire(key, mode, ctx=ctx)
        yield grant.event
        return grant

    def _touch_parent(self, payload, ctx=None):
        """Generator: update the parent directory's mtime (Lustre/JuiceFS).

        A directory's own inode lives on the server that holds its
        children (Lustre keeps a directory on its MDT; TiKV regions are
        keyed the same way), so the update is local — but it is a second
        table mutation in the same durable transaction, the file+directory
        double-update overhead §6.2 attributes to these systems.
        """
        if not self.profile.update_dir_metadata:
            return
        self.dir_mtimes[payload["pid"]] = self.env.now
        yield from self._charge(self.costs.index_insert_us, ctx=ctx)

    # -- metadata operations (all keyed (parent_ino, name)) -----------------

    def _on_lookup(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.SHARED, ctx=ctx)
        try:
            cost = self.costs.index_lookup_us + self.profile.coherence_lock_us
            if payload.get("intent") == "open":
                # CephFS opens via lookup; the capability work still
                # happens (Fig 13b counts these lookups as opens).
                cost += self.profile.open_extra_us
            yield from self._charge(cost, ctx=ctx)
            record = self.inodes.get(key)
        finally:
            self.locks.release(grant)
        if record is None:
            raise RpcFailure(RpcError.ENOENT, key)
        self.metrics.counter("ops").inc("lookup")
        self.respond(message, {"attrs": inode_to_wire(record)})

    def _on_open(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.SHARED, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.profile.coherence_lock_us
                + self.profile.open_extra_us,
                ctx=ctx,
            )
            record = self.inodes.get(key)
        finally:
            self.locks.release(grant)
        if record is None:
            raise RpcFailure(RpcError.ENOENT, key)
        if record.is_dir:
            raise RpcFailure(RpcError.EISDIR, key)
        self.metrics.counter("ops").inc("open")
        self.respond(message, {"attrs": inode_to_wire(record)})

    _on_getattr = _on_lookup

    def _on_create(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.costs.index_insert_us
                + self.costs.lock_acquire_us + self.costs.lock_release_us
                + self.costs.txn_begin_us + self.costs.txn_commit_us,
                ctx=ctx,
            )
            if self.inodes.get(key) is not None:
                if payload.get("exclusive", True):
                    raise RpcFailure(RpcError.EEXIST, key)
            record = InodeRecord(
                ino=self.shared.allocator.allocate(), is_dir=False,
                mode=payload.get("mode", 0o644), mtime=self.env.now,
            )
            self.inodes.put(key, record)
            records = 2 if self.profile.update_dir_metadata else 1
            yield from self._journal(records=records, ctx=ctx)
            yield from self._touch_parent(payload, ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("create")
        self.respond(message, {"attrs": inode_to_wire(record)})

    def _on_mkdir(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.costs.index_insert_us
                + self.costs.txn_begin_us + self.costs.txn_commit_us,
                ctx=ctx,
            )
            if self.inodes.get(key) is not None:
                raise RpcFailure(RpcError.EEXIST, key)
            record = InodeRecord(
                ino=self.shared.allocator.allocate(), is_dir=True,
                mode=payload.get("mode", 0o755), mtime=self.env.now,
            )
            self.inodes.put(key, record)
            records = 2 if self.profile.update_dir_metadata else 1
            yield from self._journal(records=records, ctx=ctx)
            yield from self._touch_parent(payload, ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("mkdir")
        self.respond(message, {"attrs": inode_to_wire(record)})

    def _on_close(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.costs.index_insert_us,
                ctx=ctx,
            )
            record = self.inodes.get(key)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, key)
            if "size" in payload:
                updated = record.copy()
                updated.size = payload["size"]
                updated.mtime = self.env.now
                self.inodes.put(key, updated)
                yield from self._journal(ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("close")
        self.respond(message, {"ok": True})

    def _on_setattr(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.costs.index_insert_us,
                ctx=ctx,
            )
            record = self.inodes.get(key)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, key)
            updated = record.copy()
            updated.mode = payload.get("mode", record.mode)
            self.inodes.put(key, updated)
            yield from self._journal(ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("setattr")
        self.respond(message, {"ok": True})

    def _on_unlink(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.costs.index_delete_us
                + self.costs.txn_begin_us + self.costs.txn_commit_us,
                ctx=ctx,
            )
            record = self.inodes.get(key)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, key)
            if record.is_dir:
                raise RpcFailure(RpcError.EISDIR, key)
            self.inodes.delete(key)
            records = 2 if self.profile.update_dir_metadata else 1
            yield from self._journal(records=records, ctx=ctx)
            yield from self._touch_parent(payload, ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("unlink")
        self.respond(message, {"ok": True})

    def _on_rmdir(self, message):
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        grant = yield from self._lock(key, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                self.costs.index_lookup_us + self.costs.index_delete_us,
                ctx=ctx,
            )
            record = self.inodes.get(key)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, key)
            if not record.is_dir:
                raise RpcFailure(RpcError.ENOTDIR, key)
            children_owner = self.placement(record.ino)
            if children_owner == self.my_index:
                has_children = self.inodes.has_prefix((record.ino,))
            else:
                reply = yield self.call(
                    self.peer_name(children_owner), "children_check",
                    {"pid": record.ino}, ctx=ctx,
                )
                has_children = reply["has_children"]
            if has_children:
                raise RpcFailure(RpcError.ENOTEMPTY, key)
            self.inodes.delete(key)
            yield from self._journal(ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("rmdir")
        self.respond(message, {"ok": True})

    def _on_children_check(self, message):
        pid = message.payload["pid"]
        yield from self._charge(self.costs.index_lookup_us,
                                ctx=message.ctx)
        self.respond(message, {"has_children": self.inodes.has_prefix((pid,))})

    def _on_readdir(self, message):
        pid = message.payload["pid"]
        entries = [
            (key[1], record.is_dir)
            for key, record in self.inodes.scan_prefix((pid,))
        ]
        yield from self._charge(
            self.costs.index_lookup_us + 0.02 * len(entries),
            ctx=message.ctx,
        )
        self.metrics.counter("ops").inc("readdir")
        self.respond(
            message, {"entries": entries},
            size=self.costs.rpc_response_bytes + 16 * len(entries),
        )

    def _on_rename(self, message):
        """Rename orchestrated by the source directory's server."""
        payload = message.payload
        ctx = message.ctx
        skey = tuple(payload["src_key"])
        dkey = tuple(payload["dst_key"])
        grant = yield from self._lock(skey, LockMode.EXCLUSIVE, ctx=ctx)
        try:
            yield from self._charge(
                2 * self.costs.index_lookup_us + self.costs.two_phase_round_us,
                ctx=ctx,
            )
            record = self.inodes.get(skey)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, skey)
            dst_owner = self.placement(dkey[0])
            if dst_owner == self.my_index:
                if self.inodes.get(dkey) is not None:
                    raise RpcFailure(RpcError.EEXIST, dkey)
                self.inodes.put(dkey, record)
            else:
                yield self.call(
                    self.peer_name(dst_owner), "rename_install",
                    {"key": list(dkey), "record": inode_to_wire(record)},
                    ctx=ctx,
                )
            self.inodes.delete(skey)
            yield from self._journal(records=2, ctx=ctx)
        finally:
            self.locks.release(grant)
        self.metrics.counter("ops").inc("rename")
        self.respond(message, {"ok": True})

    def _on_rename_install(self, message):
        from repro.core.records import inode_from_wire

        key = tuple(message.payload["key"])
        if self.inodes.get(key) is not None:
            raise RpcFailure(RpcError.EEXIST, key)
        self.inodes.put(key, inode_from_wire(message.payload["record"]))
        yield from self._charge(self.costs.index_insert_us, ctx=message.ctx)
        yield from self._journal(ctx=message.ctx)
        self.respond(message, {"ok": True})


def placement_index(parent_ino, num_servers, leader_fraction=1.0):
    """Directory-locality placement with optional leader imbalance.

    ``leader_fraction < 1`` models TiKV-style region-leader concentration:
    the number of servers that actually lead key ranges grows only with
    the square root of the cluster size, which is what makes JuiceFS's
    metadata engine scale poorly in §6.2.
    """
    if leader_fraction >= 1.0:
        leaders = num_servers
    else:
        leaders = max(1, int(round(num_servers ** 0.5)))
    return stable_hash(("dir", parent_ino)) % leaders


class _StatefulOps:
    """PathWalker ops for the baseline client: real remote lookups."""

    def __init__(self, client):
        self.client = client

    def lookup(self, parent, name, flags, path, ctx=None):
        data = yield from self.client._send_keyed(
            "lookup", parent.ino, {"pid": parent.ino, "name": name},
            ctx=ctx,
        )
        return attrs_from_wire(data["attrs"])

    def revalidate(self, entry, flags, path, ctx=None):
        # Stateful clients trust their cache (lease semantics).
        return entry.attrs
        yield  # pragma: no cover


def attrs_from_wire(wire):
    return InodeAttrs(
        ino=wire["ino"], is_dir=wire["is_dir"], mode=wire["mode"],
        uid=wire["uid"], gid=wire["gid"], size=wire["size"],
        mtime=wire["mtime"],
    )


class BaselineClient(Node):
    """A stateful DFS client: client-side path resolution + final op RPC."""

    def __init__(self, env, network, shared, profile, name,
                 cache_budget_bytes=None):
        super().__init__(env, network, name, cores=1024)
        self.shared = shared
        self.profile = profile
        self.dcache = DentryCache(budget_bytes=cache_budget_bytes)
        self.walker = PathWalker(
            env, network.costs, self.dcache, _StatefulOps(self)
        )
        self.blocks = BlockClient(self, shared)
        #: Per-op deadline (us; 0 = none) and shared retry policy, both
        #: stamped onto every operation's OpContext (mirrors FalconClient).
        self.deadline_us = shared.config.op_deadline_us
        self.retry_policy = RetryPolicy.from_config(shared.config)

    # -- plumbing ----------------------------------------------------------

    def placement(self, parent_ino):
        return placement_index(
            parent_ino, self.shared.config.num_mnodes,
            self.profile.leader_fraction,
        )

    def _server_name(self, parent_ino):
        return "{}-mds-{}".format(
            self.profile.name, self.placement(parent_ino)
        )

    def _begin_op(self, op, path=None):
        """New :class:`OpContext` for one client-visible operation."""
        deadline = None
        if self.deadline_us:
            deadline = self.env.now + self.deadline_us
        ctx = OpContext(
            self.env, op, origin=self.name, tracer=self.shared.tracer,
            deadline=deadline, retry_policy=self.retry_policy,
        )
        ctx.begin(node=self.name,
                  attrs={"path": path}
                  if ctx.traced and path is not None else None)
        return ctx

    def _traced(self, ctx, gen):
        """Generator: run ``gen`` to completion under ``ctx``'s root span."""
        try:
            result = yield from gen
        except BaseException as exc:
            ctx.finish(error=repr(exc))
            raise
        ctx.finish()
        return result

    def _client_cpu(self, ctx, cost_us):
        """Generator: charge client-side CPU, attributed to ``ctx``."""
        start = self.env.now
        yield self.env.timeout(cost_us)
        ctx.record("client", CAT_CPU, start, self.env.now, node=self.name)

    def _send_keyed(self, op, parent_ino, payload, ctx=None):
        ctx = ctx or NULL_CONTEXT
        target = self._server_name(parent_ino)

        def attempt(_attempt, _hint):
            self.metrics.counter("requests").inc(op)
            with ctx.span("rpc", CAT_PHASE, node=self.name,
                          attrs={"op": op, "target": target}
                          if ctx.traced else None):
                data = yield from deadline_call(self, ctx, target, op,
                                                payload)
            return data

        data = yield from retry(self, ctx, attempt)
        return data

    def _walk_parent(self, components, ctx=None):
        """Generator: resolve the parent directory client-side."""
        if len(components) == 1:
            return self.walker.root_attrs, None
        parent_path = "/" + "/".join(components[:-1])
        result = yield from self.walker.walk(parent_path, ctx=ctx)
        grand = result.parent_attrs
        parent_key = (
            None if grand is None
            else [grand.ino, components[-2]]
        )
        return result.attrs, parent_key

    def _meta_op(self, op, path, extra, cache_result=True, ctx=None):
        if ctx is None:
            ctx = self._begin_op(op, path)
            data = yield from self._traced(
                ctx, self._meta_op_body(op, path, extra, cache_result, ctx)
            )
            return data
        with ctx.span("op." + op, CAT_PHASE, node=self.name):
            data = yield from self._meta_op_body(op, path, extra,
                                                 cache_result, ctx)
        return data

    def _meta_op_body(self, op, path, extra, cache_result, ctx):
        if self.costs.client_op_us:
            yield from self._client_cpu(ctx, self.costs.client_op_us)
        components = split_path(path)
        if not components:
            raise RpcFailure(RpcError.EINVAL, "operation on /")
        parent, parent_key = yield from self._walk_parent(components,
                                                          ctx=ctx)
        if not parent.is_dir:
            raise RpcFailure(RpcError.ENOTDIR, path)
        payload = dict(extra)
        payload.update({
            "pid": parent.ino, "name": components[-1],
            "parent_key": parent_key,
        })
        data = yield from self._send_keyed(op, parent.ino, payload, ctx=ctx)
        if cache_result and isinstance(data, dict) and "attrs" in data:
            attrs = attrs_from_wire(data["attrs"])
            self.dcache.insert(parent.ino, components[-1], attrs,
                               cold=not attrs.is_dir)
        return data

    # -- public API (mirrors FalconClient) -------------------------------

    def mkdir(self, path, mode=0o755, ctx=None):
        data = yield from self._meta_op("mkdir", path, {"mode": mode},
                                        ctx=ctx)
        return data["attrs"]["ino"]

    def create(self, path, mode=0o644, exclusive=True, ctx=None):
        data = yield from self._meta_op(
            "create", path, {"mode": mode, "exclusive": exclusive}, ctx=ctx
        )
        return data["attrs"]["ino"]

    def open_file(self, path, ctx=None):
        op = "lookup" if self.profile.open_via_lookup else "open"
        data = yield from self._meta_op(op, path, {"intent": "open"},
                                        ctx=ctx)
        attrs = data["attrs"]
        if attrs["is_dir"]:
            raise RpcFailure(RpcError.EISDIR, path)
        return attrs

    def getattr(self, path):
        if not split_path(path):
            return {
                "ino": ROOT_INO, "is_dir": True, "mode": 0o777,
                "uid": 0, "gid": 0, "size": 0, "mtime": 0.0, "nlink": 1,
            }
        data = yield from self._meta_op("getattr", path, {})
        return data["attrs"]

    def close(self, path, size=None, ctx=None):
        extra = {} if size is None else {"size": size}
        yield from self._meta_op("close", path, extra, cache_result=False,
                                 ctx=ctx)

    def unlink(self, path):
        yield from self._meta_op("unlink", path, {}, cache_result=False)
        self._drop_cached(path)

    def chmod(self, path, mode):
        yield from self._meta_op(
            "setattr", path, {"mode": mode}, cache_result=False
        )
        self._drop_cached(path)

    def rmdir(self, path):
        yield from self._meta_op("rmdir", path, {}, cache_result=False)
        self._drop_cached(path)

    def rename(self, src, dst):
        ctx = self._begin_op("rename", src)
        yield from self._traced(ctx, self._rename_body(src, dst, ctx))

    def _rename_body(self, src, dst, ctx):
        if self.costs.client_op_us:
            yield from self._client_cpu(ctx, self.costs.client_op_us)
        src_comps = split_path(src)
        dst_comps = split_path(dst)
        if not src_comps or not dst_comps:
            raise RpcFailure(RpcError.EINVAL, "rename involving /")
        sparent, _ = yield from self._walk_parent(src_comps, ctx=ctx)
        dparent, _ = yield from self._walk_parent(dst_comps, ctx=ctx)
        self.metrics.counter("requests").inc("rename")
        with ctx.span("rpc", CAT_PHASE, node=self.name,
                      attrs={"op": "rename"} if ctx.traced else None):
            yield from deadline_call(
                self, ctx, self._server_name(sparent.ino), "rename", {
                    "src_key": [sparent.ino, src_comps[-1]],
                    "dst_key": [dparent.ino, dst_comps[-1]],
                },
            )
        self._drop_cached(src)

    def readdir(self, path):
        ctx = self._begin_op("readdir", path)
        return (yield from self._traced(ctx, self._readdir_body(path, ctx)))

    def _readdir_body(self, path, ctx):
        if self.costs.client_op_us:
            yield from self._client_cpu(ctx, self.costs.client_op_us)
        components = split_path(path)
        if components:
            result = yield from self.walker.walk(path, ctx=ctx)
            dir_ino = result.attrs.ino
        else:
            dir_ino = ROOT_INO
        data = yield from self._send_keyed(
            "readdir", dir_ino, {"pid": dir_ino}, ctx=ctx
        )
        return sorted(tuple(entry) for entry in data["entries"])

    def read_file(self, path):
        ctx = self._begin_op("read", path)

        def body():
            attrs = yield from self.open_file(path, ctx=ctx)
            yield from self.blocks.read(attrs["ino"], attrs["size"],
                                        ctx=ctx)
            if self.profile.data_overhead_us:
                yield from self._client_cpu(
                    ctx, self.profile.data_overhead_us
                )
            if self.profile.close_releases_caps:
                yield from self._meta_op("close", path, {},
                                         cache_result=False, ctx=ctx)
            return attrs

        attrs = yield from self._traced(ctx, body())
        self.metrics.counter("files").inc("read")
        return attrs["size"]

    def write_file(self, path, size, mode=0o644, exclusive=True):
        ctx = self._begin_op("write", path)

        def body():
            ino = yield from self.create(path, mode=mode,
                                         exclusive=exclusive, ctx=ctx)
            yield from self.blocks.write(ino, size, ctx=ctx)
            if self.profile.data_overhead_us:
                yield from self._client_cpu(
                    ctx, self.profile.data_overhead_us
                )
            yield from self.close(path, size, ctx=ctx)
            return ino

        ino = yield from self._traced(ctx, body())
        self.metrics.counter("files").inc("written")
        return ino

    def exists(self, path):
        try:
            yield from self.getattr(path)
        except RpcFailure as failure:
            if failure.code in (RpcError.ENOENT, RpcError.ENOTDIR):
                return False
            raise
        return True

    def _drop_cached(self, path):
        components = split_path(path)
        current = ROOT_INO
        for name in components[:-1]:
            entry = self.dcache.peek(current, name)
            if entry is None:
                return
            current = entry.attrs.ino
        if components:
            self.dcache.invalidate(current, components[-1])

    def handle(self, message):
        raise RuntimeError(
            "client {} received unexpected {!r}".format(self.name, message)
        )
        yield  # pragma: no cover


class BaselineCluster:
    """A complete baseline deployment; subclasses choose the profile."""

    profile = SystemProfile()

    def __init__(self, config=None, costs=None, env=None, tracer=None):
        self.config = config or FalconConfig()
        self.env = env or SimEnv()
        self.costs = costs or CostModel()
        self.costs.server_cores = self.config.server_cores
        self.shared = ClusterShared(self.env, self.costs, self.config,
                                    tracer=tracer)
        self.network = Network(self.env, self.costs)
        self.servers = [
            MetaServer(self.env, self.network, self.shared, i, self.profile)
            for i in range(self.config.num_mnodes)
        ]
        self.storage = [
            StorageNode(self.env, self.network, name)
            for name in self.shared.storage_names
        ]
        self.clients = []

    def add_client(self, cache_budget_bytes=None, name=None, mode=None):
        """Attach a stateful client (``mode`` accepted for API parity)."""
        if name is None:
            name = "client-{}".format(len(self.clients))
        client = BaselineClient(
            self.env, self.network, self.shared, self.profile, name,
            cache_budget_bytes=cache_budget_bytes,
        )
        self.clients.append(client)
        return client

    def fs(self, client=None, **client_kwargs):
        if client is None:
            client = self.add_client(**client_kwargs)
        return FalconFilesystem(self, client)

    def run_process(self, generator):
        process = self.env.process(generator)
        return self.env.run(until=process)

    def run_for(self, duration_us):
        self.env.run(until=self.env.now + duration_us)

    def inode_distribution(self):
        return [len(server.inodes) for server in self.servers]

    def bulk_load(self, tree):
        """Install a tree directly into the MDS tables (see
        :meth:`repro.core.cluster.FalconCluster.bulk_load`)."""
        from repro.vfs.attrs import ROOT_INO
        from repro.vfs.pathwalk import basename, parent_path

        path_ino = {"/": ROOT_INO}
        n = self.config.num_mnodes
        frac = self.profile.leader_fraction
        for dpath in tree.dirs:
            pid = path_ino[parent_path(dpath)]
            name = basename(dpath)
            ino = self.shared.allocator.allocate()
            server = self.servers[placement_index(pid, n, frac)]
            server.inodes.put((pid, name), InodeRecord(
                ino=ino, is_dir=True, mode=0o755,
            ))
            path_ino[dpath] = ino
        for fpath, size in tree.files:
            pid = path_ino[parent_path(fpath)]
            name = basename(fpath)
            ino = self.shared.allocator.allocate()
            server = self.servers[placement_index(pid, n, frac)]
            server.inodes.put((pid, name), InodeRecord(
                ino=ino, is_dir=False, size=size,
            ))
            path_ino[fpath] = ino
        return path_ino

    def prefill_client_cache(self, client, tree, path_ino, rng=None):
        """Warm a stateful client's dentry cache with directory entries.

        Insertion order is randomized so that, under a memory budget, the
        retained subset is an unbiased sample — the steady state a long
        random traversal converges to.
        """
        from repro.vfs.attrs import ROOT_INO
        from repro.vfs.pathwalk import basename, parent_path

        dirs = list(tree.dirs)
        if rng is not None:
            rng.shuffle(dirs)
        for dpath in dirs:
            parent = parent_path(dpath)
            pid = path_ino.get(parent, ROOT_INO)
            attrs = InodeAttrs(
                ino=path_ino[dpath], is_dir=True, mode=0o755,
            )
            client.dcache.insert(pid, basename(dpath), attrs)
