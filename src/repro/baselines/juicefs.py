"""JuiceFS-style baseline (TiKV metadata engine).

Modeled properties:

* **range-partitioned KV metadata with leader imbalance** — only a
  fraction of the engine nodes lead key ranges at any time, producing the
  constant load imbalance the paper observes (§6.2: "imbalanced CPU
  utilization across JuiceFS's metadata engine nodes"), which also makes
  burst size irrelevant (Fig 14: already congested);
* **Percolator-style transactions** — every mutation pays a prewrite
  round plus a second durable commit record (the expensive distributed
  transactions of §6.2);
* **object-store data path overhead** — per-file extra latency reflecting
  the data-storage inefficiency that dominates JuiceFS's small-file
  results in Fig 12;
* heavy software stack (Go + gRPC + TiKV layers) as a CPU multiplier.
"""

from repro.baselines.common import BaselineCluster, SystemProfile


class JuiceCluster(BaselineCluster):
    """JuiceFS-style deployment."""

    profile = SystemProfile(
        name="juice",
        stack_factor=2.5,
        open_extra_us=10.0,
        coherence_lock_us=1.0,
        journal_remote=False,
        update_dir_metadata=True,
        two_round_commit=True,
        leader_fraction=0.5,
        open_via_lookup=False,
        close_releases_caps=False,
        data_overhead_us=150.0,
    )
