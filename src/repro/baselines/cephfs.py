"""CephFS-style baseline.

Modeled properties (the ones §6's comparisons exercise):

* **directory-locality placement** — an MDS owns every entry of the
  directories hashed to it, so same-directory bursts congest one MDS
  (Fig 4 / Fig 14);
* **stateful client with capabilities** — per-component lookups on dcache
  misses, server-side capability bookkeeping per lookup/open, and an
  explicit close (capability release) after reads — the `lookup` +
  `close` request mix of Fig 2;
* **remote journaling** — metadata updates are logged to the OSD cluster,
  so every mutation pays a network round trip plus an SSD write, the
  overhead §6.2 calls out for create/unlink;
* clients open files via `lookup` (the paper counts CephFS lookups on
  files as opens in Fig 13b).
"""

from repro.baselines.common import BaselineCluster, SystemProfile


class CephCluster(BaselineCluster):
    """CephFS-style deployment."""

    profile = SystemProfile(
        name="ceph",
        stack_factor=2.5,
        open_extra_us=10.0,
        coherence_lock_us=6.0,
        journal_remote=True,
        journal_rounds=2,
        update_dir_metadata=False,
        two_round_commit=False,
        leader_fraction=1.0,
        open_via_lookup=True,
        close_releases_caps=True,
        data_overhead_us=0.0,
    )
