"""Lustre-style baseline.

Modeled properties:

* **DNE directory placement** — each directory lives on one MDT; files'
  metadata is on the parent directory's MDT (same-directory read bursts
  congest one MDT, Fig 14);
* **intent locks** — a modest server-side DLM cost per lookup/open (the
  cache-coherence locking FalconFS's stateless clients avoid, §6.2);
* **fast local journaling** — group-committed local WAL, which is why
  Lustre is the strongest baseline throughout the paper's evaluation;
* mutations also update the parent directory's metadata, with a
  cross-MDT RPC when the parent inode lives elsewhere.
"""

from repro.baselines.common import BaselineCluster, SystemProfile


class LustreCluster(BaselineCluster):
    """Lustre-style deployment."""

    profile = SystemProfile(
        name="lustre",
        stack_factor=1.0,
        open_extra_us=25.0,
        coherence_lock_us=6.0,
        journal_remote=False,
        update_dir_metadata=True,
        two_round_commit=False,
        leader_fraction=1.0,
        open_via_lookup=False,
        close_releases_caps=True,
        data_overhead_us=0.0,
    )
