"""Baseline distributed file systems (§6.1's comparison points).

Protocol-level models of the three systems the paper evaluates against,
built on the same simulation substrates as FalconFS so that performance
differences come from protocol structure only:

* :class:`CephCluster` — CephFS-style: directory-locality metadata
  placement (all entries of one directory on one MDS), stateful clients
  with capability coherence, metadata journaled to remote OSDs.
* :class:`LustreCluster` — Lustre-style: DNE directory placement, intent
  locks, fast local journaling with group commit.
* :class:`JuiceCluster` — JuiceFS-style: TiKV-like metadata engine with
  Percolator-style two-round transactional commits, a constant leader
  imbalance, and object-store data-path overhead.

All three share :class:`BaselineCluster`'s stateful client: VFS path walk
through an LRU dentry cache with per-component ``lookup`` RPCs on misses —
the *lookup tax* of §2.3.
"""

from repro.baselines.common import BaselineClient, BaselineCluster, MetaServer
from repro.baselines.cephfs import CephCluster
from repro.baselines.juicefs import JuiceCluster
from repro.baselines.lustre import LustreCluster

__all__ = [
    "BaselineClient",
    "BaselineCluster",
    "CephCluster",
    "JuiceCluster",
    "LustreCluster",
    "MetaServer",
]
