"""Fig 11 — latency of metadata operations.

Four metadata servers, a single client thread issuing requests one at a
time.  The paper's observation to reproduce: FalconFS trades latency for
throughput (request merging adds a batching window), so it sits above
Lustre but below CephFS and JuiceFS, whose heavier stacks dominate.
"""

import random

from repro.experiments.common import SYSTEMS, add_workload_client, build_cluster
from repro.workloads.driver import measure_latency
from repro.workloads.trees import private_dirs_tree

OPS = ("create", "unlink", "getattr", "mkdir", "rmdir")


def measure(system, op, num_ops=200, seed=0):
    """Mean/percentile latency for one (system, op) pair."""
    cluster = build_cluster(system, num_mnodes=4, num_storage=4, seed=seed)
    client = add_workload_client(cluster, system, mode="libfs")
    rng = random.Random(seed)
    if op in ("create", "mkdir"):
        tree = private_dirs_tree(8, files_per_dir=0)
        path_ino = cluster.bulk_load(tree)
        if system != "falconfs":
            cluster.prefill_client_cache(client, tree, path_ino)
        if op == "create":
            thunks = [
                lambda i=i: client.create(
                    "{}/n{:06d}.dat".format("/bench/t0000", i)
                )
                for i in range(num_ops)
            ]
        else:
            thunks = [
                lambda i=i: client.mkdir("/bench/t0000/sub{:06d}".format(i))
                for i in range(num_ops)
            ]
    elif op in ("unlink", "getattr"):
        tree = private_dirs_tree(8, files_per_dir=(num_ops + 7) // 8)
        path_ino = cluster.bulk_load(tree)
        if system != "falconfs":
            cluster.prefill_client_cache(client, tree, path_ino)
        paths = tree.file_paths()[:num_ops]
        if op == "getattr":
            rng.shuffle(paths)
            thunks = [lambda p=p: client.getattr(p) for p in paths]
        else:
            thunks = [lambda p=p: client.unlink(p) for p in paths]
    elif op == "rmdir":
        tree = private_dirs_tree(8, files_per_dir=0)
        targets = []
        for i in range(num_ops):
            path = "/bench/t{:04d}/victim{:06d}".format(i % 8, i)
            tree.add_dir(path)
            targets.append(path)
        path_ino = cluster.bulk_load(tree)
        if system != "falconfs":
            cluster.prefill_client_cache(client, tree, path_ino)
        thunks = [lambda p=p: client.rmdir(p) for p in targets]
    else:
        raise ValueError("unknown op {!r}".format(op))
    return measure_latency(cluster, thunks)


def run(systems=SYSTEMS, ops=OPS, num_ops=200, seed=0):
    rows = []
    for op in ops:
        for system in systems:
            result = measure(system, op, num_ops, seed)
            summary = result.summary()
            rows.append({
                "op": op,
                "system": system,
                "mean_us": summary["mean"],
                "p50_us": summary["p50"],
                "p99_us": summary["p99"],
            })
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows, ["op", "system", "mean_us", "p50_us", "p99_us"],
        title="Fig 11: metadata operation latency (us)",
    )
