"""Fig 15b — corner-case analysis for hybrid metadata indexing.

Four getattr scenarios:

* **one-hop** — the common case: existing files, balanced unique names,
  up-to-date exception table;
* **non-existent** — paths through a directory that does not exist: the
  serving MNode pays one remote lookup to the would-be owner before it
  can answer ENOENT (§4.3's negative-access cost);
* **path-walk redirected** — the target filenames carry path-walk
  entries, so clients send to a random MNode which resolves the parent
  and forwards (one extra hop);
* **stale table** — the filenames were moved by overriding redirection
  but the client never refreshes its exception table, so every request is
  forwarded by the first MNode (one extra hop).

The paper reports a 36.8 %–49.6 % throughput decrease for the two-hop
scenarios versus the one-hop case.
"""

import random

from repro.experiments.common import build_cluster
from repro.net.rpc import RpcFailure
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import flat_burst_tree

SCENARIOS = ("one-hop", "non-existent", "pathwalk", "stale-table")


def _tolerant(client, path):
    try:
        yield from client.getattr(path)
    except RpcFailure:
        pass


def measure(scenario, num_ops=1200, threads=256, num_mnodes=4, seed=0):
    rng = random.Random(seed)
    cluster = build_cluster("falconfs", num_mnodes=num_mnodes,
                            num_storage=4, seed=seed)
    client = cluster.add_client(mode="libfs")
    num_dirs = 64
    per_dir = (num_ops + num_dirs - 1) // num_dirs

    if scenario == "pathwalk":
        tree = flat_burst_tree(num_dirs, 0)
        names = ["hot{:02d}.dat".format(i) for i in range(8)]
        for directory in tree.dirs[1:]:
            for i in range(per_dir):
                tree.add_file(
                    "{}/{}".format(directory, names[i % len(names)]), 0
                )
        cluster.install_exception_table(pathwalk=names)
        cluster.bulk_load(tree)
        paths = tree.file_paths()[:num_ops]
        rng.shuffle(paths)
        thunks = [lambda p=p: client.getattr(p) for p in paths]
    elif scenario == "stale-table":
        tree = flat_burst_tree(num_dirs, per_dir)
        names = sorted({path.rsplit("/", 1)[1] for path, _ in tree.files})
        override = {
            name: (i + 1) % num_mnodes for i, name in enumerate(names)
        }
        # Servers know the overrides; the client stays at version 0.
        cluster.install_exception_table(override=override,
                                        include_clients=False)
        client.auto_refresh_xt = False
        cluster.bulk_load(tree)
        paths = tree.file_paths()[:num_ops]
        rng.shuffle(paths)
        thunks = [lambda p=p: client.getattr(p) for p in paths]
    elif scenario == "non-existent":
        tree = flat_burst_tree(num_dirs, per_dir)
        cluster.bulk_load(tree)
        paths = [
            "/burst/missing{:05d}/f{:08d}.dat".format(i % 512, i)
            for i in range(num_ops)
        ]
        thunks = [lambda p=p: _tolerant(client, p) for p in paths]
    elif scenario == "one-hop":
        tree = flat_burst_tree(num_dirs, per_dir)
        cluster.bulk_load(tree)
        paths = tree.file_paths()[:num_ops]
        rng.shuffle(paths)
        thunks = [lambda p=p: client.getattr(p) for p in paths]
    else:
        raise ValueError("unknown scenario {!r}".format(scenario))

    result = run_closed_loop(cluster, thunks, num_threads=threads)
    forwarded = sum(
        mnode.metrics.counter("forwarded").total()
        for mnode in cluster.mnodes
    )
    remote_lookups = sum(
        mnode.metrics.counter("remote_lookups").total()
        for mnode in cluster.mnodes
    )
    return {
        "scenario": scenario,
        "getattr_per_sec": result.ops_per_sec,
        "forwarded": forwarded,
        "server_lookups": remote_lookups,
        "errors": result.errors,
    }


def run(scenarios=SCENARIOS, **kwargs):
    rows = [measure(scenario, **kwargs) for scenario in scenarios]
    base = rows[0]["getattr_per_sec"]
    for row in rows:
        row["relative"] = row["getattr_per_sec"] / base if base else 0.0
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["scenario", "getattr_per_sec", "relative", "forwarded",
         "server_lookups"],
        title="Fig 15b: corner-case analysis (getattr)",
    )
