"""Table 3 — inode distribution across 16 MNodes for nine workloads.

Each workload's directory tree is installed on a 16-MNode FalconFS
cluster (placement by hybrid indexing), then the coordinator's
statistical load balancer runs to convergence.  Reported per workload:
inode count, max/min per-node share, and the exception-table entries the
balancer needed — which the paper shows is zero for DL datasets and at
most two (Makefile/Kconfig) for the Linux tree and one for FSL homes.
"""

from repro.experiments.common import build_cluster
from repro.metrics import load_share_extremes
from repro.workloads.datasets import TABLE3_WORKLOADS


def measure(name, builder, scale=1.0, num_mnodes=16, epsilon=0.02, seed=0):
    tree = builder(scale)
    cluster = build_cluster("falconfs", num_mnodes=num_mnodes,
                            num_storage=4, seed=seed, epsilon=epsilon)
    cluster.bulk_load(tree)
    cluster.rebalance()
    counts = cluster.inode_distribution()
    max_share, min_share = load_share_extremes(counts)
    table = cluster.exception_table
    return {
        "workload": name,
        "inodes": sum(counts),
        "max_pct": max_share * 100,
        "min_pct": min_share * 100,
        "pathwalk_entries": len(table.pathwalk),
        "override_entries": len(table.override),
        "pathwalk_names": sorted(table.pathwalk),
    }


def run(scale=1.0, workloads=TABLE3_WORKLOADS, scales=None, **kwargs):
    """``scales`` optionally overrides ``scale`` per workload name
    (large datasets can be subsampled while small ones run in full)."""
    scales = scales or {}
    return [
        measure(name, builder, scale=scales.get(name, scale), **kwargs)
        for name, builder in workloads
    ]


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["workload", "inodes", "max_pct", "min_pct",
         "pathwalk_entries", "override_entries", "pathwalk_names"],
        title="Table 3: inode distribution over 16 MNodes",
    )
