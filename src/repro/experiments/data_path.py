"""Fig 12 — small-file IO throughput across file sizes.

Clients open (O_DIRECT), fully read or write, and close pre-created files
in private directories, sweeping the file size from 4 KiB to 1 MiB.
Reproduced shape: below ~256 KiB throughput grows with file size because
metadata IOPS is the bottleneck (and FalconFS's metadata advantage
dominates); above it every system converges to the SSD bandwidth ceiling.
Throughput is reported normalized to FalconFS as in the paper.
"""

import random

from repro.experiments.common import (
    SYSTEMS,
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import private_dirs_tree

SIZES = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)


def measure(system, file_size, op="read", num_files=2000, threads=256,
            num_mnodes=4, num_storage=12, seed=0):
    rng = random.Random(seed)
    cluster = build_cluster(system, num_mnodes=num_mnodes,
                            num_storage=num_storage, seed=seed)
    client = add_workload_client(cluster, system, mode="vfs")
    num_dirs = threads
    files_per_dir = (num_files + num_dirs - 1) // num_dirs
    if op == "read":
        tree = private_dirs_tree(num_dirs, files_per_dir, file_size)
        path_ino = cluster.bulk_load(tree)
        if system != "falconfs":
            prefill_dcache(client, tree, path_ino, rng)
        paths = tree.file_paths()[:num_files]
        rng.shuffle(paths)
        thunks = [lambda p=p: client.read_file(p) for p in paths]
    else:
        tree = private_dirs_tree(num_dirs, 0)
        path_ino = cluster.bulk_load(tree)
        if system != "falconfs":
            prefill_dcache(client, tree, path_ino, rng)
        paths = [
            "{}/w{:08d}.dat".format(tree.dirs[1 + i % num_dirs], i)
            for i in range(num_files)
        ]
        thunks = [
            lambda p=p: client.write_file(p, file_size) for p in paths
        ]
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    return {
        "system": system,
        "op": op,
        "file_size_kib": file_size >> 10,
        "files_per_sec": result.ops_per_sec,
        "gib_per_sec": result.ops_per_sec * file_size / (1 << 30),
        "errors": result.errors,
    }


def run(systems=SYSTEMS, sizes=SIZES, ops=("read", "write"), **kwargs):
    rows = []
    for op in ops:
        for size in sizes:
            cells = [
                measure(system, size, op=op, **kwargs) for system in systems
            ]
            falcon = next(
                (c for c in cells if c["system"] == "falconfs"), cells[0]
            )
            for cell in cells:
                cell["normalized"] = (
                    cell["gib_per_sec"] / falcon["gib_per_sec"]
                    if falcon["gib_per_sec"] else 0.0
                )
                rows.append(cell)
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["op", "file_size_kib", "system", "gib_per_sec", "normalized"],
        title="Fig 12: file data IO throughput (normalized to FalconFS)",
    )
