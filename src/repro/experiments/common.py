"""Shared experiment utilities: cluster builders, table rendering, and
the shared ``--jobs`` fan-out for point-parallel sweeps."""

from repro.baselines import CephCluster, JuiceCluster, LustreCluster
from repro.core import FalconCluster, FalconConfig

#: Systems compared throughout the evaluation, in the paper's order.
SYSTEMS = ("falconfs", "cephfs", "lustre", "juicefs")

_BUILDERS = {
    "falconfs": FalconCluster,
    "cephfs": CephCluster,
    "lustre": LustreCluster,
    "juicefs": JuiceCluster,
}


def build_cluster(system, num_mnodes=4, num_storage=12, seed=0,
                  tracer=None, **config):
    """Build a cluster for ``system`` ("falconfs" or a baseline name).

    Pass a :class:`repro.obs.Tracer` as ``tracer`` to capture request
    spans across the whole cluster (zero-cost when omitted).
    """
    if system not in _BUILDERS:
        raise KeyError(
            "unknown system {!r}; choose from {}".format(system, SYSTEMS)
        )
    cfg = FalconConfig(
        num_mnodes=num_mnodes, num_storage=num_storage, seed=seed, **config
    )
    return _BUILDERS[system](cfg, tracer=tracer)


def add_workload_client(cluster, system, mode="libfs",
                        cache_budget_bytes=None):
    """Attach a client appropriate for ``system``.

    FalconFS clients honour ``mode`` ("vfs" / "libfs" / "nobypass");
    baselines are always stateful and only honour the cache budget.
    """
    if system == "falconfs":
        return cluster.add_client(
            mode=mode, cache_budget_bytes=cache_budget_bytes
        )
    return cluster.add_client(cache_budget_bytes=cache_budget_bytes)


def prefill_dcache(client, tree, path_ino, rng=None):
    """Warm any stateful client's dentry cache with a tree's directories.

    Randomized insertion order makes the budget-limited retained subset an
    unbiased sample — the steady state of a long random traversal.
    """
    from repro.vfs import InodeAttrs
    from repro.vfs.attrs import ROOT_INO
    from repro.vfs.pathwalk import basename, parent_path

    dirs = list(tree.dirs)
    if rng is not None:
        rng.shuffle(dirs)
    for dpath in dirs:
        pid = path_ino.get(parent_path(dpath), ROOT_INO)
        client.dcache.insert(
            pid, basename(dpath),
            InodeAttrs(ino=path_ino[dpath], is_dir=True, mode=0o755),
        )


def parallel_map(tasks, fn, jobs=1):
    """Run ``fn`` over ``tasks``, returning results **in task order**.

    The shared ``--jobs`` plumbing for every sweep: ``jobs <= 1`` runs
    inline (the bit-identical serial reference path — no pool, no
    pickling); ``jobs > 1`` fans out over a persistent worker pool.
    Each simulated point is an independent cluster lifetime keyed only
    by its task, and every row is assembled inside ``fn`` (a pure,
    picklable dict), so the merged row list — and therefore every
    rendered table and output file — is identical at any ``jobs``.

    ``fn`` must be module-level and each task picklable; a failed task
    raises :class:`repro.parallel.ParallelError` with its traceback
    after the remaining tasks drain.
    """
    tasks = list(tasks)
    if jobs <= 1 or len(tasks) <= 1:
        return [fn(task) for task in tasks]
    from repro.parallel import pmap

    return pmap(tasks, fn, jobs=jobs)


def format_table(rows, columns=None, title=None):
    """Render row dicts as an aligned text table."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_cell(row.get(col)) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(w) for c, w in zip(columns, widths))
    lines.append(header)
    lines.append("-" * len(header))
    lines.extend(
        "  ".join(v.ljust(w) for v, w in zip(r, widths)) for r in rendered
    )
    return "\n".join(lines)


def _cell(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return "{:,.0f}".format(value)
        if abs(value) >= 10:
            return "{:.1f}".format(value)
        return "{:.3f}".format(value)
    return str(value)
