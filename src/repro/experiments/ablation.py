"""Fig 15a — design contribution breakdown (mkdir throughput).

Three configurations, each removing one more design feature:

* **FalconFS** — the full system: lazy invalidation-based namespace
  replication + concurrent request merging;
* **no inv** — mkdir wraps dentry replication in an eager distributed
  transaction (2PC across all MNodes) instead of lazy synchronization;
* **no merge** — additionally disables request merging: workers fetch one
  request at a time from a contended shared queue.

The paper reports *no inv* losing 86.9 % of full throughput and
*no merge* losing an additional 91.8 %.
"""

from repro.experiments.common import build_cluster
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import private_dirs_tree

CONFIGS = (
    ("FalconFS", {}),
    ("no inv", {"eager_replication": True}),
    ("no merge", {"eager_replication": True, "merging": False}),
)


def measure(label, overrides, num_ops=1200, threads=256, num_mnodes=4,
            seed=0):
    cluster = build_cluster("falconfs", num_mnodes=num_mnodes,
                            num_storage=4, seed=seed, **overrides)
    client = cluster.add_client(mode="libfs")
    tree = private_dirs_tree(threads, files_per_dir=0)
    cluster.bulk_load(tree)
    paths = [
        "{}/sub{:08d}".format(tree.dirs[1 + i % threads], i)
        for i in range(num_ops)
    ]
    thunks = [lambda p=p: client.mkdir(p) for p in paths]
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    return {
        "config": label,
        "mkdir_per_sec": result.ops_per_sec,
        "errors": result.errors,
    }


def _config_row(task):
    """One ablation configuration → its row (module-level for the
    shared ``--jobs`` pool; ``relative`` needs every row, so it is
    derived in the parent, in config order)."""
    label, overrides, kwargs = task
    return measure(label, overrides, **kwargs)


def run(configs=CONFIGS, jobs=1, **kwargs):
    from repro.experiments.common import parallel_map

    rows = parallel_map(
        [(label, overrides, kwargs) for label, overrides in configs],
        _config_row, jobs=jobs)
    full = rows[0]["mkdir_per_sec"]
    for row in rows:
        row["relative"] = row["mkdir_per_sec"] / full if full else 0.0
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows, ["config", "mkdir_per_sec", "relative", "errors"],
        title="Fig 15a: design contribution breakdown (mkdir)",
    )
