"""Command-line experiment runner.

Run any paper experiment by name and print its table::

    python -m repro.experiments fig13            # default scale
    python -m repro.experiments fig10 --quick    # reduced scale
    python -m repro.experiments grayfail --jobs 8   # point-parallel sweep
    python -m repro.experiments --list
"""

import argparse
import inspect
import sys
import time

from repro.experiments import (
    ablation,
    bench,
    breakdown,
    burst,
    cache_sweep,
    corner_cases,
    data_path,
    election,
    failover,
    grayfail,
    labeling,
    load_balance,
    memory_budget,
    metadata_latency,
    metadata_scaling,
    rebalance,
    restart,
    sensitivity,
    straggler,
    training,
)

#: name -> (module, default kwargs, quick kwargs)
EXPERIMENTS = {
    "fig02": (cache_sweep, {},
              {"budgets": (0.1, 1.0), "max_files": 1000, "threads": 96}),
    "fig04": (burst, {"systems": ("cephfs",)},
              {"systems": ("cephfs",), "bursts": (1, 100),
               "num_dirs": 16, "files_per_dir": 50, "threads": 128}),
    "fig10": (metadata_scaling, {},
              {"servers": (4, 8), "num_ops": 600, "threads": 128}),
    "fig11": (metadata_latency, {}, {"num_ops": 60}),
    "fig12": (data_path, {},
              {"sizes": (16 << 10, 256 << 10), "num_files": 500,
               "threads": 96}),
    "fig13": (memory_budget, {},
              {"budgets": (0.1, 1.0), "max_files": 1500, "threads": 128}),
    "fig14": (burst, {},
              {"bursts": (1, 100), "num_dirs": 16, "files_per_dir": 50,
               "threads": 128}),
    "tab03": (load_balance, {"scales": {"ImageNet": 0.12, "CelebA": 0.5},
                             "num_mnodes": 16, "epsilon": 0.01},
              {"scale": 0.05, "num_mnodes": 8, "epsilon": 0.05}),
    "fig15a": (ablation, {}, {"num_ops": 500, "threads": 128}),
    "fig15b": (corner_cases, {}, {"num_ops": 500, "threads": 48}),
    "fig16": (labeling, {}, {"num_tasks": 400, "threads": 128}),
    "fig17": (training, {},
              {"gpu_counts": (8, 32, 64), "num_files": 2500}),
    "election": (election, {},
                 {"threads": 4, "duration_us": 25000.0,
                  "warm_us": 7000.0}),
    "failover": (failover, {},
                 {"threads": 6, "duration_us": 20000.0,
                  "warm_us": 5000.0}),
    "grayfail": (grayfail, {},
                 {"kinds": ("degrade_link", "stampede"),
                  "threads": 4, "duration_us": 20000.0,
                  "warm_us": 5000.0, "fault_duration_us": 6000.0}),
    "rebalance": (rebalance, {},
                  {"end_mnodes": 8, "num_slots": 16, "threads": 4,
                   "num_dirs": 4, "stage_us": 8000.0}),
    "restart": (restart, {},
                {"seeds": (0,), "threads": 6, "duration_us": 20000.0,
                 "warm_us": 5000.0}),
    "sensitivity": (sensitivity, {}, {"num_ops": 600, "threads": 128}),
    "straggler": (straggler, {},
                  {"num_dirs": 16, "files_per_dir": 25, "threads": 96}),
    "breakdown": (breakdown, {}, {"num_ops": 40}),
    "bench": (bench, {},
              {"repeat": 3, "num_ops": 800, "threads": 32,
               "num_files": 300, "num_gpus": 8, "num_clients": 4,
               "duration_us": 15000.0}),
}


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate a FalconFS paper experiment.",
    )
    parser.add_argument("experiment", nargs="?",
                        help="one of: " + ", ".join(sorted(EXPERIMENTS)))
    parser.add_argument("--quick", action="store_true",
                        help="reduced scale for a fast look")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    parser.add_argument("--profile", action="store_true",
                        help="run under cProfile and print the top-25 "
                             "cumulative hot spots")
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes for sweeps whose points "
                             "are independent (default 1; output is "
                             "identical at any value)")
    parser.add_argument("--repeat", type=int, default=None,
                        help="repetitions for experiments that support "
                             "it (bench: median-of-N reporting)")
    args = parser.parse_args(argv)

    if args.list or not args.experiment:
        for name in sorted(EXPERIMENTS):
            module = EXPERIMENTS[name][0]
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print("{:<12} {}".format(name, summary))
        return 0

    try:
        module, default_kwargs, quick_kwargs = EXPERIMENTS[args.experiment]
    except KeyError:
        parser.error("unknown experiment {!r}; use --list".format(
            args.experiment))
    kwargs = dict(quick_kwargs if args.quick else default_kwargs)
    accepted = inspect.signature(module.run).parameters
    if args.jobs != 1:
        if "jobs" not in accepted:
            parser.error("{} does not support --jobs (its points are "
                         "not independent)".format(args.experiment))
        kwargs["jobs"] = args.jobs
    if args.repeat is not None:
        if "repeat" not in accepted:
            parser.error("{} does not support --repeat".format(
                args.experiment))
        kwargs["repeat"] = args.repeat
    start = time.time()
    if args.profile:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        rows = profiler.runcall(module.run, **kwargs)
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative").print_stats(25)
    else:
        rows = module.run(**kwargs)
    print(module.format_rows(rows))
    print("\n({} rows in {:.1f}s wall)".format(len(rows),
                                               time.time() - start))
    return 0


if __name__ == "__main__":
    sys.exit(main())
