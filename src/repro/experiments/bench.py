"""Simulator wall-clock benchmark: events/sec on representative workloads.

Not a paper figure — this measures the *simulator itself*.  Three
workloads exercise the kernel's distinct hot paths:

* ``metadata_saturation`` — a closed-loop create storm against FalconFS
  (the Fig 10 shape): RPC fan-out, lock manager, WAL group commit.
* ``training_slice`` — a reduced Fig 17 training epoch: data-path
  transfers, GPU compute timeouts, VFS cache traffic.
* ``failover_sweep`` — the MNode crash-and-promote scenario: fault
  injection, retries, heartbeat timers, redo shipping.

Each workload runs ``repeat`` times (``--jobs N`` fans the repetitions
out over the worker pool) and reports both the *best* wall clock (noise
on a shared machine only ever adds time) and the **median** — the less
noisy statistic ``benchmarks/perf/check_regression.py`` gates on.  The
events metric is
:attr:`~repro.sim.engine.Environment.events_scheduled` — deterministic
for a fixed seed, so a changed event count means changed simulation
behaviour, not noise (asserted identical across repetitions).  Results
land in ``BENCH_perf.json`` (schema documented in ``EXPERIMENTS.md``).
"""

import json
import statistics
import time

from repro.experiments import failover
from repro.experiments.common import build_cluster, format_table
from repro.workloads.driver import run_closed_loop, training_run
from repro.workloads.trees import flat_burst_tree, private_dirs_tree

#: Default output path (repo root when run from it, as CI does).
DEFAULT_OUT = "BENCH_perf.json"

#: Version of the BENCH_perf.json layout.  v2 added the median-of-N
#: fields (``wall_s_median`` / ``events_per_sec_median``).
SCHEMA_VERSION = 2


def metadata_saturation(num_ops=4000, threads=64, seed=0):
    """Closed-loop create storm on a 4-MNode FalconFS cluster."""
    cluster = build_cluster("falconfs", num_mnodes=4, num_storage=4,
                            seed=seed)
    client = cluster.add_client(mode="libfs")
    tree = private_dirs_tree(threads, files_per_dir=0)
    cluster.bulk_load(tree)
    paths = [
        "{}/n{:08d}.dat".format(tree.dirs[1 + i % threads], i)
        for i in range(num_ops)
    ]
    thunks = [lambda p=p: client.create(p) for p in paths]
    start = time.perf_counter()
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    wall = time.perf_counter() - start
    env = cluster.env
    return {
        "wall_s": wall,
        "events": env.events_scheduled,
        "sim_us": env.now,
        "detail": {"ops": result.ops, "errors": result.errors},
    }


def training_slice(num_files=1200, files_per_dir=10, num_gpus=32,
                   num_clients=8, seed=0):
    """Reduced Fig 17 epoch: random-read dataset feeding simulated GPUs."""
    import random

    rng = random.Random(seed)
    num_dirs = max(1, num_files // files_per_dir)
    tree = flat_burst_tree(num_dirs, files_per_dir, 112 * 1024,
                           root="/dataset")
    cluster = build_cluster("falconfs", num_mnodes=4, num_storage=12,
                            seed=seed)
    clients = [cluster.add_client(mode="vfs") for _ in range(num_clients)]
    cluster.bulk_load(tree)
    start = time.perf_counter()
    utilization = training_run(cluster, clients, tree.file_paths(),
                               num_gpus, 16, 4000.0, rng=rng)
    wall = time.perf_counter() - start
    env = cluster.env
    return {
        "wall_s": wall,
        "events": env.events_scheduled,
        "sim_us": env.now,
        "detail": {"files": num_files, "gpus": num_gpus,
                   "accelerator_utilization": round(utilization, 4)},
    }


def failover_sweep(threads=8, duration_us=25000.0, warm_us=6000.0, seed=0):
    """One crash-and-promote run (reusing the failover experiment)."""
    start = time.perf_counter()
    result = failover.measure(threads=threads, duration_us=duration_us,
                              warm_us=warm_us, seed=seed)
    wall = time.perf_counter() - start
    env = result["cluster"].env
    return {
        "wall_s": wall,
        "events": env.events_scheduled,
        "sim_us": env.now,
        "detail": {"gap_us": round(result["gap_us"], 3),
                   "lost_txns": result["lost_txns"]},
    }


#: name -> (workload fn, names of its scale kwargs).
WORKLOADS = {
    "metadata_saturation": (metadata_saturation,
                            ("num_ops", "threads")),
    "training_slice": (training_slice,
                       ("num_files", "files_per_dir", "num_gpus",
                        "num_clients")),
    "failover_sweep": (failover_sweep,
                       ("threads", "duration_us", "warm_us")),
}


def _run_workload(task):
    """One (workload, kwargs) repetition — the pool's unit of work."""
    name, kwargs = task
    fn, _ = WORKLOADS[name]
    return fn(**kwargs)


def run(repeat=3, out=DEFAULT_OUT, seed=0, jobs=1, **overrides):
    """Run every workload ``repeat`` times; report best + median.

    ``overrides`` are scale kwargs routed to the workload that accepts
    them (e.g. ``num_ops=800`` only affects ``metadata_saturation``).
    ``jobs > 1`` runs the repetitions in parallel worker processes;
    each repetition times itself, and aggregation (best/median, in
    workload order) happens in the parent, so only the wall-clock noise
    profile changes — the deterministic event counts cannot.
    Writes ``out`` (set ``out=None`` to skip) and returns the table rows.
    """
    from repro.experiments.common import parallel_map

    tasks = []
    for name, (_fn, accepted) in WORKLOADS.items():
        kwargs = {k: v for k, v in overrides.items() if k in accepted}
        kwargs["seed"] = seed
        tasks.extend((name, kwargs) for _ in range(repeat))
    results = parallel_map(tasks, _run_workload, jobs=jobs)

    rows = []
    report = {}
    for name in WORKLOADS:
        reps = [result for (task_name, _), result in zip(tasks, results)
                if task_name == name]
        events = {r["events"] for r in reps}
        if len(events) != 1:
            raise AssertionError(
                "{}: event counts differ across repetitions ({}) — "
                "the workload is not deterministic".format(
                    name, sorted(events)))
        best = min(reps, key=lambda r: r["wall_s"])
        wall_median = statistics.median(r["wall_s"] for r in reps)
        events_per_sec = best["events"] / best["wall_s"]
        median_per_sec = best["events"] / wall_median
        rows.append({
            "workload": name,
            "events": best["events"],
            "wall_s": round(best["wall_s"], 4),
            "events_per_sec": round(events_per_sec),
            "median_ev_per_s": round(median_per_sec),
            "sim_us": round(best["sim_us"], 3),
        })
        report[name] = {
            "events": best["events"],
            "wall_s": round(best["wall_s"], 4),
            "events_per_sec": round(events_per_sec, 1),
            "wall_s_median": round(wall_median, 4),
            "events_per_sec_median": round(median_per_sec, 1),
            "sim_us": round(best["sim_us"], 3),
            "detail": best["detail"],
        }
    if out:
        payload = {
            "schema": SCHEMA_VERSION,
            "generated_by": "python -m repro.experiments bench",
            "repeat": repeat,
            "seed": seed,
            "workloads": report,
        }
        with open(out, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    return rows


def format_rows(rows):
    return format_table(
        rows,
        ["workload", "events", "wall_s", "events_per_sec",
         "median_ev_per_s", "sim_us"],
        title="Simulator throughput (best and median of N repetitions)",
    )
