"""Fig 17 — accelerator utilization for ResNet-50-style training.

MLPerf-Storage-style loop (§6.8): each simulated GPU computes on one
batch while prefetching the next; accelerator utilization (AU) is compute
time over wall time.  The dataset mirrors the benchmark's shape — many
small directories of 112 KiB samples, read with direct IO in one random
epoch.  Reproduced result: FalconFS sustains ≥90 % AU to several times
more GPUs than Lustre, while CephFS never reaches the threshold; JuiceFS
is omitted (it cannot finish initialization in the paper either).
"""

import random

from repro.experiments.common import (
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.workloads.driver import training_run
from repro.workloads.trees import flat_burst_tree

FIG17_SYSTEMS = ("falconfs", "cephfs", "lustre")


def measure(system, num_gpus, num_files=9000, files_per_dir=10,
            file_size=112 * 1024, batch_size=16,
            compute_us_per_batch=4000.0, num_mnodes=4, num_storage=12,
            clients_per_run=8, cache_budget_fraction=0.25, seed=0):
    rng = random.Random(seed)
    num_dirs = max(1, num_files // files_per_dir)
    tree = flat_burst_tree(num_dirs, files_per_dir, file_size,
                           root="/dataset")
    cluster = build_cluster(system, num_mnodes=num_mnodes,
                            num_storage=num_storage, seed=seed)
    budget = None
    if cache_budget_fraction is not None:
        from repro.vfs.attrs import DENTRY_CACHE_COST_BYTES

        budget = int(
            (num_dirs + 1) * DENTRY_CACHE_COST_BYTES * cache_budget_fraction
        )
    clients = [
        add_workload_client(cluster, system, mode="vfs",
                            cache_budget_bytes=budget)
        for _ in range(clients_per_run)
    ]
    path_ino = cluster.bulk_load(tree)
    if system != "falconfs":
        for client in clients:
            prefill_dcache(client, tree, path_ino)
    au = training_run(
        cluster, clients, tree.file_paths(), num_gpus, batch_size,
        compute_us_per_batch, rng=rng,
    )
    return {
        "system": system,
        "gpus": num_gpus,
        "accelerator_utilization": au,
    }


def run(systems=FIG17_SYSTEMS, gpu_counts=(8, 16, 32, 48, 64, 80, 96), **kwargs):
    return [
        measure(system, gpus, **kwargs)
        for system in systems
        for gpus in gpu_counts
    ]


def supported_gpus(rows, threshold=0.9):
    """Max GPU count per system with AU >= threshold (the paper's
    headline metric)."""
    supported = {}
    for row in rows:
        if row["accelerator_utilization"] >= threshold:
            supported[row["system"]] = max(
                supported.get(row["system"], 0), row["gpus"]
            )
        else:
            supported.setdefault(row["system"], 0)
    return supported


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows, ["system", "gpus", "accelerator_utilization"],
        title="Fig 17: accelerator utilization vs number of GPUs",
    )
