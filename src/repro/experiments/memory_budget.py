"""Fig 13 — random file traversal under a client memory budget.

A large uniform directory tree is traversed in random order (every file
read exactly once — one training epoch) while the client's dentry/inode
cache is capped at a fraction of the bytes needed to cache every
directory.  Reproduced observations:

* stateful clients (CephFS, Lustre, FalconFS-NoBypass) lose throughput as
  the budget shrinks, because leaf-directory cache misses turn one open
  into several requests (Fig 13b's request composition);
* FalconFS's stateless client sends a constant one request per file and
  its throughput does not depend on the budget.
"""

import random

from repro.experiments.common import (
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.vfs.attrs import DENTRY_CACHE_COST_BYTES
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import uniform_tree

#: Systems in Fig 13 (JuiceFS is omitted by the paper as well).
FIG13_SYSTEMS = ("falconfs", "falconfs-nobypass", "cephfs", "lustre")


def measure(system, budget_fraction, levels=3, dir_fanout=10,
            files_per_leaf=10, file_size=64 * 1024, threads=256,
            num_mnodes=4, num_storage=12, seed=0, max_files=None):
    """One (system, budget) cell: traversal throughput + request mix."""
    rng = random.Random(seed)
    tree = uniform_tree(levels, dir_fanout, files_per_leaf, file_size)
    base = system.replace("-nobypass", "")
    cluster = build_cluster(base, num_mnodes=num_mnodes,
                            num_storage=num_storage, seed=seed)
    budget = None
    if budget_fraction is not None:
        budget = int(tree.num_dirs * DENTRY_CACHE_COST_BYTES
                     * budget_fraction)
    mode = "nobypass" if system.endswith("nobypass") else "vfs"
    client = add_workload_client(cluster, base, mode=mode,
                                 cache_budget_bytes=budget)
    path_ino = cluster.bulk_load(tree)
    if system != "falconfs":
        prefill_dcache(client, tree, path_ino, rng)
    files = tree.file_paths()
    if max_files is not None:
        files = files[:max_files]
    rng.shuffle(files)
    thunks = [lambda p=p: client.read_file(p) for p in files]
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    requests = client.metrics.counter("requests").by_label()
    total_requests = sum(requests.values())
    return {
        "system": system,
        "budget_pct": (100 if budget_fraction is None
                       else int(budget_fraction * 100)),
        "files_per_sec": result.ops_per_sec,
        "read_gib_per_sec": result.ops_per_sec * file_size / (1 << 30),
        "requests_per_file": total_requests / max(1, result.ops),
        "requests": requests,
        "errors": result.errors,
    }


def run(systems=FIG13_SYSTEMS, budgets=(0.1, 0.4, 0.7, 1.0), **kwargs):
    return [
        measure(system, budget, **kwargs)
        for system in systems
        for budget in budgets
    ]


def format_rows(rows):
    from repro.experiments.common import format_table

    flat = [
        {
            "system": row["system"],
            "budget_pct": row["budget_pct"],
            "files_per_sec": row["files_per_sec"],
            "requests_per_file": row["requests_per_file"],
            "mix": ",".join(
                "{}:{}".format(k, v) for k, v in sorted(row["requests"].items())
            ),
        }
        for row in rows
    ]
    return format_table(
        flat,
        ["system", "budget_pct", "files_per_sec", "requests_per_file", "mix"],
        title="Fig 13: random traversal vs client memory budget",
    )
