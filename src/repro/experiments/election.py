"""Leader election vs ordained promotion: availability and durability.

Not a paper figure — the paper's MNodes inherit coordinator-driven
primary/standby failover (§4.3); this repo's consensus tier replaces it
with quorum-replicated groups (leader + data follower + witness) whose
recovery is decided by election timeouts at the followers.  This
experiment crashes the leader of one metadata group mid-workload under
**both** recovery regimes and reports, side by side:

* the availability gap — crash to the slot serving again (detection +
  promotion for the baseline, election timeout + vote + claim for the
  consensus tier) plus the worst single-op stall a client saw;
* healthy-phase commit latency (p50/p99 of creates before the crash) —
  the price of quorum acknowledgement over async shipping;
* durability of acknowledgements: every create the client saw succeed
  is looked up again after healing.  Under consensus the count of lost
  acked writes is **asserted zero** (quorum commit means an ack implies
  a majority held the record); the promotion baseline reports its
  lost-unshipped window honestly.

Everything is deterministic: the same seed yields the same crash time,
victim, gap and loss.
"""

from repro.core import FalconCluster, FalconConfig
from repro.faults import FaultInjector
from repro.metrics import percentile
from repro.net.rpc import RpcFailure


def measure(mode="consensus", num_mnodes=3, num_storage=2, threads=8,
            num_dirs=3, duration_us=35000.0, warm_us=9000.0,
            rpc_timeout_us=400.0, seed=0):
    """Run one crash-and-recover scenario under ``mode`` ("consensus"
    or "promotion"); returns a result dict."""
    if mode not in ("consensus", "promotion"):
        raise ValueError("mode must be 'consensus' or 'promotion', "
                         "got {!r}".format(mode))
    consensus = mode == "consensus"
    cluster = FalconCluster(FalconConfig(
        num_mnodes=num_mnodes, num_storage=num_storage, replication=True,
        consensus=consensus, rpc_timeout_us=rpc_timeout_us,
        retry_jitter=0.25, ship_retry_us=1200.0, seed=seed,
    ))
    env = cluster.env
    fs = cluster.fs()
    for d in range(num_dirs):
        fs.mkdir("/w{}".format(d))
    cluster.run_for(5000.0)  # drain setup shipments

    cluster.start_failure_detection()
    if consensus:
        cluster.start_consensus()
    injector = FaultInjector(cluster)
    crash_at = env.now + warm_us
    victim = injector.crash_mnode_at(crash_at)

    client = cluster.add_client(mode="libfs")
    end_at = env.now + duration_us
    records = []
    acked_creates = []

    def worker(wid):
        i = 0
        last = None
        while env.now < end_at:
            creating = last is None or i % 2 == 0
            if creating:
                path = "/w{}/f{}-{}".format(wid % num_dirs, wid, i)
                op = client.create(path, exclusive=False)
                nxt = path
            else:
                op = client.getattr(last)
                nxt = last
            start = env.now
            ok = True
            try:
                yield from op
            except RpcFailure:
                ok = False
            records.append((start, env.now, ok, creating))
            if creating and ok:
                acked_creates.append(path)
            last = nxt
            i += 1

    workers = [env.process(worker(w)) for w in range(threads)]
    env.run(until=env.all_of(workers))
    cluster.heal()  # restarts the crashed machine (rejoins as follower)
    cluster.run_for(20000.0)  # drain: catch-up, invalidations

    log = cluster.coordinator.failover_log
    recoveries = [r for r in log if not r.get("suppressed")
                  and not r.get("deferred")]
    if not recoveries:
        raise RuntimeError("the slot never recovered (run too short?)")
    recovery = recoveries[0]
    if consensus and not recovery.get("elected"):
        raise AssertionError(
            "consensus mode recovered by ordained promotion: {!r}"
            .format(recovery))
    detection = cluster.detector.log

    # Every acknowledged create must still resolve after healing.
    lost_acked = 0
    probe = cluster.add_client(mode="libfs")

    def sweep():
        nonlocal lost_acked
        for path in acked_creates:
            try:
                yield from probe.getattr(path)
            except RpcFailure:
                lost_acked += 1

    cluster.run_process(sweep())
    if consensus and lost_acked:
        raise AssertionError(
            "{} quorum-acknowledged creates vanished across the "
            "election — an ack without a surviving majority record"
            .format(lost_acked))

    recovered_at = recovery["recovered_at"]
    phases = {
        "before": [r for r in records if r[1] < crash_at],
        "during": [r for r in records
                   if r[1] >= crash_at and r[0] <= recovered_at],
        "after": [r for r in records if r[0] > recovered_at],
    }
    overlapping = [end - start for start, end, _, _ in records
                   if start <= crash_at <= end]
    return {
        "mode": mode,
        "victim": victim,
        "crash_at_us": crash_at,
        "detect_us": (detection[0]["declared_at"] - crash_at
                      if detection else None),
        "gap_us": recovered_at - crash_at,
        "max_stall_us": max(overlapping) if overlapping else 0.0,
        "lost_txns": recovery["lost_txns"],
        "lost_acked": lost_acked,
        "acked": len(acked_creates),
        "elections": sum(1 for r in log if r.get("elected")),
        "promotions": sum(1 for r in log
                          if r.get("promoted") and not r.get("elected")
                          and not r.get("suppressed")),
        "phases": phases,
        "cluster": cluster,
    }


def _point_row(task):
    """One recovery-regime sweep point → its pure, picklable row
    (module-level so the shared ``--jobs`` pool can ship it; the serial
    path calls the same function, keeping output identical)."""
    mode, kwargs = task
    result = measure(mode=mode, **kwargs)
    before = [e - s for s, e, _, creating
              in result["phases"]["before"] if creating]
    during = result["phases"]["during"]
    errors = sum(1 for _, _, ok, _ in during if not ok)
    return {
        "mode": mode,
        "commit_p50_us": percentile(before, 50) if before else 0.0,
        "commit_p99_us": percentile(before, 99) if before else 0.0,
        "detect_us": (round(result["detect_us"], 1)
                      if result["detect_us"] is not None else "-"),
        "gap_us": round(result["gap_us"], 1),
        "max_stall_us": round(result["max_stall_us"], 1),
        "errs_during": errors,
        "acked": result["acked"],
        "lost_acked": result["lost_acked"],
        "lost_txns": result["lost_txns"],
        "elections": result["elections"],
        "promotions": result["promotions"],
    }


def run(modes=("promotion", "consensus"), jobs=1, **kwargs):
    from repro.experiments.common import parallel_map

    return parallel_map([(mode, kwargs) for mode in modes], _point_row,
                        jobs=jobs)


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["mode", "commit_p50_us", "commit_p99_us", "detect_us", "gap_us",
         "max_stall_us", "errs_during", "acked", "lost_acked",
         "lost_txns", "elections", "promotions"],
        title="Leader crash: quorum election vs ordained promotion "
              "(lost_acked asserted 0 under consensus)",
    )
