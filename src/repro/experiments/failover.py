"""MNode crash + standby promotion: availability and the lost window.

Not a paper figure — the paper's MNodes inherit PostgreSQL
primary-standby replication (§4.3) but its evaluation never kills one.
This experiment does: a seeded fault schedule crashes one MNode
mid-workload, the coordinator's heartbeat detector declares it dead,
promotes its standby into the cluster directory, and clients retry
transparently onto the replacement.  Reported:

* client op latency (p50/p99) before, during and after the failover,
  plus the worst single-op stall;
* the failover timeline: crash -> detection -> promotion -> repaired;
* the lost-unshipped-transaction window — committed transactions the
  asynchronous shipper had not replicated at the crash (equal to the
  replication lag at that instant);
* the recovered cluster's ``verify`` invariants (placement, replica
  coherence, reachability, statistics).

Everything is deterministic: the same seed yields the same crash time,
victim, gap and lost window.
"""

from repro.core import FalconCluster, FalconConfig
from repro.faults import FaultInjector
from repro.metrics import percentile
from repro.net.rpc import RpcFailure


def measure(num_mnodes=4, num_storage=2, threads=12, num_dirs=4,
            duration_us=30000.0, warm_us=8000.0, rpc_timeout_us=400.0,
            seed=0):
    """Run one crash-and-recover scenario; returns a result dict."""
    cluster = FalconCluster(FalconConfig(
        num_mnodes=num_mnodes, num_storage=num_storage, replication=True,
        rpc_timeout_us=rpc_timeout_us, seed=seed,
    ))
    env = cluster.env
    fs = cluster.fs()
    for d in range(num_dirs):
        fs.mkdir("/w{}".format(d))
    cluster.run_for(5000.0)  # drain setup shipments

    cluster.start_failure_detection()
    injector = FaultInjector(cluster)
    crash_at = env.now + warm_us
    victim = injector.crash_mnode_at(crash_at)

    client = cluster.add_client(mode="libfs")
    end_at = env.now + duration_us
    records = []

    def worker(wid):
        i = 0
        last = None
        while env.now < end_at:
            if last is None or i % 2 == 0:
                path = "/w{}/f{}-{}".format(wid % num_dirs, wid, i)
                op = client.create(path, exclusive=False)
                nxt = path
            else:
                op = client.getattr(last)
                nxt = last
            start = env.now
            ok = True
            try:
                yield from op
            except RpcFailure:
                ok = False
            records.append((start, env.now, ok))
            last = nxt
            i += 1

    workers = [env.process(worker(w)) for w in range(threads)]
    env.run(until=env.all_of(workers))
    cluster.detector.stop()
    cluster.run_for(20000.0)  # quiesce: shipments, invalidations

    if not cluster.coordinator.failover_log:
        raise RuntimeError("failover never completed (run too short?)")
    failover = cluster.coordinator.failover_log[0]
    detection = cluster.detector.log[0]
    crash = cluster.crash_log[0]
    verify = cluster.verify()

    phases = {
        "before": [r for r in records if r[1] < crash_at],
        "during": [
            r for r in records
            if r[1] >= crash_at and r[0] <= failover["recovered_at"]
        ],
        "after": [r for r in records if r[0] > failover["recovered_at"]],
    }
    windows = {
        "before": crash_at - (end_at - duration_us),
        "during": failover["recovered_at"] - crash_at,
        "after": end_at - failover["recovered_at"],
    }
    overlapping = [
        end - start for start, end, _ in records
        if start <= crash_at <= end
    ]
    return {
        "phases": phases,
        "windows": windows,
        "victim": victim,
        "crash_at_us": crash["at"],
        "lag_at_crash": crash["lag_at_crash"],
        "detection_us": detection["declared_at"] - crash["at"],
        "gap_us": failover["recovered_at"] - crash["at"],
        "max_stall_us": max(overlapping) if overlapping else 0.0,
        "lost_txns": failover["lost_txns"],
        "orphans_removed": failover["orphans_removed"],
        "verify": "ok ({} inodes)".format(verify["inodes"]),
        "cluster": cluster,
    }


def run(**kwargs):
    result = measure(**kwargs)
    rows = []
    for phase in ("before", "during", "after"):
        latencies = [end - start for start, end, _ in result["phases"][phase]]
        errors = sum(1 for _, _, ok in result["phases"][phase] if not ok)
        rows.append({
            "kind": "phase",
            "phase": phase,
            "window_us": result["windows"][phase],
            "ops": len(latencies),
            "errors": errors,
            "p50_us": percentile(latencies, 50) if latencies else 0.0,
            "p99_us": percentile(latencies, 99) if latencies else 0.0,
        })
    rows.append({
        "kind": "failover",
        "victim": "mnode-{}".format(result["victim"]),
        "crash_at_us": result["crash_at_us"],
        "detection_us": result["detection_us"],
        "gap_us": result["gap_us"],
        "max_stall_us": result["max_stall_us"],
        "lost_txns": result["lost_txns"],
        "orphans_removed": result["orphans_removed"],
        "verify": result["verify"],
    })
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    phase_rows = [r for r in rows if r.get("kind") == "phase"]
    failover_rows = [r for r in rows if r.get("kind") == "failover"]
    out = format_table(
        phase_rows,
        ["phase", "window_us", "ops", "errors", "p50_us", "p99_us"],
        title="Client ops through an MNode crash",
    )
    out += "\n\n" + format_table(
        failover_rows,
        ["victim", "crash_at_us", "detection_us", "gap_us", "max_stall_us",
         "lost_txns", "orphans_removed", "verify"],
        title="Failover timeline (crash -> detect -> promote -> repair)",
    )
    return out
