"""Fig 10 — throughput and scalability of metadata operations.

Measures peak throughput of create / unlink / getattr / mkdir / rmdir for
each system while scaling the number of metadata servers, in the paper's
best-case setup: every client thread works in its own private directory
and (for stateful clients) all directory lookups hit the client cache.
FalconFS is driven through the LibFS interface, as in §6.2.
"""

import random

from repro.experiments.common import SYSTEMS, add_workload_client, build_cluster
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import private_dirs_tree

OPS = ("create", "unlink", "getattr", "mkdir", "rmdir")


def _setup(system, num_servers, seed):
    cluster = build_cluster(system, num_mnodes=num_servers, num_storage=4,
                            seed=seed)
    client = add_workload_client(cluster, system, mode="libfs")
    return cluster, client


def _thunks(cluster, client, system, op, num_ops, num_dirs, seed):
    """Prepare state and return the operation thunks."""
    rng = random.Random(seed)
    if op in ("create", "mkdir"):
        tree = private_dirs_tree(num_dirs, files_per_dir=0)
        path_ino = cluster.bulk_load(tree)
        _warm(cluster, client, system, tree, path_ino)
        if op == "create":
            paths = [
                "{}/n{:08d}.dat".format(tree.dirs[1 + i % num_dirs], i)
                for i in range(num_ops)
            ]
            return [lambda p=p: client.create(p) for p in paths]
        paths = [
            "{}/sub{:08d}".format(tree.dirs[1 + i % num_dirs], i)
            for i in range(num_ops)
        ]
        return [lambda p=p: client.mkdir(p) for p in paths]
    if op in ("unlink", "getattr"):
        tree = private_dirs_tree(
            num_dirs, files_per_dir=(num_ops + num_dirs - 1) // num_dirs
        )
        path_ino = cluster.bulk_load(tree)
        _warm(cluster, client, system, tree, path_ino)
        paths = tree.file_paths()[:num_ops]
        if op == "getattr":
            rng.shuffle(paths)
            return [lambda p=p: client.getattr(p) for p in paths]
        return [lambda p=p: client.unlink(p) for p in paths]
    if op == "rmdir":
        tree = private_dirs_tree(num_dirs, files_per_dir=0)
        parents = tree.dirs[1:]
        targets = []
        for parent in parents:
            for i in range((num_ops + num_dirs - 1) // num_dirs):
                path = "{}/victim{:06d}".format(parent, i)
                tree.add_dir(path)
                targets.append(path)
        path_ino = cluster.bulk_load(tree)
        _warm(cluster, client, system, tree, path_ino)
        targets = targets[:num_ops]
        return [lambda p=p: client.rmdir(p) for p in targets]
    raise ValueError("unknown op {!r}".format(op))


def _warm(cluster, client, system, tree, path_ino):
    if system != "falconfs":
        cluster.prefill_client_cache(client, tree, path_ino)


def measure(system, num_servers, op, num_ops=1500, threads=128, seed=0):
    """Peak throughput (ops/s) for one (system, servers, op) cell."""
    cluster, client = _setup(system, num_servers, seed)
    thunks = _thunks(cluster, client, system, op, num_ops,
                     num_dirs=threads, seed=seed)
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    return result


def run(systems=SYSTEMS, servers=(4, 8, 16), ops=OPS,
        num_ops=1500, threads=128, seed=0):
    """Produce Fig 10's series: rows of (op, system, servers, kops/s)."""
    rows = []
    for op in ops:
        for system in systems:
            for count in servers:
                result = measure(system, count, op, num_ops, threads, seed)
                rows.append({
                    "op": op,
                    "system": system,
                    "servers": count,
                    "kops_per_sec": result.ops_per_sec / 1e3,
                    "errors": result.errors,
                })
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows, ["op", "system", "servers", "kops_per_sec", "errors"],
        title="Fig 10: metadata operation throughput (kops/s)",
    )
