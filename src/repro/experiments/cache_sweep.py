"""Fig 2 — CephFS random traversal vs client metadata cache size.

The motivating experiment of §2.3: replaying a training-style random
traversal against CephFS while sweeping the client cache from 10 % to
100 % of the directory working set.  Reported per point: read throughput
and the number of requests sent to the MDSs (lookups + close), which is
the request-amplification curve of Fig 2.
"""

from repro.experiments import memory_budget


def run(budgets=(0.1, 0.25, 0.5, 0.75, 1.0), **kwargs):
    rows = []
    for budget in budgets:
        cell = memory_budget.measure("cephfs", budget, **kwargs)
        requests = cell["requests"]
        rows.append({
            "budget_pct": cell["budget_pct"],
            "files_per_sec": cell["files_per_sec"],
            "lookups_per_open": (
                requests.get("lookup", 0)
                / max(1, requests.get("close", 1))
            ),
            "mds_requests": sum(requests.values()),
        })
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["budget_pct", "files_per_sec", "lookups_per_open", "mds_requests"],
        title="Fig 2: CephFS traversal vs client cache size",
    )
