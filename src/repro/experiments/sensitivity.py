"""Sensitivity sweeps over FalconFS's own design parameters.

Beyond the paper's ablation (Fig 15a), DESIGN.md calls out the design
choices worth sweeping:

* **merge window** (``merge_linger_us``) — the throughput/latency trade
  behind Fig 11's discussion: a longer accumulation window grows batches
  (better amortization) but inflates per-op latency;
* **maximum batch size** (``max_batch``) — how much coalescing helps
  before it saturates;
* **load-balance epsilon** — tighter bounds need more exception-table
  entries (§4.2.2's size/quality trade).
"""

from repro.core import FalconCluster, FalconConfig
from repro.workloads.driver import measure_latency, run_closed_loop
from repro.workloads.trees import TreeSpec, private_dirs_tree


def _merge_linger_row(task):
    """One merge-window grid point → its row (module-level so the
    shared ``--jobs`` pool can ship it to a worker)."""
    linger, num_ops, threads, seed = task
    config = FalconConfig(num_mnodes=4, num_storage=4,
                          merge_linger_us=linger, seed=seed)
    cluster = FalconCluster(config)
    client = cluster.add_client(mode="libfs")
    tree = private_dirs_tree(threads, files_per_dir=0)
    cluster.bulk_load(tree)
    paths = [
        "{}/f{:06d}".format(tree.dirs[1 + i % threads], i)
        for i in range(num_ops)
    ]
    result = run_closed_loop(
        cluster, [lambda p=p: client.create(p) for p in paths],
        num_threads=threads,
    )
    # Latency probe on a fresh cluster with one thread.
    lat_cluster = FalconCluster(FalconConfig(
        num_mnodes=4, num_storage=4, merge_linger_us=linger, seed=seed,
    ))
    lat_client = lat_cluster.add_client(mode="libfs")
    lat_tree = private_dirs_tree(4, files_per_dir=0)
    lat_cluster.bulk_load(lat_tree)
    latency = measure_latency(lat_cluster, [
        lambda i=i: lat_client.create("/bench/t0000/l{:04d}".format(i))
        for i in range(100)
    ])
    batch = sum(
        m.pool.average_batch_size for m in cluster.mnodes
    ) / len(cluster.mnodes)
    return {
        "param": "merge_linger_us",
        "value": linger,
        "create_per_sec": result.ops_per_sec,
        "mean_latency_us": latency.mean_us,
        "avg_batch": batch,
    }


def _max_batch_row(task):
    """One batch-cap grid point → its row."""
    max_batch, num_ops, threads, seed = task
    config = FalconConfig(num_mnodes=4, num_storage=4,
                          max_batch=max_batch, seed=seed)
    cluster = FalconCluster(config)
    client = cluster.add_client(mode="libfs")
    tree = private_dirs_tree(threads, files_per_dir=0)
    cluster.bulk_load(tree)
    paths = [
        "{}/f{:06d}".format(tree.dirs[1 + i % threads], i)
        for i in range(num_ops)
    ]
    result = run_closed_loop(
        cluster, [lambda p=p: client.create(p) for p in paths],
        num_threads=threads,
    )
    wal = sum(m.wal.records_per_flush for m in cluster.mnodes) / 4
    return {
        "param": "max_batch",
        "value": max_batch,
        "create_per_sec": result.ops_per_sec,
        "wal_records_per_flush": wal,
    }


def _epsilon_row(task):
    """One balance-epsilon grid point → its row."""
    epsilon, num_dirs, seed = task
    cluster = FalconCluster(FalconConfig(
        num_mnodes=8, num_storage=2, epsilon=epsilon, seed=seed,
    ))
    tree = TreeSpec("hot")
    tree.add_dir("/data")
    serial = 0
    for d in range(num_dirs):
        directory = tree.add_dir("/data/d{:03d}".format(d))
        for hot in ("hot.dat", "warm.dat"):
            tree.add_file("{}/{}".format(directory, hot), 0)
        for _ in range(2):
            tree.add_file(
                "{}/u{:06d}.dat".format(directory, serial), 0
            )
            serial += 1
    cluster.bulk_load(tree)
    cluster.rebalance()
    counts = cluster.inode_distribution()
    return {
        "param": "epsilon",
        "value": epsilon,
        "table_entries": len(cluster.exception_table),
        "max_share_pct": 100 * max(counts) / sum(counts),
    }


#: Dispatch table so one task list (and one shared pool) covers the
#: whole grid; tasks are ("sweep-name", point-args) pairs.
_POINT_FNS = {
    "merge_linger": _merge_linger_row,
    "max_batch": _max_batch_row,
    "epsilon": _epsilon_row,
}


def _point_row(task):
    name, args = task
    return _POINT_FNS[name](args)


def sweep_merge_linger(lingers=(0.0, 4.0, 16.0, 64.0), num_ops=1500,
                       threads=256, seed=0, jobs=1):
    """Throughput and mean latency of create as the window grows."""
    from repro.experiments.common import parallel_map

    return parallel_map(
        [(linger, num_ops, threads, seed) for linger in lingers],
        _merge_linger_row, jobs=jobs)


def sweep_max_batch(batches=(1, 4, 16, 64), num_ops=1500, threads=256,
                    seed=0, jobs=1):
    """Throughput of create as the batch cap grows."""
    from repro.experiments.common import parallel_map

    return parallel_map(
        [(max_batch, num_ops, threads, seed) for max_batch in batches],
        _max_batch_row, jobs=jobs)


def sweep_epsilon(epsilons=(0.005, 0.02, 0.08), num_dirs=120, seed=0,
                  jobs=1):
    """Exception-table size vs the balance bound tightness."""
    from repro.experiments.common import parallel_map

    return parallel_map(
        [(epsilon, num_dirs, seed) for epsilon in epsilons],
        _epsilon_row, jobs=jobs)


def run(num_ops=1500, threads=256, seed=0, jobs=1):
    from repro.experiments.common import parallel_map

    # One combined grid so every point shares the same pool — a short
    # sweep never leaves workers idle while another sweep queues.
    tasks = [("merge_linger", (linger, num_ops, threads, seed))
             for linger in (0.0, 4.0, 16.0, 64.0)]
    tasks.extend(("max_batch", (batch, num_ops, threads, seed))
                 for batch in (1, 4, 16, 64))
    tasks.extend(("epsilon", (epsilon, 120, seed))
                 for epsilon in (0.005, 0.02, 0.08))
    return parallel_map(tasks, _point_row, jobs=jobs)


def format_rows(rows):
    from repro.experiments.common import format_table

    columns = sorted({key for row in rows for key in row},
                     key=lambda k: (k not in ("param", "value"), k))
    return format_table(rows, columns,
                        title="Design-parameter sensitivity sweeps")
