"""Elastic namespace: scale-out with online slot rebalancing.

Not a paper figure — the paper's evaluation fixes the MNode count and
relies on hybrid indexing for static balance (Tab. 3).  This experiment
exercises the elastic half: a cluster under live client traffic grows
from 4 to 32 MNodes in doubling stages; after every stage the
coordinator's rebalancer migrates hot directory slots onto the empty
newcomers while clients keep writing and reading through the handoffs
(stale slot maps are patched lazily from ``EMOVED`` bounces).  Reported:

* per-stage timeline: node count, slots moved, slot-map epoch, and the
  inode load spread (max/mean per node) before and after rebalancing;
* client op latency (p50/p99) and error counts per stage — handoffs
  fence writers for the delta-drain instant only, so traffic continues
  throughout;
* the zero-loss audit: every create acknowledged at ANY point — before,
  during or after any migration — must still be readable at the end.
  A single lost ack raises; migration has no excusal window;
* the final cluster's ``verify`` invariants (placement against the
  migrated slot map, coherence, reachability, statistics).

Everything is deterministic: the same seed yields the same traffic,
the same migration plan and the same final distribution.
"""

from repro.core import FalconCluster, FalconConfig
from repro.metrics import percentile
from repro.net.rpc import RpcFailure


def _distribution(cluster):
    """Per-node inode counts (authoritative tables, primaries only)."""
    return [sum(1 for _ in node.inodes.scan()) for node in cluster.mnodes]


def _spread(counts):
    """max/mean load ratio; 1.0 is perfect balance."""
    mean = sum(counts) / len(counts) if counts else 0.0
    return (max(counts) / mean) if mean else 0.0


def measure(start_mnodes=4, end_mnodes=32, num_slots=64, num_storage=4,
            threads=8, num_dirs=8, stage_us=20000.0,
            rpc_timeout_us=400.0, seed=0):
    """Grow ``start_mnodes`` -> ``end_mnodes`` under live traffic;
    returns a result dict.  Raises if any acked create is lost."""
    config = FalconConfig(
        num_mnodes=start_mnodes, num_storage=num_storage,
        replication=True, rpc_timeout_us=rpc_timeout_us,
        num_slots=num_slots, seed=seed,
    )
    cluster = FalconCluster(config)
    env = cluster.env
    coordinator = cluster.coordinator
    fs = cluster.fs()
    for d in range(num_dirs):
        fs.mkdir("/w{}".format(d))
    cluster.run_for(5000.0)  # drain setup shipments

    client = cluster.add_client(mode="libfs")
    acked = []              # paths whose create was acknowledged OK
    records = []            # (start_us, end_us, ok, stage_index)
    state = {"stop": False, "stage": 0}

    def worker(wid):
        i = 0
        while not state["stop"]:
            path = "/w{}/f{}-{}".format(wid % num_dirs, wid, i)
            start = env.now
            try:
                yield from client.create(path, exclusive=False)
            except RpcFailure:
                records.append((start, env.now, False, state["stage"]))
            else:
                acked.append(path)
                records.append((start, env.now, True, state["stage"]))
            i += 1
            yield env.timeout(40.0 + 10.0 * (wid % 4))

    workers = [env.process(worker(w)) for w in range(threads)]

    # Doubling stages: 4 -> 8 -> 16 -> 32 (or whatever end_mnodes is).
    targets = []
    n = start_mnodes
    while n < end_mnodes:
        n = min(n * 2, end_mnodes)
        targets.append(n)

    stages = []
    moved_before = 0
    for target in targets:
        cluster.run_for(stage_us)  # live traffic at the current scale
        pre = _distribution(cluster)
        while len(cluster.mnodes) < target:
            cluster.add_mnode()
        plan = env.process(coordinator.rebalance_slots(
            max_moves=num_slots, reason="scale-out"))
        env.run(until=plan)
        cluster.run_for(3000.0)  # drain purges and shipments
        post = _distribution(cluster)
        moved_total = len(coordinator.migration_log)
        stage_records = [r for r in records if r[3] == state["stage"]]
        latencies = [end - start for start, end, ok, _ in stage_records]
        stages.append({
            "nodes": target,
            "moves": moved_total - moved_before,
            "epoch": cluster.shared.slot_map.epoch,
            "spread_before": _spread(pre),
            "spread_after": _spread(post),
            "ops": len(stage_records),
            "errors": sum(1 for _, _, ok, _ in stage_records if not ok),
            "p50_us": percentile(latencies, 50) if latencies else 0.0,
            "p99_us": percentile(latencies, 99) if latencies else 0.0,
        })
        moved_before = moved_total
        state["stage"] += 1

    cluster.run_for(stage_us)  # final stage of traffic at full scale
    state["stop"] = True
    env.run(until=env.all_of(workers))
    cluster.run_for(10000.0)  # quiesce: shipments, purges

    # -- zero-loss audit: every acked create must still be readable ----
    reader = cluster.add_client(mode="libfs")
    lost = []

    def audit():
        for path in acked:
            try:
                yield from reader.getattr(path)
            except RpcFailure:
                lost.append(path)

    env.run(until=env.process(audit()))
    if lost:
        raise RuntimeError(
            "{} acked creates lost across {} migrations (first: {})"
            .format(len(lost), len(coordinator.migration_log), lost[0]))

    verify = cluster.verify()
    aborted = sum(1 for r in coordinator.migration_log
                  if r["status"] == "aborted")
    return {
        "stages": stages,
        "acked": len(acked),
        "migrations": len(coordinator.migration_log),
        "aborted": aborted,
        "final_epoch": cluster.shared.slot_map.epoch,
        "final_counts": _distribution(cluster),
        "patches": client.metrics.counter("slot_map_patches").total(),
        "verify": "ok ({} inodes)".format(verify["inodes"]),
        "cluster": cluster,
    }


def run(**kwargs):
    result = measure(**kwargs)
    rows = []
    for stage in result["stages"]:
        row = {"kind": "stage"}
        row.update(stage)
        rows.append(row)
    counts = result["final_counts"]
    rows.append({
        "kind": "summary",
        "nodes": len(counts),
        "migrations": result["migrations"],
        "aborted": result["aborted"],
        "epoch": result["final_epoch"],
        "acked": result["acked"],
        "lost_acked": 0,  # measure() raises on any loss
        "spread": round(_spread(counts), 3),
        "map_patches": result["patches"],
        "verify": result["verify"],
    })
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    stage_rows = [r for r in rows if r.get("kind") == "stage"]
    summary_rows = [r for r in rows if r.get("kind") == "summary"]
    for row in stage_rows:
        row["spread_before"] = round(row["spread_before"], 3)
        row["spread_after"] = round(row["spread_after"], 3)
    out = format_table(
        stage_rows,
        ["nodes", "moves", "epoch", "spread_before", "spread_after",
         "ops", "errors", "p50_us", "p99_us"],
        title="Scale-out stages (live traffic through slot handoffs)",
    )
    out += "\n\n" + format_table(
        summary_rows,
        ["nodes", "migrations", "aborted", "epoch", "acked",
         "lost_acked", "spread", "map_patches", "verify"],
        title="Elastic rebalance summary (zero lost acked ops required)",
    )
    return out
