"""Fig 16 — labeling-task trace replay.

The labeling stage reads raw sensor images and writes segmented results
back (§6.8).  The production trace is not redistributable; the synthetic
trace reproduces its published properties: the Fig 16a file-size mix
(dominated by 64 KiB–1 MiB objects, with tails on both sides) and the
read-one/write-one pipeline structure with same-directory batching.
Runtime is reported normalized to FalconFS, as in Fig 16b.
"""

import random

from repro.experiments.common import (
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import TreeSpec

FIG16_SYSTEMS = ("falconfs", "cephfs", "lustre", "juicefs")

#: Fig 16a's file-size histogram: (upper bound, probability).  Sizes
#: range from a few KiB to a few MiB, mostly within 256 KiB (§2.2).
SIZE_BUCKETS = (
    (16 << 10, 0.15),
    (64 << 10, 0.30),
    (256 << 10, 0.40),
    (1 << 20, 0.12),
    (4 << 20, 0.03),
)


def sample_size(rng):
    """Draw a file size from the Fig 16a distribution."""
    point = rng.random()
    acc = 0.0
    lower = 4 << 10
    for upper, probability in SIZE_BUCKETS:
        acc += probability
        if point <= acc:
            return rng.randrange(lower, upper)
        lower = upper
    return rng.randrange(1 << 20, 4 << 20)


def build_trace(num_tasks=1500, dirs=40, seed=0):
    """Input tree + (read path, write path, write size) trace entries."""
    rng = random.Random(seed)
    tree = TreeSpec("labeling-trace")
    tree.add_dir("/raw")
    tree.add_dir("/out")
    raw_dirs = [
        tree.add_dir("/raw/batch{:04d}".format(i)) for i in range(dirs)
    ]
    out_dirs = [
        tree.add_dir("/out/batch{:04d}".format(i)) for i in range(dirs)
    ]
    entries = []
    for task in range(num_tasks):
        # Labeling processes a batch directory at a time (§2.4's burst
        # pattern): consecutive tasks target the same directory.
        bucket = (task * dirs) // num_tasks
        raw = "{}/frame{:07d}.jpg".format(raw_dirs[bucket], task)
        tree.add_file(raw, sample_size(rng))
        out = "{}/seg{:07d}.png".format(out_dirs[bucket], task)
        entries.append((raw, out, sample_size(rng)))
    return tree, entries


def measure(system, num_tasks=1500, threads=256, num_mnodes=4,
            num_storage=12, seed=0):
    tree, entries = build_trace(num_tasks, seed=seed)
    cluster = build_cluster(system, num_mnodes=num_mnodes,
                            num_storage=num_storage, seed=seed)
    client = add_workload_client(cluster, system, mode="vfs")
    path_ino = cluster.bulk_load(tree)
    if system != "falconfs":
        prefill_dcache(client, tree, path_ino)

    def task(raw, out, out_size):
        yield from client.read_file(raw)
        yield from client.write_file(out, out_size)

    thunks = [
        lambda r=r, o=o, s=s: task(r, o, s) for r, o, s in entries
    ]
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    return {
        "system": system,
        "runtime_s": result.elapsed_us / 1e6,
        "tasks_per_sec": result.ops_per_sec,
        "errors": result.errors,
    }


def run(systems=FIG16_SYSTEMS, **kwargs):
    rows = [measure(system, **kwargs) for system in systems]
    falcon = next(
        (r for r in rows if r["system"] == "falconfs"), rows[0]
    )
    for row in rows:
        row["normalized_runtime"] = (
            row["runtime_s"] / falcon["runtime_s"]
            if falcon["runtime_s"] else 0.0
        )
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["system", "runtime_s", "normalized_runtime", "tasks_per_sec"],
        title="Fig 16b: labeling trace replay (runtime normalized to "
              "FalconFS)",
    )


def size_histogram(num_samples=20000, seed=0):
    """Fig 16a: the synthetic trace's file-size distribution."""
    rng = random.Random(seed)
    buckets = {"<16K": 0, "16-64K": 0, "64-256K": 0, "256K-1M": 0,
               ">1M": 0}
    for _ in range(num_samples):
        size = sample_size(rng)
        if size < (16 << 10):
            buckets["<16K"] += 1
        elif size < (64 << 10):
            buckets["16-64K"] += 1
        elif size < (256 << 10):
            buckets["64-256K"] += 1
        elif size < (1 << 20):
            buckets["256K-1M"] += 1
        else:
            buckets[">1M"] += 1
    return {
        name: count / num_samples for name, count in buckets.items()
    }
