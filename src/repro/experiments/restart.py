"""Crash-restart redo recovery: durability matrix and rejoin convergence.

Not a paper figure — the paper's MNodes inherit PostgreSQL durability
(WAL + redo) but its evaluation never power-cycles one.  This experiment
does, under a seeded fault schedule, in two modes:

* **resume** — the node restarts before the heartbeat detector finishes
  declaring it dead: redo replays the durable WAL, the node re-registers
  under its own slot (any in-flight promotion is suppressed), reconciles
  log shipping with its standby, and serves again as primary;
* **rejoin** — the restart loses the race: a promoted standby already
  owns the slot, so the recovered machine rejoins as a fresh standby and
  catches up via snapshot + log-shipping delta.

Reported per (mode, seed): the durability matrix at the crash instant
(transactions appended / fsynced / torn-or-unwritten, plus the shipped-
but-unapplied replication lag), recovery time against WAL length, the
lost windows of both strategies — restart loses only the unfsynced
tail, promotion additionally loses the fsynced-but-unshipped window, so
lost(restart) <= lost(promotion) always — a redo-correctness check
(every durable transaction's inode is present on the recovered node),
and post-drain primary/standby divergence (zero = converged).

Everything is deterministic: the same seed yields the same crash time,
victim, WAL contents, torn tail and recovery outcome.
"""

from repro.core import FalconCluster, FalconConfig
from repro.faults import FaultInjector
from repro.net.rpc import RpcFailure
from repro.storage.replication import divergence

#: Restart delays (us after the crash) that decide the race against the
#: detector: well inside the detection window resumes as primary, well
#: past promotion rejoins as standby.
MODE_DELAYS = {"resume": 800.0, "rejoin": 6000.0}


def measure(mode="resume", num_mnodes=3, num_storage=2, threads=8,
            num_dirs=3, duration_us=24000.0, warm_us=6000.0,
            restart_delay_us=None, rpc_timeout_us=400.0, seed=0):
    """Run one crash-restart scenario; returns a result dict."""
    if restart_delay_us is None:
        restart_delay_us = MODE_DELAYS[mode]
    cluster = FalconCluster(FalconConfig(
        num_mnodes=num_mnodes, num_storage=num_storage, replication=True,
        rpc_timeout_us=rpc_timeout_us, seed=seed,
    ))
    env = cluster.env
    fs = cluster.fs()
    for d in range(num_dirs):
        fs.mkdir("/w{}".format(d))
    cluster.run_for(5000.0)  # drain setup shipments

    cluster.start_failure_detection()
    injector = FaultInjector(cluster)
    crash_at = env.now + warm_us
    victim = injector.crash_mnode_at(crash_at)

    # The check below must run in the same event as restart completion,
    # before post-restart traffic lands, so drive the restart ourselves
    # rather than through injector.restart_mnode_at.
    outcome = {}

    def restart():
        delay = crash_at + restart_delay_us - env.now
        if delay > 0:
            yield env.timeout(delay)
        outcome["restart"] = yield from cluster.restart_mnode(victim)
        replayed, _ = cluster.retired_mnodes[0].wal.replay()
        outcome["redo_reference"] = replayed
        if outcome["restart"]["role"] == "primary":
            # Redo correctness: every durable transaction's inode writes
            # are present on the recovered node (compared by ino, which
            # is stable under the concurrent create workload).
            node = cluster.mnodes[victim]
            missing = 0
            for _, payload in replayed:
                for table_name, key, value in payload or ():
                    if table_name != "inode" or value is None:
                        continue
                    mine = node.inodes.get(key)
                    if mine is None or mine.ino != value.ino:
                        missing += 1
            outcome["redo_missing"] = missing

    env.process(restart())

    client = cluster.add_client(mode="libfs")
    end_at = env.now + duration_us
    records = []

    def worker(wid):
        i = 0
        while env.now < end_at:
            path = "/w{}/f{}-{}".format(wid % num_dirs, wid, i)
            start = env.now
            ok = True
            try:
                yield from client.create(path, exclusive=False)
            except RpcFailure:
                ok = False
            records.append((start, env.now, ok))
            i += 1

    workers = [env.process(worker(w)) for w in range(threads)]
    env.run(until=env.all_of(workers))
    cluster.detector.stop()
    cluster.run_for(20000.0)  # quiesce: shipments, acks, invalidations

    if "restart" not in outcome:
        raise RuntimeError("restart never completed (run too short?)")
    restarted = outcome["restart"]
    crash = cluster.crash_log[0]
    old = cluster.retired_mnodes[0]

    # Durability matrix at the crash instant, frozen in the dead node.
    appended = old.wal.appended_txns
    durable = old.wal.durable_lsn
    restart_loss = appended - restarted["replayed_txns"]
    suppressed = sum(
        1 for r in cluster.coordinator.failover_log if r.get("suppressed")
    )
    promoted = [
        r for r in cluster.coordinator.failover_log
        if not r.get("suppressed")
    ]
    # Promotion loses the unfsynced tail too (it was never shipped), on
    # top of the fsynced-but-unapplied replication lag.
    promotion_loss = (appended - durable) + crash["lag_at_crash"]

    pairs = [
        (m, s) for m, s in zip(cluster.mnodes, cluster.standbys)
        if s is not None
    ]
    diverged = sum(len(divergence(m, s)) for m, s in pairs)
    errors = sum(1 for _, _, ok in records if not ok)
    return {
        "mode": mode,
        "seed": seed,
        "victim": victim,
        "crash_at_us": crash["at"],
        "role": restarted["role"],
        "recovery_us": restarted["recovery_us"],
        "replayed_txns": restarted["replayed_txns"],
        "torn_records": restarted["torn_records"],
        "appended_txns": appended,
        "durable_txns": durable,
        "unfsynced_txns": appended - durable,
        "lag_at_crash": crash["lag_at_crash"],
        "restart_loss": restart_loss,
        "promotion_loss": promotion_loss,
        "suppressed_failovers": suppressed,
        "promotions": len(promoted),
        "redo_missing": outcome.get("redo_missing", 0),
        "divergence": diverged,
        "ops": len(records),
        "errors": errors,
        "cluster": cluster,
    }


def run(modes=("resume", "rejoin"), seeds=(0, 1, 2), **kwargs):
    rows = []
    for mode in modes:
        for seed in seeds:
            result = measure(mode=mode, seed=seed, **kwargs)
            if result["restart_loss"] > result["promotion_loss"]:
                raise RuntimeError(
                    "restart lost more than promotion would have "
                    "({} > {})".format(result["restart_loss"],
                                       result["promotion_loss"])
                )
            if result["redo_missing"]:
                raise RuntimeError(
                    "redo recovery lost {} durable inode writes".format(
                        result["redo_missing"])
                )
            if result["divergence"]:
                raise RuntimeError(
                    "primary/standby diverged after drain ({} keys)".format(
                        result["divergence"])
                )
            rows.append({
                key: result[key]
                for key in ("mode", "seed", "role", "recovery_us",
                            "appended_txns", "durable_txns",
                            "unfsynced_txns", "lag_at_crash",
                            "replayed_txns", "torn_records",
                            "restart_loss", "promotion_loss",
                            "suppressed_failovers", "promotions",
                            "divergence", "ops", "errors")
            })
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["mode", "seed", "role", "recovery_us", "appended_txns",
         "durable_txns", "unfsynced_txns", "lag_at_crash", "replayed_txns",
         "torn_records", "restart_loss", "promotion_loss",
         "suppressed_failovers", "promotions", "divergence", "ops",
         "errors"],
        title="Crash-restart redo recovery "
              "(restart_loss <= promotion_loss by construction)",
    )
