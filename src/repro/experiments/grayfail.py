"""Gray failures: slow-not-dead faults under a live workload.

Not a paper figure — the paper's evaluation kills nodes outright, but
production pipelines mostly suffer *gray* failures: a disk that fsyncs
at 40x, a link dropping a third of its packets, a clock a few
milliseconds out, a synchronized cache-refetch storm.  The victim keeps
answering throughout, which is exactly what makes these hard: the
failure detector may rack up misses and declare the slot dead, but the
coordinator finds it reachable and must *suppress* the promotion — a
degraded primary still holds strictly more data than its standby, so
promoting around it would manufacture loss.

This experiment sweeps one gray fault kind across severities and
reports, per severity:

* client op latency (p50/p99) before, during and after the fault
  window, plus error counts;
* the detector's reaction: false-positive declarations (and how fast),
  and the suppressed promotions that resulted;
* replication health after drain: messages lost on the wire, records
  retransmitted by the shipper, and the divergence count between every
  primary/standby pair — asserted zero (the retransmission guarantee).

Two invariants are asserted outright: no *real* promotion ever happens
under a gray fault (suppression), and every primary/standby pair
converges after the window heals (shipper retransmission closes the
gaps seeded packet loss opened).
"""

from repro.core import FalconCluster, FalconConfig
from repro.faults import FaultInjector
from repro.metrics import percentile
from repro.net.rpc import RpcFailure

#: Per-kind severity ladders (the swept knob differs per fault family).
SEVERITIES = {
    "slow_disk": (4.0, 16.0, 48.0),        # fsync slowdown factor
    "degrade_link": (0.05, 0.15, 0.35),    # per-message loss probability
    "skew_clock": (1500.0, 6000.0, 24000.0),  # coordinator offset (us)
    "stampede": (1, 2, 4),                 # storms inside the window
}


def _inject(injector, cluster, kind, severity, at_us, duration_us):
    """Schedule one gray fault window of the given kind/severity."""
    if kind == "slow_disk":
        injector.slow_disk_at(at_us, index=0, duration_us=duration_us,
                              fsync_factor=severity,
                              bandwidth_factor=max(2.0, severity / 4.0),
                              ramp_us=500.0)
    elif kind == "degrade_link":
        injector.degrade_link_at(at_us, cluster.mnodes[0].name,
                                 duration_us, latency_factor=4.0,
                                 loss_prob=severity,
                                 reorder_window_us=120.0,
                                 rng_seed=0xC0FFEE)
    elif kind == "skew_clock":
        injector.skew_clock_at(at_us, cluster.coordinator.name,
                               offset_us=severity, drift_ppm=40000.0,
                               duration_us=duration_us)
    elif kind == "stampede":
        storms = int(severity)
        for i in range(storms):
            injector.stampede_at(at_us + i * (duration_us / storms))
    else:
        raise ValueError("unknown gray fault kind: {!r}".format(kind))


def measure(kind="degrade_link", severity=0.15, num_mnodes=3,
            num_storage=2, threads=8, num_dirs=3, duration_us=30000.0,
            warm_us=8000.0, fault_duration_us=8000.0,
            rpc_timeout_us=400.0, seed=0):
    """Run one gray-fault window under load; returns a result dict."""
    cluster = FalconCluster(FalconConfig(
        num_mnodes=num_mnodes, num_storage=num_storage, replication=True,
        rpc_timeout_us=rpc_timeout_us, retry_jitter=0.25,
        ship_retry_us=1200.0, seed=seed,
    ))
    env = cluster.env
    fs = cluster.fs()
    for d in range(num_dirs):
        fs.mkdir("/w{}".format(d))
    cluster.run_for(5000.0)  # drain setup shipments

    cluster.start_failure_detection()
    injector = FaultInjector(cluster)
    fault_at = env.now + warm_us
    fault_end = fault_at + fault_duration_us
    _inject(injector, cluster, kind, severity, fault_at,
            fault_duration_us)

    client = cluster.add_client(mode="libfs")
    end_at = env.now + duration_us
    records = []

    def worker(wid):
        i = 0
        last = None
        while env.now < end_at:
            if last is None or i % 2 == 0:
                path = "/w{}/f{}-{}".format(wid % num_dirs, wid, i)
                op = client.create(path, exclusive=False)
                nxt = path
            else:
                op = client.getattr(last)
                nxt = last
            start = env.now
            ok = True
            try:
                yield from op
            except RpcFailure:
                ok = False
            records.append((start, env.now, ok))
            last = nxt
            i += 1

    workers = [env.process(worker(w)) for w in range(threads)]
    env.run(until=env.all_of(workers))
    cluster.detector.stop()
    cluster.heal()
    cluster.run_for(20000.0)  # drain: retransmissions, invalidations

    from repro.storage.replication import divergence

    log = cluster.coordinator.failover_log
    real_promotions = [
        r for r in log
        if r.get("promoted") and not r.get("suppressed")
        and not r.get("deferred")
    ]
    if real_promotions:
        raise AssertionError(
            "gray fault triggered a real promotion: {!r} (a degraded "
            "node must be suppressed, not replaced)".format(
                real_promotions[0]))
    diverged = 0
    for mnode, standby in zip(cluster.mnodes, cluster.standbys):
        if standby is not None:
            diverged += len(divergence(mnode, standby))
    if diverged:
        raise AssertionError(
            "{} primary/standby divergences survived the drain — "
            "shipper retransmission failed to close the gap"
            .format(diverged))

    declared = cluster.detector.log
    detect_us = (declared[0]["declared_at"] - fault_at
                 if declared else None)
    resent = sum(m.shipper.resent_records for m in cluster.mnodes
                 if getattr(m, "shipper", None) is not None)
    phases = {
        "before": [r for r in records if r[1] < fault_at],
        "during": [r for r in records
                   if r[1] >= fault_at and r[0] <= fault_end],
        "after": [r for r in records if r[0] > fault_end],
    }
    return {
        "kind": kind,
        "severity": severity,
        "phases": phases,
        "declared": len(declared),
        "detect_us": detect_us,
        "suppressed": sum(1 for r in log if r.get("suppressed")),
        "lost_msgs": cluster.network.lost_count(),
        "resent_records": resent,
        "divergence": diverged,
        "cluster": cluster,
    }


def _point_row(task):
    """One (kind, severity) sweep point → its pure, picklable row.

    Module-level so the shared ``--jobs`` pool can ship it to a worker;
    the serial path calls the identical function, which is what makes
    ``--jobs N`` output byte-identical to ``--jobs 1``.
    """
    kind, severity, kwargs = task
    result = measure(kind=kind, severity=severity, **kwargs)
    during = [e - s for s, e, _ in result["phases"]["during"]]
    after = [e - s for s, e, _ in result["phases"]["after"]]
    errors = sum(1 for _, _, ok in result["phases"]["during"]
                 if not ok)
    return {
        "kind": kind,
        "severity": severity,
        "ops_during": len(during),
        "errors": errors,
        "p50_us": percentile(during, 50) if during else 0.0,
        "p99_us": percentile(during, 99) if during else 0.0,
        "p99_after_us": percentile(after, 99) if after else 0.0,
        "declared": result["declared"],
        "detect_us": (round(result["detect_us"], 1)
                      if result["detect_us"] is not None else "-"),
        "suppressed": result["suppressed"],
        "lost_msgs": result["lost_msgs"],
        "resent": result["resent_records"],
        "diverged": result["divergence"],
    }


def run(kinds=("slow_disk", "degrade_link", "skew_clock", "stampede"),
        severities=None, jobs=1, **kwargs):
    from repro.experiments.common import parallel_map

    tasks = []
    for kind in kinds:
        ladder = (severities[kind] if severities is not None
                  else SEVERITIES[kind])
        tasks.extend((kind, severity, kwargs) for severity in ladder)
    return parallel_map(tasks, _point_row, jobs=jobs)


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["kind", "severity", "ops_during", "errors", "p50_us", "p99_us",
         "p99_after_us", "declared", "detect_us", "suppressed",
         "lost_msgs", "resent", "diverged"],
        title="Client ops through gray fault windows "
              "(degraded, never promoted)",
    )
