"""Straggler sensitivity: one degraded metadata server.

Not a paper figure — an extension probing a consequence of the paper's
placement choice.  Filename hashing spreads every directory across all
MNodes, so a straggling server touches a fraction of *every* workload;
directory-locality placement (CephFS) instead confines the damage to the
directories the slow MDS owns.  The sweep degrades one server's CPU and
reports throughput plus tail latency for both placements, under two
workloads: independent operations (uniform random getattr) and batched
reads (a training-style fetch that waits for its slowest member, where
spreading is a liability).
"""

import random

from repro.experiments.common import (
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.metrics import percentile
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import flat_burst_tree


def _degrade(cluster, system, index, cores):
    servers = cluster.mnodes if system == "falconfs" else cluster.servers
    servers[index].cpu.capacity = cores


def measure(system, straggler_cores=None, workload="independent",
            num_dirs=32, files_per_dir=40, batch_size=16, threads=192,
            num_mnodes=4, seed=0):
    """One cell: throughput and p95 latency with an optional straggler.

    ``straggler_cores=None`` is the healthy baseline; otherwise server 0
    is restricted to that many cores.
    """
    rng = random.Random(seed)
    cluster = build_cluster(system, num_mnodes=num_mnodes, num_storage=4,
                            seed=seed)
    client = add_workload_client(cluster, system, mode="vfs")
    tree = flat_burst_tree(num_dirs, files_per_dir, file_size=0)
    path_ino = cluster.bulk_load(tree)
    if system != "falconfs":
        prefill_dcache(client, tree, path_ino, rng)
    if straggler_cores is not None:
        _degrade(cluster, system, 0, straggler_cores)

    env = cluster.env
    latencies = []
    files = tree.file_paths()
    rng.shuffle(files)

    if workload == "independent":
        def op(path):
            start = env.now
            yield from client.getattr(path)
            latencies.append(env.now - start)

        thunks = [lambda p=p: op(p) for p in files]
    elif workload == "batched":
        batches = [
            files[start:start + batch_size]
            for start in range(0, len(files), batch_size)
        ]

        def batch_op(batch):
            start = env.now
            reads = [env.process(client.getattr(path)) for path in batch]
            yield env.all_of(reads)
            latencies.append(env.now - start)

        thunks = [lambda b=b: batch_op(b) for b in batches]
    else:
        raise ValueError("unknown workload {!r}".format(workload))

    result = run_closed_loop(cluster, thunks, num_threads=threads)
    return {
        "system": system,
        "workload": workload,
        "straggler_cores": straggler_cores or "-",
        "ops_per_sec": result.ops_per_sec,
        "p95_latency_us": percentile(latencies, 95) if latencies else 0.0,
        "errors": result.errors,
    }


def run(systems=("falconfs", "cephfs"), straggler_cores=1,
        workloads=("independent", "batched"), **kwargs):
    rows = []
    for workload in workloads:
        for system in systems:
            healthy = measure(system, None, workload=workload, **kwargs)
            degraded = measure(system, straggler_cores,
                               workload=workload, **kwargs)
            degraded["slowdown"] = (
                healthy["ops_per_sec"] / degraded["ops_per_sec"]
                if degraded["ops_per_sec"] else float("inf")
            )
            healthy["slowdown"] = 1.0
            rows.extend([healthy, degraded])
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["workload", "system", "straggler_cores", "ops_per_sec",
         "p95_latency_us", "slowdown"],
        title="Straggler sensitivity (server 0 degraded)",
    )
