"""Experiment harness: one module per paper table/figure.

Every module exposes ``run(...)`` returning a list of row dicts and
``format_rows(rows)`` rendering them like the paper's table/series.  The
benchmarks under ``benchmarks/`` call these with scaled-down defaults;
pass larger parameters to approach the paper's configuration.

| Paper result | Module |
| --- | --- |
| Fig 2 (CephFS cache sweep) | :mod:`repro.experiments.cache_sweep` |
| Fig 4 (CephFS burst + MDS variance) | :mod:`repro.experiments.burst` |
| Fig 10 (metadata scalability) | :mod:`repro.experiments.metadata_scaling` |
| Fig 11 (metadata latency) | :mod:`repro.experiments.metadata_latency` |
| Fig 12 (small-file IO) | :mod:`repro.experiments.data_path` |
| Fig 13 (memory budget) | :mod:`repro.experiments.memory_budget` |
| Fig 14 (burst IO, all systems) | :mod:`repro.experiments.burst` |
| Table 3 (load balance) | :mod:`repro.experiments.load_balance` |
| Fig 15a (ablation) | :mod:`repro.experiments.ablation` |
| Fig 15b (corner cases) | :mod:`repro.experiments.corner_cases` |
| Fig 16 (labeling trace) | :mod:`repro.experiments.labeling` |
| Fig 17 (training AU) | :mod:`repro.experiments.training` |
"""

from repro.experiments.common import SYSTEMS, build_cluster, format_table

__all__ = ["SYSTEMS", "build_cluster", "format_table"]
