"""Fig 4 and Fig 14 — burst file IO.

A burst is a run of accesses to files within the same directory; adjacent
bursts target different directories (§6.5).  A single multi-threaded
client replays the burst sequence from a shared queue, so the number of
distinct in-flight directories shrinks as the burst grows.

Reproduced observations: CephFS (read+write) and Lustre (read) degrade
with burst size because same-directory metadata is co-located on one
MDS/MDT (Fig 4b's load variance); FalconFS spreads a directory's files
over all MNodes by filename hashing and is insensitive; JuiceFS is flat
because its engine is constantly imbalanced either way.
"""

import random

from repro.experiments.common import (
    SYSTEMS,
    add_workload_client,
    build_cluster,
    prefill_dcache,
)
from repro.metrics import coefficient_of_variation
from repro.workloads.driver import run_closed_loop
from repro.workloads.trees import flat_burst_tree


def _burst_order(tree, burst_size, rng):
    """File paths grouped into per-directory bursts, directories shuffled."""
    by_dir = {}
    for path, _ in tree.files:
        directory = path.rsplit("/", 1)[0]
        by_dir.setdefault(directory, []).append(path)
    dirs = sorted(by_dir)
    rng.shuffle(dirs)
    order = []
    for directory in dirs:
        files = by_dir[directory]
        order.extend(
            files[start:start + burst_size]
            for start in range(0, len(files), burst_size)
        )
    rng.shuffle(order)
    return [path for burst in order for path in burst]


def measure(system, burst_size, op="read", num_dirs=48, files_per_dir=100,
            file_size=64 * 1024, threads=256, num_mnodes=4, num_storage=12,
            seed=0):
    """One (system, burst size, op) cell; also reports server load CV."""
    rng = random.Random(seed)
    cluster = build_cluster(system, num_mnodes=num_mnodes,
                            num_storage=num_storage, seed=seed)
    client = add_workload_client(cluster, system, mode="vfs")
    tree = flat_burst_tree(num_dirs, files_per_dir, file_size)
    if op == "read":
        path_ino = cluster.bulk_load(tree)
        if system != "falconfs":
            prefill_dcache(client, tree, path_ino, rng)
        order = _burst_order(tree, burst_size, rng)
        thunks = [lambda p=p: client.read_file(p) for p in order]
    else:
        dirs_only = flat_burst_tree(num_dirs, 0)
        path_ino = cluster.bulk_load(dirs_only)
        if system != "falconfs":
            prefill_dcache(client, dirs_only, path_ino, rng)
        order = _burst_order(tree, burst_size, rng)
        thunks = [
            lambda p=p: client.write_file(p, file_size) for p in order
        ]
    servers = (cluster.mnodes if system == "falconfs" else cluster.servers)
    window_cvs = []
    _start_load_sampler(cluster, servers, window_cvs, interval_us=300.0)
    result = run_closed_loop(cluster, thunks, num_threads=threads)
    return {
        "system": system,
        "op": op,
        "burst": burst_size,
        "files_per_sec": result.ops_per_sec,
        "gib_per_sec": result.ops_per_sec * file_size / (1 << 30),
        "server_load_cv": (sum(window_cvs) / len(window_cvs)
                           if window_cvs else 0.0),
        "errors": result.errors,
    }


def _start_load_sampler(cluster, servers, window_cvs, interval_us):
    """Sample per-window request arrivals per server; Fig 4b reports the
    *instantaneous* imbalance, which aggregate counts would hide."""
    env = cluster.env

    def sampler():
        previous = [0] * len(servers)
        while True:
            yield env.timeout(interval_us)
            current = [
                server.metrics.counter("received").total()
                for server in servers
            ]
            deltas = [c - p for c, p in zip(current, previous)]
            previous = current
            if sum(deltas) >= len(servers):
                window_cvs.append(coefficient_of_variation(deltas))

    env.process(sampler())


def run(systems=SYSTEMS, bursts=(1, 10, 100), ops=("read", "write"),
        **kwargs):
    """Fig 14 (all systems) — pass ``systems=("cephfs",)`` for Fig 4."""
    return [
        measure(system, burst, op=op, **kwargs)
        for op in ops
        for system in systems
        for burst in bursts
    ]


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["op", "system", "burst", "files_per_sec", "server_load_cv",
         "errors"],
        title="Fig 4/14: burst file IO",
    )
