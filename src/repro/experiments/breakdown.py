"""Per-component latency breakdown of metadata and data operations.

A Fig 11 companion: the same single-threaded latency setup, but with the
cluster-wide tracer enabled, so every operation's latency decomposes into
network, queueing, locking, WAL, disk and CPU time.  The FalconFS rows
show where request merging moves time (queue/wal amortized across batch
members); the baseline rows show the per-request journaling and lookup
round trips the paper attributes to stateful-client designs (§2, §6.2).
"""

import random

from repro.analysis.breakdown import breakdown_rows
from repro.experiments.common import add_workload_client, build_cluster
from repro.obs import Tracer
from repro.workloads.trees import private_dirs_tree

#: FalconFS plus one representative baseline by default; pass more
#: systems for the full comparison.
DEFAULT_SYSTEMS = ("falconfs", "cephfs")


def trace_system(system, num_ops=120, file_size=64 << 10, seed=0):
    """Run a small mixed workload under tracing; returns the tracer."""
    tracer = Tracer()
    cluster = build_cluster(system, num_mnodes=4, num_storage=4,
                            seed=seed, tracer=tracer)
    client = add_workload_client(cluster, system, mode="libfs")
    tree = private_dirs_tree(8, files_per_dir=0)
    path_ino = cluster.bulk_load(tree)
    if system != "falconfs":
        cluster.prefill_client_cache(client, tree, path_ino)
    rng = random.Random(seed)
    fs = cluster.fs(client)
    paths = []
    for i in range(num_ops // 4):
        path = "/bench/t{:04d}/f{:06d}.dat".format(i % 8, i)
        fs.write(path, size=file_size)
        paths.append(path)
    for path in rng.sample(paths, len(paths)):
        fs.getattr(path)
    for path in paths:
        fs.read(path)
    for path in paths:
        fs.unlink(path)
    return tracer


def run(systems=DEFAULT_SYSTEMS, num_ops=120, file_size=64 << 10, seed=0):
    rows = []
    for system in systems:
        tracer = trace_system(system, num_ops=num_ops,
                              file_size=file_size, seed=seed)
        for row in breakdown_rows(tracer.spans):
            row = dict(row)
            row["system"] = system
            rows.append(row)
    return rows


def format_rows(rows):
    from repro.experiments.common import format_table

    return format_table(
        rows,
        ["system", "op", "count", "mean_us", "net_us", "queue_us",
         "lock_us", "wal_us", "disk_us", "cpu_us", "retry_us", "other_us"],
        title="Latency breakdown by component (us, mean per op)",
    )
