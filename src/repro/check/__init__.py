"""Deterministic simulation checking for FalconFS.

The checker explores the schedule space the way deterministic-simulation
shops (FoundationDB, TigerBeetle's VOPR) do: a seed expands into a
random workload schedule (concurrent namespace operations across many
clients) interleaved with a nemesis schedule (crashes, restarts, hangs,
partitions, WAL corruption built from :mod:`repro.faults` primitives);
the run records every client-visible acknowledgement into a history; and
an oracle checks that history — plus the healed cluster's final state —
against what a correct filesystem is allowed to do.  Failures shrink
automatically to a minimal reproducer.

Entry points:

* :func:`repro.check.schedule.generate_schedule` — seed -> schedule
* :func:`repro.check.runner.run_schedule` — schedule -> result
* :func:`repro.check.shrink.shrink` — failing schedule -> minimal one
* ``python -m repro.check run --seeds N`` / ``repro <seed-file>`` — CLI
"""

from repro.check.oracle import audit_history
from repro.check.runner import run_schedule
from repro.check.schedule import generate_schedule
from repro.check.shrink import shrink

__all__ = [
    "audit_history",
    "generate_schedule",
    "run_schedule",
    "shrink",
]
