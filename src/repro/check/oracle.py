"""The client-visible oracle: what a correct FalconFS may do.

The oracle audits an acknowledgement **history** (one record per root
client operation: kind, path, start/end time, outcome) against the
healed cluster's **final namespace**, under the failure semantics the
system actually promises:

* an operation acknowledged OK is **definite** — its effect must be
  visible in any later state *unless* it falls inside a promotion's
  **loss window** (asynchronous replication makes a failover lose the
  committed-but-unshipped suffix; PR 2/3 measure exactly this).  Ops on
  a promoted slot acknowledged within the window around the crash/hang
  are downgraded to *maybe*;
* an operation that failed or never completed is **maybe-applied** —
  its effect may or may not be there (a timeout after commit, a retried
  EEXIST against the op's own first attempt, an abort mid-2PC);
* a **read** must be explainable by some serialization of acked
  operations: an OK read needs a possible creator, an ENOENT needs the
  absence of any definite non-lost creator — or a possible remover;
* after healing, the final namespace must contain the latest definite
  effect per path (existence and file/directory type), nothing outside
  the schedule's path universe, and no resurfaced removals.

Paths at depth ≤ 2 under preloaded parent directories keep the slot
attribution exact: the owner of ``(parent_ino, name)`` is known, so
loss windows excuse precisely the ops a promotion could have lost.

Everything here is a pure function of plain data — unit-testable with
synthetic histories, no cluster required.
"""

from repro.vfs.pathwalk import basename, parent_path

#: Op kinds whose success acknowledges a namespace mutation.
CREATE_KINDS = ("create", "write", "mkdir")
READ_KINDS = ("getattr", "read", "readdir")

#: Microseconds before a crash/hang instant within which an acked op may
#: have been committed but not yet shipped to the standby (send latency
#: plus in-flight shipments black-holed by the fault).
SHIP_MARGIN_US = 1200.0


def _violation(invariant, message, **extra):
    record = {"invariant": invariant, "message": message}
    record.update(extra)
    return record


def effects_of(entry):
    """The namespace effects one history entry acknowledges: a list of
    ``(path, action, is_dir)`` with action ``"create"`` or ``"remove"``."""
    kind = entry["kind"]
    if kind in ("create", "write"):
        return [(entry["path"], "create", False)]
    if kind == "mkdir":
        return [(entry["path"], "create", True)]
    if kind == "unlink":
        return [(entry["path"], "remove", False)]
    if kind == "rename":
        return [(entry["src"], "remove", False),
                (entry["dst"], "create", False)]
    return []


def _in_risk_window(slot, end_us, risk_windows):
    if slot is None or end_us is None:
        return False
    for w_slot, lo, hi in risk_windows:
        if w_slot == slot and lo <= end_us <= hi:
            return True
    return False


def audit_history(history, final_paths, preload_dirs, slot_of,
                  risk_windows=(), tainted_slots=()):
    """Audit a run; returns a list of violation dicts (empty = correct).

    ``history``      — entry dicts: op_id, kind, path (src/dst for
                       rename), start_us, end_us (None while pending),
                       status ("ok" | "failed" | "pending").
    ``final_paths``  — healed-cluster namespace: path -> {"is_dir": b}.
    ``preload_dirs`` — paths created durably before the workload began.
    ``slot_of``      — callable path -> owning MNode slot (or None).
    ``risk_windows`` — (slot, lo_us, hi_us) intervals during which acked
                       ops on that slot may have been lost by promotion.
    ``tainted_slots``— slots whose durable state is unaccountable (e.g.
                       corrupted WAL resumed as primary); every op there
                       is excused.
    """
    violations = []
    tainted_slots = set(tainted_slots)

    # Expand the history into per-path effect and read streams.
    effects = {}
    reads = {}
    universe = set(preload_dirs)
    for entry in history:
        for path, action, is_dir in effects_of(entry):
            universe.add(path)
            slot = slot_of(path)
            at_risk = (slot in tainted_slots
                       or _in_risk_window(slot, entry["end_us"],
                                          risk_windows))
            effects.setdefault(path, []).append({
                "op_id": entry["op_id"],
                "action": action,
                "is_dir": is_dir,
                "start_us": entry["start_us"],
                "end_us": entry["end_us"],
                "status": entry["status"],
                "definite": entry["status"] == "ok" and not at_risk,
            })
        if entry["kind"] in READ_KINDS:
            path = entry["path"]
            if entry["kind"] != "readdir":
                universe.add(path)
            slot = slot_of(path)
            excused = (slot in tainted_slots
                       or _in_risk_window(slot, entry["end_us"],
                                          risk_windows))
            reads.setdefault(path, []).append({
                "op_id": entry["op_id"],
                "start_us": entry["start_us"],
                "end_us": entry["end_us"],
                "status": entry["status"],
                "error": entry.get("error"),
                "excused": excused,
            })

    # -- final-state durability per path --------------------------------
    for path in sorted(effects):
        stream = effects[path]
        definite = [e for e in stream if e["definite"]]
        if not definite:
            continue
        last = max(definite, key=lambda e: (e["end_us"], e["op_id"]))
        conflicted = any(
            e is not last
            and e["action"] != last["action"]
            and (e["end_us"] is None or not (
                e["definite"] and e["end_us"] <= last["start_us"]))
            and (e["end_us"] is None or e["end_us"] > last["start_us"]
                 or not e["definite"])
            for e in stream
        )
        if conflicted:
            continue
        final = final_paths.get(path)
        if last["action"] == "create":
            if final is None:
                violations.append(_violation(
                    "durability",
                    "acked {} of {} (op {}) not in the healed namespace"
                    .format("mkdir" if last["is_dir"] else "create",
                            path, last["op_id"]),
                    path=path, op_id=last["op_id"],
                ))
            elif bool(final.get("is_dir")) != last["is_dir"]:
                violations.append(_violation(
                    "type",
                    "{} acked as {} but healed as {}".format(
                        path,
                        "directory" if last["is_dir"] else "file",
                        "directory" if final.get("is_dir") else "file"),
                    path=path, op_id=last["op_id"],
                ))
        else:
            if final is not None:
                violations.append(_violation(
                    "durability",
                    "acked removal of {} (op {}) resurfaced after healing"
                    .format(path, last["op_id"]),
                    path=path, op_id=last["op_id"],
                ))

    # -- preloaded directories are unconditionally durable --------------
    for path in preload_dirs:
        final = final_paths.get(path)
        if final is None or not final.get("is_dir"):
            violations.append(_violation(
                "durability",
                "preloaded directory {} missing or not a directory "
                "after healing".format(path),
                path=path,
            ))

    # -- no phantom paths ----------------------------------------------
    for path in sorted(final_paths):
        if path not in universe:
            violations.append(_violation(
                "phantom",
                "healed namespace contains {} which no schedule op "
                "could have created".format(path),
                path=path,
            ))

    # -- read explainability --------------------------------------------
    for path in sorted(reads):
        stream = effects.get(path, [])
        preloaded = path in preload_dirs
        for read in reads[path]:
            if read["excused"]:
                continue
            if read["status"] == "ok" and not preloaded:
                # An OK read needs at least a possible creator that had
                # started before the read finished.
                creators = [
                    e for e in stream if e["action"] == "create"
                    and (read["end_us"] is None
                         or e["start_us"] < read["end_us"])
                ]
                if not creators:
                    violations.append(_violation(
                        "read",
                        "read of {} (op {}) succeeded but nothing could "
                        "have created it".format(path, read["op_id"]),
                        path=path, op_id=read["op_id"],
                    ))
            if (read["status"] == "failed"
                    and read.get("error") == "ENOENT"
                    and read["end_us"] is not None):
                # ENOENT needs either no definite earlier creator or a
                # possible remover overlapping/preceding the read.
                creators = [
                    e for e in stream
                    if e["action"] == "create" and e["definite"]
                    and e["end_us"] < read["start_us"]
                ]
                if not creators and not preloaded:
                    continue
                creator = (max(creators,
                               key=lambda e: (e["end_us"], e["op_id"]))
                           if creators else None)
                if creator is None and preloaded:
                    # Preloaded dirs cannot be removed by this workload.
                    violations.append(_violation(
                        "read",
                        "read of preloaded {} (op {}) returned ENOENT"
                        .format(path, read["op_id"]),
                        path=path, op_id=read["op_id"],
                    ))
                    continue
                removers = [
                    e for e in stream if e["action"] == "remove"
                    and e["start_us"] < read["end_us"]
                    and (e["end_us"] is None
                         or e["end_us"] > creator["start_us"])
                ]
                if not removers:
                    violations.append(_violation(
                        "read",
                        "read of {} (op {}) returned ENOENT after acked "
                        "create (op {}) with no possible remover"
                        .format(path, read["op_id"], creator["op_id"]),
                        path=path, op_id=read["op_id"],
                        creator_op_id=creator["op_id"],
                    ))
    return violations


# ----------------------------------------------------------------------
# cluster-side input builders
# ----------------------------------------------------------------------

def snapshot_namespace(cluster):
    """Walk the healed cluster's authoritative inode tables from the
    root; returns ``path -> {"is_dir": bool}`` for every reachable
    record (unreachable records are the invariant audit's business)."""
    from repro.vfs.attrs import ROOT_INO

    children = {}
    for mnode in cluster.mnodes:
        for (pid, name), record in mnode.inodes.scan():
            children.setdefault(pid, []).append((name, record))
    paths = {}

    def walk(ino, prefix):
        for name, record in sorted(children.get(ino, ()),
                                   key=lambda item: item[0]):
            path = prefix + "/" + name
            paths[path] = {"is_dir": bool(record.is_dir)}
            if record.is_dir:
                walk(record.ino, path)

    walk(ROOT_INO, "")
    return paths


def make_slot_of(cluster, preload_inos):
    """Slot attribution for depth-≤2 paths under preloaded parents."""
    from repro.vfs.attrs import ROOT_INO

    index = cluster.coordinator.index

    def slot_of(path):
        parent = parent_path(path)
        if parent == "/":
            pid = ROOT_INO
        else:
            pid = preload_inos.get(parent)
        if pid is None:
            return None
        return index.locate(pid, basename(path))

    return slot_of


def promotion_risk_windows(cluster, nemesis_log):
    """Loss-excusal intervals from the run's completed promotions.

    For each failover that actually promoted a standby, acked ops on the
    failed slot may have been lost if they completed after the last
    moment shipping still flowed — the crash or hang instant — minus the
    in-flight shipping margin.  Suppressed and deferred failovers moved
    no state and excuse nothing.

    Only *dead* troubles open a window: crashes (from the cluster's
    crash log) and hangs (the node was genuinely unreachable).  Gray
    degradation — slow disks, lossy links, skewed clocks, stampedes —
    never appears in the trouble set: a degraded-but-alive primary still
    holds every acked op, so a promotion around it has no excusable
    loss.  Likewise a promotion with *no* recorded trouble excuses
    nothing (there used to be a ``detected_at - 2500`` guess here; a
    detector declaration alone, e.g. pings starved by a lossy link, is
    not evidence that acked state could legitimately vanish).
    """
    troubles = {}
    for crash in cluster.crash_log:
        troubles.setdefault(crash["index"], []).append(crash["at"])
    for event in nemesis_log:
        if event["kind"] == "hang" and "index" in event:
            troubles.setdefault(event["index"], []).append(event["at"])
    windows = []
    for record in cluster.coordinator.failover_log:
        if record.get("suppressed") or record.get("deferred"):
            continue
        if not record.get("promoted"):
            continue
        promoted_at = record["promoted_at"]
        candidates = [
            at for at in troubles.get(record["index"], ())
            if at <= promoted_at
        ]
        if not candidates:
            continue
        lo = max(candidates) - SHIP_MARGIN_US
        # One window per hash slot hosted by the promoted node.  The
        # record carries the hosted set under elastic slot maps; absent
        # (static layout, legacy records) the identity slot stands in.
        for slot in record.get("slots", (record["index"],)):
            windows.append((slot, lo, promoted_at))
    return windows


def tainted_slot_set(cluster, nemesis_log):
    """Slots whose durable state became unaccountable: a WAL corruption
    fired and the slot later resumed as *primary* from that log (the
    generator avoids this; the backstop keeps the oracle honest if a
    shrunken or hand-written schedule hits it)."""
    corrupted = {}
    for event in nemesis_log:
        if event["kind"] == "corrupt_wal":
            corrupted.setdefault(event["index"], []).append(event["at"])
    tainted = set()
    for record in cluster.restart_log:
        if record["role"] != "primary":
            continue
        if any(at <= record["recovered_at"]
               for at in corrupted.get(record["index"], ())):
            tainted.add(record["index"])
    return tainted
