"""Shrink a failing schedule to a minimal reproducer.

Because every random choice lives in the schedule itself (victims, fire
times, per-event RNG seeds), any subset of a schedule is itself a valid
schedule that replays bit-identically — dropping an op or a nemesis
group never perturbs the survivors.  Shrinking is therefore plain
delta-debugging, no seed gymnastics:

1. **drop nemesis groups greedily** — a group is atomic (a crash and its
   paired restart, or corrupt+crash+restart) so pairings survive;
2. **ddmin over the ops** — complement-of-chunk removal with the classic
   granularity schedule, cheapest reductions first;
3. **re-try group drops** — a smaller op list often makes a fault
   irrelevant that the full workload needed.

Candidates are cached by content, the run budget bounds total work, and
the smallest failing result seen is returned alongside the schedule.
"""

from repro.check.runner import run_schedule


def _key(ops, nemeses):
    return (
        tuple(op["id"] for op in ops),
        tuple((e["group"], e["kind"]) for e in nemeses),
    )


def shrink(schedule, run_fn=run_schedule, max_runs=150):
    """Minimize a failing ``schedule``.

    Returns ``(min_schedule, runs_used, min_result)`` where
    ``min_result`` is the run result of the minimal schedule.  Raises
    :class:`ValueError` if the schedule does not fail in the first place.
    """
    runs = 0
    cache = {}
    results = {}

    def fails(ops, nemeses):
        nonlocal runs
        key = _key(ops, nemeses)
        if key in cache:
            return cache[key]
        if runs >= max_runs:
            return False
        runs += 1
        candidate = dict(schedule)
        candidate["ops"] = list(ops)
        candidate["nemeses"] = list(nemeses)
        result = run_fn(candidate)
        failing = bool(result["violations"])
        cache[key] = failing
        if failing:
            results[key] = result
        return failing

    ops = list(schedule["ops"])
    nemeses = list(schedule["nemeses"])
    if not fails(ops, nemeses):
        raise ValueError("schedule does not fail; nothing to shrink")

    def drop_groups(ops, nemeses):
        changed = True
        while changed and runs < max_runs:
            changed = False
            for group in sorted({e["group"] for e in nemeses}):
                candidate = [e for e in nemeses if e["group"] != group]
                if fails(ops, candidate):
                    nemeses = candidate
                    changed = True
                    break
        return nemeses

    def ddmin_ops(ops, nemeses):
        granularity = 2
        while len(ops) >= 2 and runs < max_runs:
            size = max(1, len(ops) // granularity)
            reduced = False
            for start in range(0, len(ops), size):
                candidate = ops[:start] + ops[start + size:]
                if candidate and fails(candidate, nemeses):
                    ops = candidate
                    granularity = max(granularity - 1, 2)
                    reduced = True
                    break
            if not reduced:
                if granularity >= len(ops):
                    break
                granularity = min(granularity * 2, len(ops))
        # Final pass: try dropping each remaining op individually.
        index = 0
        while index < len(ops) and len(ops) > 1 and runs < max_runs:
            candidate = ops[:index] + ops[index + 1:]
            if fails(candidate, nemeses):
                ops = candidate
            else:
                index += 1
        return ops

    nemeses = drop_groups(ops, nemeses)
    ops = ddmin_ops(ops, nemeses)
    nemeses = drop_groups(ops, nemeses)

    minimal = dict(schedule)
    minimal["ops"] = list(ops)
    minimal["nemeses"] = list(nemeses)
    minimal["shrunk_from"] = {
        "ops": len(schedule["ops"]),
        "nemeses": len(schedule["nemeses"]),
    }
    key = _key(ops, nemeses)
    result = results.get(key)
    if result is None:
        result = run_fn(minimal)
    return minimal, runs, result
