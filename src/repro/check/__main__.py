"""CLI for the simulation checker.

``python -m repro.check run --seeds 50``
    explore seeds 0..49; on the first failure, shrink it and write a
    seed file with the minimal reproducer, then exit 2.

``python -m repro.check run --seeds 200 --jobs 8``
    same contract, seeds fanned out across 8 worker processes.  The
    verdict stream, the first failing seed (always the lowest in seed
    order) and the written seed file are byte-identical to ``--jobs 1``:
    results come back through an ordered merge and shrinking stays
    serial in the parent.

``python -m repro.check repro <seed-file>``
    replay a written seed file (the minimal schedule by default, the
    original with ``--original``); exit 1 if violations reproduce.

``python -m repro.check gen --seed 7``
    print the expanded schedule for one seed (debugging aid).
"""

import argparse
import json
import os
import sys
import time

from repro.check.runner import run_schedule
from repro.check.schedule import NEMESIS_MIXES, generate_schedule
from repro.check.shrink import shrink
from repro.check.worker import explore_seed


def _schedule_kwargs(args):
    return {
        "num_ops": args.ops,
        "num_clients": args.clients,
        "num_mnodes": args.mnodes,
        "num_storage": args.storage,
        "num_nemeses": args.nemeses,
        "budget_us": args.budget_us,
        "quiesce_budget_us": args.quiesce_budget_us,
        "nemesis_mix": args.nemesis_mix,
    }


def _summarize(stats):
    return ("{} ops ({} ok, {} failed), {} nemeses, "
            "{} promotions, t={:.0f}us").format(
        stats["ops_total"], stats["ops_ok"], stats["ops_failed"],
        stats["nemesis_fired"], stats["promotions"],
        stats["final_now_us"])


def _per_minute(count, seconds):
    """Rate per minute, or ``None`` when no wall time was observed
    (a sub-resolution run has no honest rate — don't invent one)."""
    if seconds <= 0:
        return None
    return count * 60.0 / seconds


def _format_rate(rate):
    return "n/a" if rate is None else "{:.1f}".format(rate)


def _explore(tasks, jobs):
    """Yield one verdict record per task, in seed order.

    Serial (``jobs <= 1``) runs inline; parallel runs fan out over a
    persistent :class:`~repro.parallel.WorkerPool` whose ordered merge
    yields the identical record stream.  A worker-side infrastructure
    failure (crash or escaped exception — ``run_schedule`` converts
    simulation failures into violations, so this is checker breakage)
    surfaces as an ``error`` record.
    """
    if jobs <= 1:
        for task in tasks:
            yield explore_seed(task)
        return
    from repro.parallel import WorkerPool

    with WorkerPool(min(jobs, len(tasks))) as pool:
        for result in pool.imap(explore_seed, tasks):
            if result.ok:
                yield result.value
            else:
                yield {"seed": tasks[result.index][0], "error": result.error}


def cmd_run(args):
    started = time.monotonic()
    schedule_kwargs = _schedule_kwargs(args)
    tasks = [(seed, schedule_kwargs)
             for seed in range(args.start_seed,
                               args.start_seed + args.seeds)]
    explored = 0
    failure = None
    for record in _explore(tasks, args.jobs):
        if "error" in record:
            print("seed {:4d}: checker infrastructure failure"
                  .format(record["seed"]), file=sys.stderr)
            print(record["error"], file=sys.stderr)
            return 3
        explored += 1
        seed = record["seed"]
        if record["failed"]:
            print("seed {:4d}: FAIL {}".format(
                seed, _summarize(record["result"]["stats"])))
            for violation in record["result"]["violations"]:
                print("  [{}] {}".format(violation["invariant"],
                                         violation["message"]))
            failure = record
            break
        print("seed {:4d}: ok   {}".format(seed,
                                           _summarize(record["stats"])))
        if args.heartbeat and explored % args.heartbeat == 0 \
                and explored < len(tasks):
            rate = _per_minute(explored, time.monotonic() - started)
            print("# {}/{} seeds done, all clean, {} schedules/minute"
                  .format(explored, len(tasks), _format_rate(rate)),
                  file=sys.stderr)

    # Exploration-only wall clock: captured before any shrinking, so
    # the reported rate measures seed throughput, never debug work.
    explore_rate = _per_minute(explored, time.monotonic() - started)

    if failure is None:
        print("{} seeds clean ({} schedules/minute)".format(
            args.seeds, _format_rate(explore_rate)))
        return 0

    seed = failure["seed"]
    result = failure["result"]
    schedule = result["schedule"]
    report = {
        "seed": seed,
        "violations": result["violations"],
        "stats": result["stats"],
        "history": result["history"],
        "schedule": schedule,
        "minimal": None,
    }
    if not args.no_shrink:
        # Shrinking is serial in the parent, by design: ddmin replays
        # depend on each candidate's verdict, and a single process
        # keeps the shrink path bit-identical at every --jobs value.
        print("shrinking (budget {} runs)...".format(
            args.max_shrink_runs))
        minimal, runs, min_result = shrink(
            schedule, max_runs=args.max_shrink_runs)
        print("shrunk to {} ops + {} nemesis events in {} runs"
              .format(len(minimal["ops"]), len(minimal["nemeses"]),
                      runs))
        report["minimal"] = minimal
        report["minimal_violations"] = min_result["violations"]
        report["minimal_history"] = min_result["history"]
        report["shrink_runs"] = runs
    os.makedirs(args.out, exist_ok=True)
    path = os.path.join(args.out, "seed-{}.json".format(seed))
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print("seed file: {}".format(path))
    print("reproduce: python -m repro.check repro {}".format(path))
    print("# explored {} seeds ({} schedules/minute, exploration only)"
          .format(explored, _format_rate(explore_rate)),
          file=sys.stderr)
    return 2


def cmd_repro(args):
    with open(args.file) as handle:
        report = json.load(handle)
    schedule = report["schedule"]
    if not args.original and report.get("minimal"):
        schedule = report["minimal"]
    result = run_schedule(schedule)
    print(_summarize(result["stats"]))
    if not result["violations"]:
        print("no violations (did not reproduce)")
        return 0
    for violation in result["violations"]:
        print("[{}] {}".format(violation["invariant"],
                               violation["message"]))
    return 1


def cmd_gen(args):
    schedule = generate_schedule(args.seed, **_schedule_kwargs(args))
    json.dump(schedule, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _add_schedule_args(parser):
    parser.add_argument("--ops", type=int, default=80)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--mnodes", type=int, default=3)
    parser.add_argument("--storage", type=int, default=2)
    parser.add_argument("--nemeses", type=int, default=3)
    parser.add_argument("--budget-us", type=float, default=600000.0)
    parser.add_argument("--quiesce-budget-us", type=float,
                        default=300000.0)
    parser.add_argument(
        "--nemesis-mix", choices=sorted(NEMESIS_MIXES), default="mixed",
        help="fault family: classic (crash/corrupt/hang/partition), "
             "gray (slow disk/lossy link/clock skew/stampede), mixed, "
             "election (consensus tier), or migrate (online slot "
             "handoffs under live traffic, mixed with crash/gray)")


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.check")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="explore seeds; shrink and save the first failure")
    run_parser.add_argument("--seeds", type=int, default=50)
    run_parser.add_argument("--start-seed", type=int, default=0)
    run_parser.add_argument("--out", default="check-artifacts")
    run_parser.add_argument("--no-shrink", action="store_true")
    run_parser.add_argument("--max-shrink-runs", type=int, default=150)
    run_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for seed exploration (default 1; the "
             "verdict stream and any seed file are identical at every "
             "value)")
    run_parser.add_argument(
        "--heartbeat", type=int, default=25,
        help="progress line to stderr every N clean seeds "
             "(0 disables)")
    _add_schedule_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    repro_parser = commands.add_parser(
        "repro", help="replay a saved seed file")
    repro_parser.add_argument("file")
    repro_parser.add_argument(
        "--original", action="store_true",
        help="replay the full original schedule, not the minimal one")
    repro_parser.set_defaults(func=cmd_repro)

    gen_parser = commands.add_parser(
        "gen", help="print the schedule for one seed")
    gen_parser.add_argument("--seed", type=int, required=True)
    _add_schedule_args(gen_parser)
    gen_parser.set_defaults(func=cmd_gen)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
