"""CLI for the simulation checker.

``python -m repro.check run --seeds 50``
    explore seeds 0..49; on the first failure, shrink it and write a
    seed file with the minimal reproducer, then exit 2.

``python -m repro.check repro <seed-file>``
    replay a written seed file (the minimal schedule by default, the
    original with ``--original``); exit 1 if violations reproduce.

``python -m repro.check gen --seed 7``
    print the expanded schedule for one seed (debugging aid).
"""

import argparse
import json
import os
import sys
import time

from repro.check.runner import run_schedule
from repro.check.schedule import NEMESIS_MIXES, generate_schedule
from repro.check.shrink import shrink


def _schedule_kwargs(args):
    return {
        "num_ops": args.ops,
        "num_clients": args.clients,
        "num_mnodes": args.mnodes,
        "num_storage": args.storage,
        "num_nemeses": args.nemeses,
        "budget_us": args.budget_us,
        "quiesce_budget_us": args.quiesce_budget_us,
        "nemesis_mix": args.nemesis_mix,
    }


def _summarize(result):
    stats = result["stats"]
    return ("{} ops ({} ok, {} failed), {} nemeses, "
            "{} promotions, t={:.0f}us").format(
        stats["ops_total"], stats["ops_ok"], stats["ops_failed"],
        stats["nemesis_fired"], stats["promotions"],
        stats["final_now_us"])


def cmd_run(args):
    started = time.monotonic()
    for seed in range(args.start_seed, args.start_seed + args.seeds):
        schedule = generate_schedule(seed, **_schedule_kwargs(args))
        result = run_schedule(schedule)
        if not result["violations"]:
            print("seed {:4d}: ok   {}".format(seed, _summarize(result)))
            continue
        print("seed {:4d}: FAIL {}".format(seed, _summarize(result)))
        for violation in result["violations"]:
            print("  [{}] {}".format(violation["invariant"],
                                     violation["message"]))
        report = {
            "seed": seed,
            "violations": result["violations"],
            "stats": result["stats"],
            "history": result["history"],
            "schedule": schedule,
            "minimal": None,
        }
        if not args.no_shrink:
            print("shrinking (budget {} runs)...".format(
                args.max_shrink_runs))
            minimal, runs, min_result = shrink(
                schedule, max_runs=args.max_shrink_runs)
            print("shrunk to {} ops + {} nemesis events in {} runs"
                  .format(len(minimal["ops"]), len(minimal["nemeses"]),
                          runs))
            report["minimal"] = minimal
            report["minimal_violations"] = min_result["violations"]
            report["minimal_history"] = min_result["history"]
            report["shrink_runs"] = runs
        os.makedirs(args.out, exist_ok=True)
        path = os.path.join(args.out, "seed-{}.json".format(seed))
        with open(path, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print("seed file: {}".format(path))
        print("reproduce: python -m repro.check repro {}".format(path))
        return 2
    elapsed_min = (time.monotonic() - started) / 60.0
    rate = args.seeds / elapsed_min if elapsed_min > 0 else float("inf")
    print("{} seeds clean ({:.1f} schedules/minute)".format(
        args.seeds, rate))
    return 0


def cmd_repro(args):
    with open(args.file) as handle:
        report = json.load(handle)
    schedule = report["schedule"]
    if not args.original and report.get("minimal"):
        schedule = report["minimal"]
    result = run_schedule(schedule)
    print(_summarize(result))
    if not result["violations"]:
        print("no violations (did not reproduce)")
        return 0
    for violation in result["violations"]:
        print("[{}] {}".format(violation["invariant"],
                               violation["message"]))
    return 1


def cmd_gen(args):
    schedule = generate_schedule(args.seed, **_schedule_kwargs(args))
    json.dump(schedule, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    return 0


def _add_schedule_args(parser):
    parser.add_argument("--ops", type=int, default=80)
    parser.add_argument("--clients", type=int, default=3)
    parser.add_argument("--mnodes", type=int, default=3)
    parser.add_argument("--storage", type=int, default=2)
    parser.add_argument("--nemeses", type=int, default=3)
    parser.add_argument("--budget-us", type=float, default=600000.0)
    parser.add_argument("--quiesce-budget-us", type=float,
                        default=300000.0)
    parser.add_argument(
        "--nemesis-mix", choices=sorted(NEMESIS_MIXES), default="mixed",
        help="fault family: classic (crash/corrupt/hang/partition), "
             "gray (slow disk/lossy link/clock skew/stampede), or mixed")


def main(argv=None):
    parser = argparse.ArgumentParser(prog="python -m repro.check")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="explore seeds; shrink and save the first failure")
    run_parser.add_argument("--seeds", type=int, default=50)
    run_parser.add_argument("--start-seed", type=int, default=0)
    run_parser.add_argument("--out", default="check-artifacts")
    run_parser.add_argument("--no-shrink", action="store_true")
    run_parser.add_argument("--max-shrink-runs", type=int, default=150)
    _add_schedule_args(run_parser)
    run_parser.set_defaults(func=cmd_run)

    repro_parser = commands.add_parser(
        "repro", help="replay a saved seed file")
    repro_parser.add_argument("file")
    repro_parser.add_argument(
        "--original", action="store_true",
        help="replay the full original schedule, not the minimal one")
    repro_parser.set_defaults(func=cmd_repro)

    gen_parser = commands.add_parser(
        "gen", help="print the schedule for one seed")
    gen_parser.add_argument("--seed", type=int, required=True)
    _add_schedule_args(gen_parser)
    gen_parser.set_defaults(func=cmd_gen)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
