"""The checker's per-seed task, shaped for the worker pool.

``explore_seed`` is the unit of work `python -m repro.check run` fans
out: module-level (picklable by reference), pure (the record depends
only on the task), and compact — a clean seed ships back just the
summary-line stats, a failing seed ships the full result so the parent
can write the seed file and shrink *serially* without re-running.

Both the serial (``--jobs 1``) and parallel paths call this same
function, which is what makes their verdict streams byte-identical.
"""

from repro.check.runner import run_schedule
from repro.check.schedule import generate_schedule

#: The stats the CLI's one-line summary needs (keep tiny: this is the
#: whole payload for a clean seed).
SUMMARY_KEYS = ("ops_total", "ops_ok", "ops_failed", "nemesis_fired",
                "promotions", "final_now_us")


def explore_seed(task):
    """Run one seed; return a picklable verdict record.

    ``task`` is ``(seed, schedule_kwargs)``.  The schedule is generated
    *inside* the task so only the integer seed and the knob dict cross
    the process boundary.
    """
    seed, schedule_kwargs = task
    schedule = generate_schedule(seed, **schedule_kwargs)
    result = run_schedule(schedule)
    if result["violations"]:
        return {"seed": seed, "failed": True, "result": result}
    return {
        "seed": seed,
        "failed": False,
        "stats": {key: result["stats"][key] for key in SUMMARY_KEYS},
    }
