"""Seeded schedule generation: one integer -> one reproducible run.

A schedule is plain JSON data — operations with think times for each
client, and nemesis events with absolute fire times — generated entirely
up front from a private ``random.Random(seed)``.  Nothing is drawn at
run time, which is what makes the shrinker sound: dropping any subset of
ops or nemesis events replays the survivors bit-identically.

Generation enforces the safety envelope the oracle's loss-accounting
depends on:

* **fault windows are globally serialized** — one MNode slot is in
  trouble at a time, and every window ends with the slot healthy again
  (restarted, un-hung or un-partitioned) plus a settling margin.
  Overlapping faults would wedge the coordinator's repair broadcasts
  (``invalidate_owner``/fsck fan out to *all* peers) and make promotion
  loss unattributable.
* **WAL corruption is always paired** with a crash of the same slot and
  a restart late enough that the failure detector promotes the standby
  first — the corrupted log is then discarded by the rejoin path.  A
  fast resume would silently restore a truncated prefix, which is real
  unhandled data loss, not a schedule the current system can pass.
* **namespace pools are disjoint** — file names and directory names
  never collide, and renames/chmods target files only, so the workload
  never triggers the directory-wide invalidation broadcasts (rmdir,
  directory chmod/rename) that fan out unbounded to every peer.
"""

import random

#: Operation mix (kind, weight).  Creates/unlinks/renames/reads dominate;
#: mkdir targets its own (childless) subdirectory pool.
OP_MIX = (
    ("create", 24),
    ("unlink", 14),
    ("rename", 9),
    ("getattr", 16),
    ("readdir", 8),
    ("mkdir", 7),
    ("chmod", 6),
    ("write", 8),
    ("read", 8),
)

NEMESIS_MIX = (
    ("crash", 40),
    ("corrupt_wal", 15),
    ("hang", 25),
    ("partition", 20),
)

#: Gray (slow-not-dead) nemeses: the victim keeps answering throughout,
#: so none of these may be excused like a crash by the oracle.
GRAY_NEMESIS_MIX = (
    ("slow_disk", 30),
    ("degrade_link", 35),
    ("skew_clock", 20),
    ("stampede", 15),
)

#: Consensus-tier nemeses: leader isolation, split-brain and asymmetric
#: (directed) partitions, plus crash/restart churn.  Runs with this mix
#: enable the consensus config flag, and the oracle runs *tightened* —
#: no promotion-loss excusal: an acknowledged write must survive every
#: election, and a minority-partitioned leader must never acknowledge.
ELECTION_NEMESIS_MIX = (
    ("leader_partition", 35),
    ("asymm_partition", 25),
    ("split_brain", 15),
    ("crash", 25),
)

#: Elastic-namespace nemeses: online slot migrations under live
#: traffic, mixed with dead and gray faults (``corrupt_wal`` stays out:
#: its taint accounting is keyed by physical node, not hash slot).
#: Runs with this mix hash over more slots than nodes (see
#: :func:`generate_schedule`) so every node hosts several and a handoff
#: moves real load.  NO excusal attaches to a migration: every acked op
#: must survive every handoff, bit-exactly.
MIGRATE_NEMESIS_MIX = (
    ("migrate_slot", 35),
    ("crash", 20),
    ("partition", 15),
    ("hang", 10),
    ("slow_disk", 10),
    ("degrade_link", 10),
)

#: Selectable nemesis families (the ``--nemesis-mix`` CLI knob).
NEMESIS_MIXES = {
    "classic": NEMESIS_MIX,
    "gray": GRAY_NEMESIS_MIX,
    "mixed": NEMESIS_MIX + GRAY_NEMESIS_MIX,
    "election": ELECTION_NEMESIS_MIX,
    "migrate": MIGRATE_NEMESIS_MIX,
}

CHMOD_MODES = (0o600, 0o640, 0o644, 0o660, 0o664)
WRITE_SIZES = (512, 2048, 8192)


def generate_schedule(seed, num_ops=80, num_clients=3, num_mnodes=3,
                      num_storage=2, num_nemeses=3, budget_us=600000.0,
                      quiesce_budget_us=300000.0, nemesis_mix="mixed"):
    """Expand ``seed`` into a complete, self-contained schedule dict.

    ``nemesis_mix`` selects the fault family: ``"classic"`` (crash /
    corrupt / hang / partition), ``"gray"`` (slow disk / degraded link /
    clock skew / stampede — the victim stays alive throughout), or
    ``"mixed"`` (both, the default).
    """
    rng = random.Random(seed)
    mix = NEMESIS_MIXES[nemesis_mix]
    # The migrate family hashes over more slots than nodes so every
    # node hosts several and a handoff moves a real share of the
    # namespace; other families keep the static identity layout.
    num_slots = 3 * num_mnodes if nemesis_mix == "migrate" else 0
    num_dirs = 3
    dirs = ["/d{}".format(i) for i in range(num_dirs)]
    subdirs = [
        "{}/sub{}".format(d, j) for d in dirs for j in range(3)
    ]
    files = [
        "{}/s{}.dat".format(d, j) for d in dirs for j in range(4)
    ] + [
        "{}/c{}n{}.dat".format(d, c, j)
        for d in dirs for c in range(num_clients) for j in range(2)
    ]

    op_kinds = [kind for kind, _ in OP_MIX]
    op_weights = [weight for _, weight in OP_MIX]
    ops = []
    for op_id in range(num_ops):
        kind = rng.choices(op_kinds, weights=op_weights)[0]
        op = {
            "id": op_id,
            "client": rng.randrange(num_clients),
            "kind": kind,
            "delay_us": round(rng.uniform(20.0, 160.0), 3),
        }
        if kind == "rename":
            src = rng.choice(files)
            dst = rng.choice([f for f in files if f != src])
            op["src"] = src
            op["dst"] = dst
        elif kind == "mkdir":
            op["path"] = rng.choice(subdirs)
        elif kind == "readdir":
            op["path"] = rng.choice(dirs)
        elif kind == "getattr":
            pool = files if rng.random() < 0.8 else dirs + subdirs
            op["path"] = rng.choice(pool)
        elif kind == "chmod":
            op["path"] = rng.choice(files)
            op["mode"] = rng.choice(CHMOD_MODES)
        elif kind == "write":
            op["path"] = rng.choice(files)
            op["size"] = rng.choice(WRITE_SIZES)
        else:  # create / unlink / read
            op["path"] = rng.choice(files)
        ops.append(op)

    nemesis_kinds = [kind for kind, _ in mix]
    nemesis_weights = [weight for _, weight in mix]
    nemeses = []
    busy_until = 1200.0
    for group in range(num_nemeses):
        start = busy_until + rng.uniform(300.0, 1500.0)
        kind = rng.choices(nemesis_kinds, weights=nemesis_weights)[0]
        index = rng.randrange(num_mnodes)
        if kind == "crash":
            nemeses.append({"group": group, "kind": "crash",
                            "at_us": round(start, 3), "index": index})
            if rng.random() < 0.45:
                # Fast restart: redo recovery races (and may beat) the
                # failure detector's promotion (or, under consensus,
                # the follower's election timer).
                restart_at = start + rng.uniform(600.0, 1700.0)
            elif nemesis_mix == "election":
                # Slow restart, consensus flavor: past the worst-case
                # election timer draw (2T = 8 ms) plus the claim round,
                # so the follower's election wins the slot and the
                # machine rejoins as the new data follower.
                restart_at = start + rng.uniform(9500.0, 14000.0)
            else:
                # Slow restart: promotion wins, the machine rejoins as a
                # standby.
                restart_at = start + rng.uniform(4500.0, 8000.0)
            nemeses.append({"group": group, "kind": "restart",
                            "at_us": round(restart_at, 3), "index": index})
            busy_until = restart_at + 3000.0
        elif kind == "corrupt_wal":
            nemeses.append({
                "group": group, "kind": "corrupt_wal",
                "at_us": round(start, 3), "index": index,
                "rng_seed": rng.getrandbits(48),
            })
            crash_at = start + rng.uniform(80.0, 300.0)
            nemeses.append({"group": group, "kind": "crash",
                            "at_us": round(crash_at, 3), "index": index})
            # Late enough that detection (~miss_threshold * interval)
            # promotes the standby first; the corrupt WAL is discarded.
            restart_at = crash_at + rng.uniform(5200.0, 8000.0)
            nemeses.append({"group": group, "kind": "restart",
                            "at_us": round(restart_at, 3), "index": index})
            busy_until = restart_at + 3000.0
        elif kind == "hang":
            duration = rng.uniform(300.0, 2400.0)
            nemeses.append({
                "group": group, "kind": "hang", "at_us": round(start, 3),
                "index": index, "duration_us": round(duration, 3),
            })
            busy_until = start + duration + 2600.0
        elif kind == "partition":
            duration = rng.uniform(400.0, 2600.0)
            nemeses.append({
                "group": group, "kind": "partition",
                "at_us": round(start, 3), "index": index,
                "duration_us": round(duration, 3),
            })
            busy_until = start + duration + 2600.0
        elif kind == "slow_disk":
            duration = rng.uniform(1500.0, 4000.0)
            nemeses.append({
                "group": group, "kind": "slow_disk",
                "at_us": round(start, 3), "index": index,
                "duration_us": round(duration, 3),
                "fsync_factor": round(rng.uniform(4.0, 40.0), 3),
                "bandwidth_factor": round(rng.uniform(2.0, 10.0), 3),
                "ramp_us": round(rng.uniform(200.0, 800.0), 3),
            })
            busy_until = start + duration + 2600.0
        elif kind == "degrade_link":
            duration = rng.uniform(800.0, 3000.0)
            nemeses.append({
                "group": group, "kind": "degrade_link",
                "at_us": round(start, 3), "index": index,
                "duration_us": round(duration, 3),
                "latency_factor": round(rng.uniform(2.0, 10.0), 3),
                "loss_prob": round(rng.uniform(0.05, 0.35), 4),
                "reorder_window_us": round(rng.uniform(40.0, 350.0), 3),
                "rng_seed": rng.getrandbits(48),
            })
            busy_until = start + duration + 2600.0
        elif kind == "skew_clock":
            duration = rng.uniform(1000.0, 4000.0)
            offset = rng.uniform(200.0, 6000.0) * rng.choice((-1.0, 1.0))
            drift = rng.uniform(0.0, 80000.0) * rng.choice((-1.0, 1.0))
            event = {
                "group": group, "kind": "skew_clock",
                "at_us": round(start, 3),
                "duration_us": round(duration, 3),
                "offset_us": round(offset, 3),
                "drift_ppm": round(drift, 3),
            }
            if rng.random() < 0.35:
                event["target"] = "coordinator"
                event["index"] = None
            else:
                event["index"] = index
            nemeses.append(event)
            busy_until = start + duration + 2600.0
        elif kind == "leader_partition":
            # Long enough for the lease to lapse AND the follower's
            # randomized election timer (up to 2T = 8 ms) to fire.
            duration = rng.uniform(9000.0, 16000.0)
            nemeses.append({
                "group": group, "kind": "leader_partition",
                "at_us": round(start, 3), "index": index,
                "duration_us": round(duration, 3),
            })
            busy_until = start + duration + 6000.0
        elif kind == "split_brain":
            duration = rng.uniform(3000.0, 9000.0)
            nemeses.append({
                "group": group, "kind": "split_brain",
                "at_us": round(start, 3), "index": index,
                "duration_us": round(duration, 3),
            })
            busy_until = start + duration + 4000.0
        elif kind == "asymm_partition":
            duration = rng.uniform(9000.0, 16000.0)
            nemeses.append({
                "group": group, "kind": "asymm_partition",
                "at_us": round(start, 3), "index": index,
                "duration_us": round(duration, 3),
                "direction": rng.choice(("inbound", "outbound")),
            })
            busy_until = start + duration + 6000.0
        elif kind == "migrate_slot":
            # Slot and destination are pinned NOW, from the schedule
            # RNG — nothing is drawn at run time, so the shrinker can
            # drop any subset and replay the survivors bit-identically.
            # The destination may equal the current owner (ownership at
            # fire time is unknowable at generation); the injector
            # logs a no-op and moves on.
            nemeses.append({
                "group": group, "kind": "migrate_slot",
                "at_us": round(start, 3),
                "slot": rng.randrange(num_slots),
                "dest": rng.randrange(num_mnodes),
            })
            # Generous settling margin: snapshot/install/fence/activate
            # round trips plus bounded retries before the next fault
            # window opens.
            busy_until = start + 9000.0
        else:  # stampede
            nemeses.append({
                "group": group, "kind": "stampede",
                "at_us": round(start, 3),
            })
            busy_until = start + 1500.0

    return {
        "version": 1,
        "seed": seed,
        "config": {
            "num_mnodes": num_mnodes,
            "num_storage": num_storage,
            "num_clients": num_clients,
            "replication": True,
            # The "election" family runs the quorum-replicated
            # metadata tier (consensus groups + leader leases) in
            # place of coordinator-ordained promotion.
            "consensus": nemesis_mix == "election",
            "rpc_timeout_us": 400.0,
            "op_deadline_us": 30000.0,
            # Jittered backoff (stampedes must not meet synchronized
            # retry storms) and shipper retransmission (lossy links
            # must not permanently gap the standby).
            "retry_jitter": 0.25,
            "ship_retry_us": 1200.0,
            "nemesis_mix": nemesis_mix,
            "budget_us": budget_us,
            "quiesce_budget_us": quiesce_budget_us,
            # Elastic slot count (0 = one slot per MNode, the static
            # identity layout every other family keeps).
            "num_slots": num_slots,
        },
        "preload_dirs": dirs,
        "ops": ops,
        "nemeses": nemeses,
    }
