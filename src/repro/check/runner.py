"""Execute one schedule against a fresh cluster and audit the outcome.

``run_schedule`` is a pure function of its schedule: it builds a cluster
from the schedule's embedded config, preloads the directory skeleton,
drives every client operation and nemesis event, heals, quiesces, and
returns a JSON-safe result — history, violations, stats.  Two calls with
the same schedule produce bit-identical results (global id counters are
rewound, every random stream is seeded from the schedule), which is what
lets the shrinker trust that a replayed subset reproduces honestly.

Violation taxonomy (the ``invariant`` field of each record):

``durability``/``type``/``read``/``phantom``
    oracle verdicts from :mod:`repro.check.oracle`;
``placement``/``identity``/``reachability``/``coherence``/
``ownership``/``statistics``
    structural invariants from :func:`repro.core.verify.cluster_violations`;
``lock-leak``/``staged-leak``/``wal-waiters``/``rename-mutex``
    runtime residue from :func:`repro.core.verify.runtime_violations`;
``replication``
    a primary/standby pair failed to converge after healing;
``log-matching``
    two consensus-group members agree on the term at some LSN but
    diverge at a lower common LSN (consensus runs only);
``budget``/``quiesce``
    the run or its drain exceeded its time budget (a wedged retry loop
    and an underfunded budget look the same — the seed file tells);
``client-exception``/``sim-crash``
    an exception escaped a client op or the simulation itself;
``ack-tap``
    the client-side ack tap and the runner's history disagree.
"""

from itertools import count

from repro.check.oracle import (
    audit_history,
    make_slot_of,
    promotion_risk_windows,
    snapshot_namespace,
    tainted_slot_set,
)
from repro.core import FalconCluster
from repro.core.shared import FalconConfig
from repro.core.verify import cluster_violations, runtime_violations
from repro.faults import FaultInjector
from repro.net.rpc import RpcError, RpcFailure
from repro.storage.replication import divergence

#: Drive-loop slice: long enough to amortize loop overhead, short enough
#: that the budget check stays responsive.
_SLICE_US = 5000.0

#: Settling margin past the last nemesis event before healing begins.
_NEMESIS_MARGIN_US = 3000.0


def _reset_global_ids():
    """Rewind the process-global message/op id counters so every run is
    bit-identical regardless of what ran before it in this process."""
    from repro.net import message as message_mod
    from repro.obs import context as context_mod

    message_mod._message_ids = count(1)
    context_mod._OP_IDS = count(1)


def _violation(invariant, message, **extra):
    record = {"invariant": invariant, "message": message}
    record.update(extra)
    return record


def _dispatch(client, op):
    """The generator for one scheduled client operation."""
    kind = op["kind"]
    if kind == "create":
        return client.create(op["path"])
    if kind == "unlink":
        return client.unlink(op["path"])
    if kind == "rename":
        return client.rename(op["src"], op["dst"])
    if kind == "getattr":
        return client.getattr(op["path"])
    if kind == "readdir":
        return client.readdir(op["path"])
    if kind == "mkdir":
        return client.mkdir(op["path"])
    if kind == "chmod":
        return client.chmod(op["path"], op["mode"])
    if kind == "write":
        return client.write_file(op["path"], op["size"], exclusive=False)
    if kind == "read":
        return client.read_file(op["path"])
    raise ValueError("unknown op kind: {!r}".format(kind))


def run_schedule(schedule):
    """Run one schedule; returns the JSON-safe result dict."""
    _reset_global_ids()
    cfg = schedule["config"]
    consensus = cfg.get("consensus", False)
    config = FalconConfig(
        num_mnodes=cfg["num_mnodes"],
        num_storage=cfg["num_storage"],
        replication=cfg.get("replication", True),
        consensus=consensus,
        rpc_timeout_us=cfg["rpc_timeout_us"],
        op_deadline_us=cfg["op_deadline_us"],
        retry_jitter=cfg.get("retry_jitter", 0.0),
        ship_retry_us=cfg.get("ship_retry_us", 0.0),
        num_slots=cfg.get("num_slots", 0),
        broken_handoff=cfg.get("broken_handoff", False),
        seed=schedule["seed"],
    )
    cluster = FalconCluster(config)
    env = cluster.env
    violations = []

    # -- preload: the durable directory skeleton ------------------------
    preload_client = cluster.add_client(mode="libfs", name="preload")
    preload_inos = {}
    for path in schedule["preload_dirs"]:
        preload_inos[path] = cluster.run_process(preload_client.mkdir(path))
    cluster.run_for(3000.0)  # drain preload WAL shipping
    cluster.start_failure_detection()
    if consensus:
        # Quorum groups replace ordained promotion: leader heartbeats
        # and follower election timers run; the detector above stays
        # observe-only (it never calls fail_over under consensus).
        cluster.start_consensus()
    t0 = env.now

    # -- workload workers ----------------------------------------------
    history = []
    by_client = {}
    for op in schedule["ops"]:
        by_client.setdefault(op["client"], []).append(op)
    workers = []
    unexpected = []

    def worker(client, ops):
        for op in ops:
            yield env.timeout(op["delay_us"])
            entry = {
                "op_id": op["id"],
                "client": client.name,
                "kind": op["kind"],
                "start_us": env.now,
                "end_us": None,
                "status": "pending",
                "error": None,
            }
            if op["kind"] == "rename":
                entry["src"] = op["src"]
                entry["dst"] = op["dst"]
            else:
                entry["path"] = op["path"]
            history.append(entry)
            try:
                yield from _dispatch(client, op)
            except RpcFailure as failure:
                entry["status"] = "failed"
                entry["error"] = RpcError.name(failure.code)
            except Exception as exc:  # noqa: BLE001 - audited below
                entry["status"] = "failed"
                entry["error"] = repr(exc)
                unexpected.append(entry)
            else:
                entry["status"] = "ok"
            entry["end_us"] = env.now

    clients = []
    for client_id in range(cfg["num_clients"]):
        client = cluster.add_client(mode="libfs")
        client.ack_log = []
        clients.append(client)
        workers.append(env.process(
            worker(client, by_client.get(client_id, []))
        ))

    # -- nemesis schedule ----------------------------------------------
    injector = FaultInjector(cluster)
    handles = []
    nemesis_end = t0
    for event in schedule["nemeses"]:
        shifted = dict(event)
        shifted["at_us"] = event["at_us"] + t0
        handles.append(injector.apply(shifted))
        nemesis_end = max(nemesis_end, shifted["at_us"]
                          + event.get("duration_us", 0.0))

    # -- drive ----------------------------------------------------------
    done = env.all_of(workers)
    deadline = t0 + cfg["budget_us"]
    try:
        while not done.triggered and env.now < deadline:
            env.run(until=min(env.now + _SLICE_US, deadline))
        if env.now < nemesis_end + _NEMESIS_MARGIN_US:
            env.run(until=nemesis_end + _NEMESIS_MARGIN_US)
    except Exception as exc:  # noqa: BLE001 - the verdict, not a crash
        violations.append(_violation(
            "sim-crash",
            "unhandled simulation failure at t={}: {!r}"
            .format(env.now, exc),
        ))
    if not done.triggered:
        pending = [e["op_id"] for e in history if e["status"] == "pending"]
        started = {e["op_id"] for e in history}
        never = [op["id"] for op in schedule["ops"]
                 if op["id"] not in started]
        violations.append(_violation(
            "budget",
            "workload incomplete at budget ({} pending, {} unstarted)"
            .format(len(pending), len(never)),
            pending_ops=pending, unstarted_ops=never,
        ))

    # -- heal and drain --------------------------------------------------
    for handle in handles:
        handle.cancel()
    quiesced = False
    try:
        cluster.heal()
        quiesced = cluster.quiesce(cfg["quiesce_budget_us"])
    except Exception as exc:  # noqa: BLE001 - the verdict, not a crash
        violations.append(_violation(
            "sim-crash",
            "unhandled failure while healing at t={}: {!r}"
            .format(env.now, exc),
        ))
    if not quiesced:
        violations.append(_violation(
            "quiesce",
            "simulation not quiescent after healing + {}us "
            "(leaked retry loop or stuck waiter?)"
            .format(cfg["quiesce_budget_us"]),
        ))

    for entry in unexpected:
        violations.append(_violation(
            "client-exception",
            "op {} ({}) raised {}".format(
                entry["op_id"], entry["kind"], entry["error"]),
            op_id=entry["op_id"],
        ))

    # -- audits ----------------------------------------------------------
    tainted = tainted_slot_set(cluster, injector.events)
    violations.extend(runtime_violations(cluster))
    if not tainted:
        violations.extend(cluster_violations(cluster))
    # A tainted slot resumed as primary from a corrupted WAL — known
    # unhandled data loss on an unreplicated log, outside the system's
    # contract.  Its lost records ripple into structural violations that
    # cannot be attributed per-slot (an orphan lives at the child's
    # owner, not the slot that lost the parent), so the structural audit
    # is skipped for the whole run; the oracle and divergence checks
    # stay on, tainted-aware per slot.
    if cluster.standbys:
        for index, (mnode, standby) in enumerate(
                zip(cluster.mnodes, cluster.standbys)):
            if standby is None or index in tainted:
                continue
            for table, key, mine, theirs in divergence(mnode, standby):
                violations.append(_violation(
                    "replication",
                    "slot {} {} {!r}: primary={!r} standby={!r}"
                    .format(index, table, key, mine, theirs),
                    index=index,
                ))
    if consensus:
        # The log-matching invariant across every slot's group: two
        # members agreeing on the term at an LSN must agree on every
        # common LSN below it.
        from repro.storage.consensus import (
            log_matching_violations,
            term_positions,
        )

        for index, mnode in enumerate(cluster.mnodes):
            maps = []
            if mnode.shipper is not None:
                maps.append((mnode.name, term_positions(mnode.shipper)))
            if cluster.standbys[index] is not None:
                follower = cluster.standbys[index]
                maps.append((follower.name, term_positions(follower)))
            maps.append((cluster.witnesses[index].name,
                         term_positions(cluster.witnesses[index])))
            for name_a, name_b, agree, diverge in \
                    log_matching_violations(maps):
                violations.append(_violation(
                    "log-matching",
                    "slot {}: {} and {} agree at lsn {} but diverge "
                    "at lsn {}".format(index, name_a, name_b, agree,
                                       diverge),
                    index=index,
                ))
    final_paths = snapshot_namespace(cluster)
    violations.extend(audit_history(
        history,
        final_paths,
        schedule["preload_dirs"],
        make_slot_of(cluster, preload_inos),
        # Under consensus there is NO promotion-loss excusal: an
        # acknowledged write must survive every election, period.
        risk_windows=() if consensus
        else promotion_risk_windows(cluster, injector.events),
        tainted_slots=tainted,
    ))

    completed = sum(1 for e in history if e["status"] != "pending")
    acked = sum(len(c.ack_log) for c in clients)
    if acked != completed:
        violations.append(_violation(
            "ack-tap",
            "client ack taps recorded {} completions, history has {}"
            .format(acked, completed),
        ))

    history.sort(key=lambda e: e["op_id"])
    errors = {}
    for entry in history:
        if entry["status"] == "failed":
            errors[entry["error"]] = errors.get(entry["error"], 0) + 1
    stats = {
        "ops_total": len(schedule["ops"]),
        "ops_ok": sum(1 for e in history if e["status"] == "ok"),
        "ops_failed": sum(1 for e in history if e["status"] == "failed"),
        "ops_pending": len(history)
        - sum(1 for e in history if e["status"] != "pending"),
        "errors": dict(sorted(errors.items())),
        "nemesis_fired": sum(1 for h in handles if h.fired),
        "promotions": sum(1 for r in cluster.coordinator.failover_log
                          if r.get("promoted") and not r.get("elected")),
        "elections": sum(1 for r in cluster.coordinator.failover_log
                         if r.get("elected")),
        "failovers_deferred": sum(
            1 for r in cluster.coordinator.failover_log
            if r.get("deferred")),
        "migrations": {
            status: sum(1 for r in cluster.coordinator.migration_log
                        if r["status"] == status)
            for status in ("committed", "aborted")
        },
        "slot_map_epoch": cluster.shared.slot_map.epoch,
        "restarts": {
            role: sum(1 for r in cluster.restart_log if r["role"] == role)
            for role in ("primary", "standby")
        },
        "tainted_slots": sorted(tainted),
        "structural_audit_skipped": bool(tainted),
        "quiesced": quiesced,
        "final_now_us": env.now,
        "final_paths": len(final_paths),
    }
    return {
        "schedule": schedule,
        "history": history,
        "violations": violations,
        "stats": stats,
    }
