"""Core discrete-event simulation kernel.

The kernel follows the classic event-heap design: an :class:`Environment`
owns a priority queue of ``(time, priority, sequence, event)`` entries and
advances simulated time by popping the earliest entry and running the
event's callbacks.  User logic is written as generator functions ("process
functions") that ``yield`` events; a :class:`Process` drives the generator,
resuming it each time the yielded event fires.

Design notes
------------
* Events carry either a success value or a failure exception.  A failure
  propagates into every waiting process via ``generator.throw``, so ordinary
  ``try/except`` works across simulated waits.
* A failed event that nobody waits on raises :class:`SimulationError` when
  it is processed: errors never pass silently.
* Time is a ``float`` in arbitrary units; the FalconFS layers use
  microseconds by convention (see :mod:`repro.net.costs`).

Fast-path notes
---------------
Simulator speed bounds every experiment in this repository, so the hot
path is deliberately flat (see ``docs/architecture.md`` § "Simulator
performance" for the contract):

* every event class uses ``__slots__`` — no per-event ``__dict__``;
* the heap sequence is a plain ``int`` incremented inline, and the hot
  constructors (:class:`Timeout`, :class:`Initialize`, ``succeed`` /
  ``fail``) push their heap entry directly instead of going through
  :meth:`Environment._schedule`;
* a :class:`Timeout` starts with the shared immutable
  ``_NO_CALLBACKS`` tuple instead of allocating a callback list; the
  first waiter swaps in a single-element list.  ``Environment.
  schedule_timeout`` is the fastest constructor for the overwhelmingly
  common bare value-less timeout;
* :meth:`Process._resume` binds the generator's ``send``/``throw`` once
  and type-checks yielded targets with EAFP instead of ``isinstance``;
* :meth:`Environment.run` inlines the :meth:`step` body in its loops.

None of this changes *what* is simulated: the scheduling order — the
``(time, priority, sequence)`` triple assigned to every event — is
bit-identical to the original kernel, which the golden-trace test
(``tests/test_perf_golden.py``) pins down.
"""

from heapq import heappop, heappush

from repro.runtime.api import EnvError, Interrupt

__all__ = [
    "AllOf", "AnyOf", "Environment", "Event", "Initialize", "Interrupt",
    "Process", "SimulationError", "Timeout", "NORMAL", "URGENT",
]

#: Scheduling priorities.  URGENT entries at the same timestamp run before
#: NORMAL ones; this keeps "wake the waiter" ahead of "start the next op".
URGENT = 0
NORMAL = 1

_PENDING = object()

#: Shared immutable "no callbacks yet" marker for freshly created hot-path
#: events (timeouts).  Distinct from ``None``, which means *processed*.
#: The first waiter replaces it with a real single-element list.
_NO_CALLBACKS = ()


class SimulationError(EnvError):
    """Raised for kernel misuse or unhandled process failures.

    Subclasses the backend-agnostic :class:`repro.runtime.api.EnvError`
    so protocol code can catch kernel misuse without importing the
    simulator.  :class:`Interrupt` likewise comes from the runtime
    contract (re-exported here for compatibility)."""


class Event:
    """An occurrence at a point in simulated time.

    An event starts *pending*, becomes *triggered* once it has a value (or
    an exception) and a position in the event queue, and is *processed*
    after its callbacks have run.  Processes wait on events by yielding
    them.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "defused")

    def __init__(self, env):
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        #: Set when a waiter has consumed this event's failure, so the
        #: kernel does not re-raise it as unhandled.
        self.defused = False

    def __repr__(self):
        state = "pending"
        if self._value is not _PENDING:
            state = "ok" if self._ok else "failed"
        return "<{} {} at {:#x}>".format(type(self).__name__, state, id(self))

    @property
    def triggered(self):
        """True once the event has a value and is (or was) scheduled."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the event's callbacks have been run."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded.  Only valid once triggered."""
        if self._ok is None:
            raise SimulationError("event not yet triggered")
        return self._ok

    @property
    def value(self):
        """The event's success value or failure exception."""
        if self._value is _PENDING:
            raise SimulationError("event not yet triggered")
        return self._value

    def succeed(self, value=None, priority=NORMAL):
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = True
        self._value = value
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now, priority, seq, self))
        return self

    def fail(self, exception, priority=NORMAL):
        """Trigger the event as failed with ``exception``."""
        if not isinstance(exception, BaseException):
            raise SimulationError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError("event already triggered: {!r}".format(self))
        self._ok = False
        self._value = exception
        env = self.env
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now, priority, seq, self))
        return self


def _add_callback(event, callback):
    """Append ``callback`` to a not-yet-processed event.

    Swaps the shared ``_NO_CALLBACKS`` marker for a real list on first
    use, so bare timeouts that nobody ever waits on allocate nothing.
    """
    callbacks = event.callbacks
    if callbacks is _NO_CALLBACKS:
        event.callbacks = [callback]
    else:
        callbacks.append(callback)


class Timeout(Event):
    """An event that fires ``delay`` time units after creation."""

    __slots__ = ("delay",)

    def __init__(self, env, delay, value=None):
        if delay < 0:
            raise SimulationError("negative delay: {!r}".format(delay))
        # Flattened Event.__init__ plus direct heap push: one Timeout per
        # CPU slice / wire hop / WAL fsync makes this the hottest
        # constructor in the simulator.
        self.env = env
        self.callbacks = _NO_CALLBACKS
        self._value = value
        self._ok = True
        self.defused = False
        self.delay = delay
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now + delay, NORMAL, seq, self))


class Initialize(Event):
    """Internal event that starts a freshly created process."""

    __slots__ = ()

    def __init__(self, env, process):
        self.env = env
        self.callbacks = [process._resume]
        self._value = None
        self._ok = True
        self.defused = False
        seq = env._seq
        env._seq = seq + 1
        heappush(env._queue, (env._now, URGENT, seq, self))


class Process(Event):
    """Drives a generator, resuming it whenever a yielded event fires.

    A process is itself an event: it succeeds with the generator's return
    value, or fails with the exception that escaped the generator.  Other
    processes may therefore ``yield`` a process to wait for its completion.
    """

    __slots__ = ("_generator", "_target", "_send", "_throw")

    def __init__(self, env, generator):
        try:
            self._send = generator.send
            self._throw = generator.throw
        except AttributeError:
            raise SimulationError(
                "process() requires a generator, got {!r}".format(generator)
            ) from None
        self.env = env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self.defused = False
        self._generator = generator
        self._target = None
        Initialize(env, self)

    @property
    def is_alive(self):
        """True while the generator has not finished."""
        return self._value is _PENDING

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its next resume."""
        if self._value is not _PENDING:
            raise SimulationError("cannot interrupt dead process")
        env = self.env
        if env._active_process is self:
            raise SimulationError("process cannot interrupt itself")
        event = Event(env)
        event._ok = False
        event._value = Interrupt(cause)
        event.defused = True
        event.callbacks.append(self._resume)
        env._schedule(event, priority=URGENT)
        # Detach from the event the process was waiting on: the interrupt
        # wins the race, and the original event must not resume us twice.
        target = self._target
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._target = None

    def _resume(self, event):
        env = self.env
        env._active_process = self
        send = self._send
        throw = self._throw
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    event.defused = True
                    target = throw(event._value)
            except StopIteration as stop:
                env._active_process = None
                self.succeed(stop.value, priority=URGENT)
                return
            except BaseException as exc:
                env._active_process = None
                self.fail(exc, priority=URGENT)
                return

            # EAFP stand-in for ``isinstance(target, Event)``: every event
            # has a ``callbacks`` attribute (``None`` once processed);
            # anything else yielded is a bug in the process function.
            try:
                callbacks = target.callbacks
            except AttributeError:
                exc = SimulationError(
                    "process yielded a non-event: {!r}".format(target)
                )
                env._active_process = None
                try:
                    throw(exc)
                except BaseException as err:
                    self.fail(err, priority=URGENT)
                    return
                raise exc

            if callbacks is None:
                # Already processed: loop and feed the value straight in.
                event = target
                continue
            self._target = target
            if callbacks is _NO_CALLBACKS:
                target.callbacks = [self._resume]
            else:
                callbacks.append(self._resume)
            break
        env._active_process = None


class Condition(Event):
    """Base for :class:`AllOf` / :class:`AnyOf` combinators."""

    __slots__ = ("_events", "_pending")

    def __init__(self, env, events):
        super().__init__(env)
        self._events = list(events)
        self._pending = 0
        for event in self._events:
            if event.callbacks is None:
                self._observe(event)
            else:
                self._pending += 1
                _add_callback(event, self._observe)

    def _observe(self, event):
        raise NotImplementedError


class AllOf(Condition):
    """Fires when every child event has fired; value is the list of values."""

    __slots__ = ()

    def __init__(self, env, events):
        super().__init__(env, events)
        if not self._events and not self.triggered:
            self.succeed([])
        self._check()

    def _observe(self, event):
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if not event._ok:
            event.defused = True
            self.fail(event._value)
            return
        self._pending -= 1
        self._check()

    def _check(self):
        if not self.triggered and self._pending == 0 and self._events:
            self.succeed([event._value for event in self._events])


class AnyOf(Condition):
    """Fires when the first child event fires; value is that event's value."""

    __slots__ = ()

    def __init__(self, env, events):
        if not events:
            raise SimulationError("AnyOf requires at least one event")
        super().__init__(env, events)

    def _observe(self, event):
        if self.triggered:
            if not event._ok:
                event.defused = True
            return
        if event._ok:
            self.succeed(event._value)
        else:
            event.defused = True
            self.fail(event._value)


class Environment:
    """The simulation clock and event queue.

    Implements the full environment contract of
    :class:`repro.runtime.api.Env`: protocol code written against the
    contract runs here with virtual time and on
    :class:`~repro.runtime.aio.AsyncioEnv` with the wall clock.
    """

    __slots__ = ("_now", "_queue", "_seq", "_active_process", "_clocks")

    #: Environment-contract flags (see :mod:`repro.runtime.api`): the
    #: simulator charges every CostModel delay as virtual time and must
    #: never see gratuitous zero-delay events (golden traces pin the
    #: exact event sequence).
    models_costs = True
    cooperative = False

    def __init__(self, initial_time=0.0):
        self._now = float(initial_time)
        self._queue = []
        #: Plain int tie-breaker; incremented inline on the hot paths.
        self._seq = 0
        self._active_process = None
        #: Per-node ClockView registry (lazy; see ``clock``).
        self._clocks = None

    def __repr__(self):
        return "<Environment now={} queued={}>".format(self._now, len(self._queue))

    @property
    def now(self):
        """Current simulated time."""
        return self._now

    @property
    def active_process(self):
        """The process currently executing, if any."""
        return self._active_process

    @property
    def events_scheduled(self):
        """Total heap entries scheduled so far (the bench harness's
        events metric; monotone, cheap, deterministic)."""
        return self._seq

    def _schedule(self, event, delay=0.0, priority=NORMAL):
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, priority, seq, event))

    # -- public event constructors ------------------------------------

    def event(self):
        """Create a new pending :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def schedule_timeout(self, delay):
        """Fast path for the overwhelmingly common bare timeout.

        Identical scheduling to ``timeout(delay)`` — same heap entry,
        same sequence number — minus the value/validation overhead and
        the callback-list allocation.  Callers guarantee ``delay >= 0``
        (every cost in :mod:`repro.net.costs` is non-negative).
        """
        event = Timeout.__new__(Timeout)
        event.env = self
        event.callbacks = _NO_CALLBACKS
        event._value = None
        event._ok = True
        event.defused = False
        event.delay = delay
        seq = self._seq
        self._seq = seq + 1
        heappush(self._queue, (self._now + delay, NORMAL, seq, event))
        return event

    def process(self, generator):
        """Start a new :class:`Process` driving ``generator``."""
        return Process(self, generator)

    # -- environment-contract surface (repro.runtime.api) ---------------

    def now_us(self):
        """Current time in microseconds (the contract spelling of
        :attr:`now`; simulated time *is* microseconds by convention)."""
        return self._now

    def sleep(self, delay_us):
        """Contract alias for :meth:`schedule_timeout`."""
        return self.schedule_timeout(delay_us)

    def spawn(self, generator):
        """Contract alias for :meth:`process`."""
        return Process(self, generator)

    def resource(self, capacity=1):
        """A :class:`~repro.sim.resources.Resource` on this clock."""
        from repro.sim.resources import Resource

        return Resource(self, capacity=capacity)

    def store(self):
        """A :class:`~repro.sim.resources.Store` on this clock."""
        from repro.sim.resources import Store

        return Store(self)

    def fsync(self, cost_us, nbytes=0):
        """Durability barrier: in the simulator an fsync is exactly its
        modeled latency (``nbytes`` already priced into ``cost_us`` by
        the WAL).  Identical heap entry to ``schedule_timeout``."""
        return self.schedule_timeout(cost_us)

    def clock(self, name):
        """Per-node :class:`~repro.runtime.api.ClockView` for ``name``.

        Views are identity transforms until the gray-failure injector
        skews them; creating one schedules nothing, so runs that never
        skew stay bit-identical.
        """
        from repro.runtime.api import ClockView

        clocks = self._clocks
        if clocks is None:
            clocks = self._clocks = {}
        view = clocks.get(name)
        if view is None:
            view = clocks[name] = ClockView(self, name)
        return view

    def clock_views(self):
        """All clock views handed out so far (for heal/reset sweeps)."""
        return list(self._clocks.values()) if self._clocks else []

    def all_of(self, events):
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events):
        """Event that fires when the first of ``events`` fires."""
        return AnyOf(self, events)

    # -- execution ------------------------------------------------------

    def step(self):
        """Process the next scheduled event.

        Raises :class:`SimulationError` if the queue is empty, and re-raises
        the failure of any event that failed with no one waiting on it.
        """
        if not self._queue:
            raise SimulationError("no scheduled events")
        self._now, _, _, event = heappop(self._queue)
        callbacks, event.callbacks = event.callbacks, None
        for callback in callbacks:
            callback(event)
        if not event._ok and not event.defused:
            raise event._value

    def peek(self):
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue[0][0] if self._queue else float("inf")

    def run(self, until=None):
        """Run the simulation.

        ``until`` may be ``None`` (run until the queue drains), a number
        (run until that simulated time) or an :class:`Event` (run until it
        is processed, returning its value or re-raising its failure).

        The loops below inline :meth:`step` — one function call per event
        is the single largest fixed cost in the simulator.
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        queue = self._queue
        pop = heappop
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    "until={} is in the past (now={})".format(horizon, self._now)
                )
            while queue and queue[0][0] <= horizon:
                self._now, _, _, event = pop(queue)
                callbacks, event.callbacks = event.callbacks, None
                for callback in callbacks:
                    callback(event)
                if not event._ok and not event.defused:
                    raise event._value
            self._now = horizon
            return None
        while queue:
            self._now, _, _, event = pop(queue)
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        return None

    def run_until_quiescent(self, budget_us=None):
        """Drain the event queue; True when it fully drained.

        With ``budget_us`` the drain is bounded: if events remain
        scheduled past ``now + budget_us`` the clock is clamped to that
        horizon and False is returned — the caller decides whether a
        non-quiescent system is a bug (leaked retry loop, stuck waiter)
        or an underfunded budget.
        """
        if budget_us is None:
            self.run()
            return True
        horizon = self._now + float(budget_us)
        queue = self._queue
        pop = heappop
        while queue:
            if queue[0][0] > horizon:
                self._now = horizon
                return False
            self._now, _, _, event = pop(queue)
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        return True

    def _run_until_event(self, until):
        stop = []
        if until.callbacks is None:
            stop.append(until)
        else:
            _add_callback(until, stop.append)
        queue = self._queue
        pop = heappop
        while not stop:
            if not queue:
                raise SimulationError(
                    "simulation ran out of events before {!r} fired".format(until)
                )
            self._now, _, _, event = pop(queue)
            callbacks, event.callbacks = event.callbacks, None
            for callback in callbacks:
                callback(event)
            if not event._ok and not event.defused:
                raise event._value
        if until._ok:
            return until._value
        until.defused = True
        raise until._value
