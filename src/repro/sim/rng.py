"""Deterministic named random streams.

Every stochastic choice in the simulator (workload shuffles, hash-tie
breaking, client think times) draws from a named stream derived from a
single experiment seed.  This keeps experiments reproducible bit-for-bit
while letting independent subsystems consume randomness without
interleaving effects: adding a draw in one stream never perturbs another.
"""

import hashlib
import random


class RandomStreams:
    """A factory of independent, deterministically seeded RNGs."""

    def __init__(self, seed=0):
        self.seed = seed
        self._streams = {}

    def stream(self, name):
        """Return the :class:`random.Random` for ``name``, creating it once.

        The stream's seed is derived by hashing ``(seed, name)``, so streams
        are stable across runs and uncorrelated with each other.
        """
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(
                "{}//{}".format(self.seed, name).encode("utf-8")
            ).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng

    def __call__(self, name):
        return self.stream(name)
