"""Shared resources for simulated processes.

Two primitives cover everything the FalconFS layers need:

* :class:`Resource` — a capacity-limited resource with a FIFO wait queue,
  used to model CPU cores on a server, disk channels, and connection slots.
* :class:`Store` — an unbounded FIFO buffer of items with blocking ``get``,
  used to model message queues and request queues.

Both hand out plain :class:`~repro.sim.engine.Event` objects so processes
interact with them via ``yield``, exactly like timeouts.

Cancellation discipline: a queued :class:`Request` or getter event may be
failed out-of-band (an interrupt or timeout path).  Both primitives skip
already-triggered entries when granting — waking a dead waiter would
crash the grant loop with "event already triggered" — and compact them
out of their queues so long runs do not accumulate dead events.
"""

from collections import deque
from contextlib import contextmanager

from repro.sim.engine import _PENDING, Event, SimulationError


class Request(Event):
    """Event granted by :class:`Resource.request` once capacity is free."""

    __slots__ = ("resource",)

    def __init__(self, resource):
        # Flattened Event.__init__ (no super() hop): requests are made
        # once per CPU slice / IO, one of the hottest allocation sites.
        self.env = resource.env
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self.defused = False
        self.resource = resource


class Resource:
    """A capacity-limited resource with FIFO granting.

    Example
    -------
    >>> req = cpu.request()
    >>> yield req
    >>> try:
    ...     yield env.timeout(service_time)
    ... finally:
    ...     cpu.release(req)

    or, with the context-manager helper inside a process::

    >>> with cpu.use() as req:
    ...     yield req
    ...     yield env.timeout(service_time)
    """

    __slots__ = ("env", "capacity", "_users", "_waiters")

    def __init__(self, env, capacity=1):
        if capacity < 1:
            raise SimulationError("capacity must be >= 1")
        self.env = env
        self.capacity = capacity
        self._users = set()
        self._waiters = deque()

    def __repr__(self):
        return "<Resource users={}/{} queued={}>".format(
            len(self._users), self.capacity, len(self._waiters)
        )

    @property
    def count(self):
        """Number of grants currently held."""
        return len(self._users)

    @property
    def queue_length(self):
        """Number of requests waiting for capacity."""
        return len(self._waiters)

    def request(self):
        """Return an event that fires once a unit of capacity is granted."""
        req = Request(self)
        if len(self._users) < self.capacity:
            self._users.add(req)
            req.succeed()
        else:
            self._waiters.append(req)
        return req

    def release(self, req):
        """Return a previously granted unit of capacity."""
        if req in self._users:
            self._users.remove(req)
        elif req in self._waiters:
            # Granting raced with cancellation: just drop from the queue.
            self._waiters.remove(req)
            return
        else:
            raise SimulationError("release of a request not held: {!r}".format(req))
        while self._waiters and len(self._users) < self.capacity:
            nxt = self._waiters.popleft()
            if nxt.triggered:
                # Cancelled/failed while queued (parity with Store.put's
                # cancelled-getter skip): granting would double-trigger.
                continue
            self._users.add(nxt)
            nxt.succeed()

    @contextmanager
    def use(self):
        """Context manager pairing ``request()`` with ``release()``.

        The body must still ``yield`` the request before consuming the
        resource; the manager only guarantees the release.
        """
        req = self.request()
        try:
            yield req
        finally:
            self.release(req)


class Store:
    """An unbounded FIFO item buffer with blocking ``get``.

    ``put`` never blocks (message queues in the simulated cluster are
    unbounded; backpressure appears as queueing delay, as in the paper's
    saturation experiments).  ``get`` returns an event that fires with the
    next item as soon as one is available.
    """

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env):
        self.env = env
        self._items = deque()
        self._getters = deque()

    def __repr__(self):
        return "<Store items={} getters={}>".format(
            len(self._items), len(self._getters)
        )

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Append ``item``, waking the oldest waiting getter if any."""
        # Skip getters that were cancelled (their event already failed).
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self):
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            getters = self._getters
            if getters and getters[0].triggered:
                # Compact cancelled getters eagerly rather than waiting
                # for a future put to walk past them — an idle store
                # must not pin dead events for the rest of the run.
                self._getters = getters = deque(
                    g for g in getters if not g.triggered
                )
            getters.append(event)
        return event

    def get_nowait(self):
        """Pop the next item immediately or return ``None`` if empty."""
        return self._items.popleft() if self._items else None

    def drain(self):
        """Remove and return all buffered items as a list."""
        items = list(self._items)
        self._items.clear()
        return items
