"""Discrete-event simulation engine.

A from-scratch generator-based DES kernel in the style of SimPy, providing
the time base for the simulated FalconFS cluster: an :class:`Environment`
with an event heap, :class:`Process` coroutines driven by ``yield``-ed
events, capacity-limited :class:`Resource` objects (CPU cores, disks) and
unbounded :class:`Store` queues (message channels), plus deterministic named
random streams.

Example
-------
>>> from repro.sim import Environment
>>> env = Environment()
>>> def hello(env):
...     yield env.timeout(5)
...     return env.now
>>> proc = env.process(hello(env))
>>> env.run()
>>> proc.value
5
"""

from repro.sim.engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "SimulationError",
    "Store",
    "Timeout",
]
