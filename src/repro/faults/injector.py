"""Deterministic fault schedules driven by the simulation RNG.

The injector turns "a node dies mid-run" into a reproducible experiment
input: fault times and victims are either given explicitly or drawn from
the cluster's seeded ``faults`` random stream, so the same seed yields
the same crash at the same microsecond, every run.

Determinism discipline: every random choice is made at *scheduling*
time, or (when the needed state does not exist yet, like a WAL's length)
from a per-event RNG whose seed was drawn at scheduling time.  Fire-time
draws from the shared stream would make one event's outcome depend on
how many other events fired before it — dropping an event from a
schedule (as the checker's shrinker does) must never perturb the
survivors.
"""

import random


class FaultHandle:
    """A scheduled nemesis event that its owner can drop before it fires.

    Returned by :meth:`FaultInjector.apply`; the shrinker cancels handles
    instead of rebuilding the event queue.  Cancelling after the event
    fired is a no-op.
    """

    __slots__ = ("event", "fired", "cancelled")

    def __init__(self, event):
        self.event = event
        self.fired = False
        self.cancelled = False

    def cancel(self):
        if not self.fired:
            self.cancelled = True

    def __repr__(self):
        state = ("fired" if self.fired
                 else "cancelled" if self.cancelled else "pending")
        return "<FaultHandle {} {}>".format(self.event.get("kind"), state)


class FaultInjector:
    """Schedules crashes, hangs and partitions on a cluster."""

    def __init__(self, cluster, stream="faults"):
        self.cluster = cluster
        self.env = cluster.env
        self.rng = cluster.shared.streams.stream(stream)
        #: Chronological log of injected fault events.
        self.events = []

    def _log(self, kind, target, **extra):
        event = {"kind": kind, "target": target, "at": self.env.now}
        event.update(extra)
        self.events.append(event)
        return event

    def _at(self, time_us, thunk):
        """Run ``thunk()`` at absolute sim time ``time_us``."""

        def proc():
            delay = time_us - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            thunk()

        return self.env.process(proc())

    # -- crashes ---------------------------------------------------------

    def crash_mnode_at(self, time_us, index=None):
        """Schedule an MNode crash; a random victim when ``index`` is
        None.  Returns the victim index (known up front: the draw happens
        at scheduling time so the schedule is part of the seed)."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.mnodes))

        def crash():
            lag = self.cluster.crash_mnode(index)
            self._log("crash", self.cluster.mnodes[index].name,
                      index=index, lag_at_crash=lag)

        self._at(time_us, crash)
        return index

    def crash_storage_at(self, time_us, index=None):
        """Schedule a storage-node crash (black-holed, never recovered)."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.storage))
        name = self.cluster.storage[index].name

        def crash():
            self.cluster.network.set_down(name)
            self._log("crash", name, index=index)

        self._at(time_us, crash)
        return index

    # -- restarts --------------------------------------------------------

    def restart_mnode_at(self, time_us, index):
        """Schedule a crash-restart of slot ``index``'s dead former
        occupant: redo-replay its durable WAL and either resume it as
        primary (no promotion happened yet) or rejoin it as a fresh
        standby catching up from the promoted primary.  The restart is a
        process (replay and catch-up take simulated time); its outcome
        record lands in ``cluster.restart_log``."""

        def restart():
            def proc():
                record = yield from self.cluster.restart_mnode(index)
                self._log("restart", record["name"], index=index,
                          role=record["role"],
                          replayed_txns=record["replayed_txns"],
                          torn_records=record["torn_records"])

            self.env.process(proc())

        return self._at(time_us, restart)

    # -- disk corruption -------------------------------------------------

    def corrupt_wal_at(self, time_us, index=None, lsn=None, rng_seed=None):
        """Schedule silent disk corruption of one durable WAL record on
        MNode ``index`` (a random victim when None).  The damage is only
        observable at restart: redo verification fails the record's
        checksum and truncates replay there, so everything behind it is
        lost even though it was fsynced.  ``lsn`` picks the record; when
        None it is drawn at *fire* time (the log's length is not known at
        scheduling time) — but from a private RNG seeded *now* (or by the
        caller via ``rng_seed``), so the draw depends only on this
        event's seed, never on what other injector events did first."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.mnodes))
        draw = None
        if lsn is None:
            if rng_seed is None:
                rng_seed = self.rng.getrandbits(64)
            draw = random.Random(rng_seed)

        def corrupt():
            wal = self.cluster.mnodes[index].wal
            target = lsn
            if target is None:
                if wal.durable_lsn == 0:
                    self._log("corrupt_wal_noop",
                              self.cluster.mnodes[index].name, index=index)
                    return
                target = draw.randint(1, wal.durable_lsn)
            for segment in wal.segments:
                for record in segment.records:
                    if record.lsn == target:
                        record.corrupt()
                        self._log("corrupt_wal",
                                  self.cluster.mnodes[index].name,
                                  index=index, lsn=target)
                        return

        self._at(time_us, corrupt)
        return index

    # -- hangs -----------------------------------------------------------

    def hang_at(self, time_us, name, duration_us):
        """Schedule a transient hang: ``name`` is unreachable for
        ``duration_us`` then comes back with its state intact (a GC
        pause / network brown-out, not a crash)."""

        def hang():
            self.cluster.network.set_down(name)
            self._log("hang", name, duration_us=duration_us)

            def recover():
                yield self.env.timeout(duration_us)
                self.cluster.network.set_up(name)
                self._log("unhang", name)

            self.env.process(recover())

        return self._at(time_us, hang)

    # -- partitions ------------------------------------------------------

    def partition_at(self, time_us, group_a, group_b, duration_us=None):
        """Schedule a bidirectional partition between two node-name
        groups; heals after ``duration_us`` if given, else persists."""
        group_a = list(group_a)
        group_b = list(group_b)

        def split():
            self.cluster.network.partition(group_a, group_b)
            self._log("partition", "|".join(group_a) + "//"
                      + "|".join(group_b), duration_us=duration_us)

            if duration_us is not None:
                def heal():
                    yield self.env.timeout(duration_us)
                    self.cluster.network.heal(group_a, group_b)
                    self._log("heal", "|".join(group_a) + "//"
                              + "|".join(group_b))

                self.env.process(heal())

        return self._at(time_us, split)

    # -- randomized schedules -------------------------------------------

    def crash_random_mnode_between(self, lo_us, hi_us):
        """Crash one RNG-chosen MNode at an RNG-chosen time in
        [lo_us, hi_us).  Returns ``(index, time_us)``."""
        time_us = self.rng.uniform(lo_us, hi_us)
        index = self.crash_mnode_at(time_us)
        return index, time_us

    # -- declarative schedules (the simulation checker's interface) ------

    def apply(self, event):
        """Schedule one declarative nemesis event; returns a
        :class:`FaultHandle` the owner can :meth:`~FaultHandle.cancel`
        before it fires.

        ``event`` is a plain dict from a generated schedule::

            {"kind": "crash",      "at_us": t, "index": i}
            {"kind": "restart",    "at_us": t, "index": i}
            {"kind": "hang",       "at_us": t, "index": i, "duration_us": d}
            {"kind": "partition",  "at_us": t, "index": i, "duration_us": d}
            {"kind": "corrupt_wal","at_us": t, "index": i, "rng_seed": s}

        Every random choice is pinned inside the event (victims at
        generation time, fire-time draws via ``rng_seed``), so cancelling
        any subset of events never perturbs the survivors — the property
        the shrinker's drop-and-replay discipline rests on.  ``hang`` and
        ``partition`` target MNode slot ``index`` (a partition isolates
        the slot's primary plus its standby from everything else, so
        log shipping keeps flowing on the minority side).
        """
        kind = event["kind"]
        index = event.get("index")
        handle = FaultHandle(event)
        cluster = self.cluster

        if kind == "crash":
            def thunk():
                if index in cluster._crashed:
                    self._log("crash_noop", cluster.mnodes[index].name,
                              index=index)
                    return
                lag = cluster.crash_mnode(index)
                self._log("crash", cluster.mnodes[index].name,
                          index=index, lag_at_crash=lag)
        elif kind == "restart":
            def thunk():
                if index not in cluster._crashed:
                    self._log("restart_noop", cluster.mnodes[index].name,
                              index=index)
                    return

                def proc():
                    record = yield from cluster.restart_mnode(index)
                    self._log("restart", record["name"], index=index,
                              role=record["role"],
                              replayed_txns=record["replayed_txns"],
                              torn_records=record["torn_records"])

                self.env.process(proc())
        elif kind == "hang":
            def thunk():
                name = cluster.mnodes[index].name
                if cluster.network.is_down(name):
                    self._log("hang_noop", name, index=index)
                    return
                cluster.network.set_down(name)
                self._log("hang", name, index=index,
                          duration_us=event["duration_us"])

                def recover():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.set_up(name)
                    self._log("unhang", name, index=index)

                self.env.process(recover())
        elif kind == "partition":
            def thunk():
                isolated = [cluster.mnodes[index].name]
                if (index < len(cluster.standbys)
                        and cluster.standbys[index] is not None):
                    isolated.append(cluster.standbys[index].name)
                others = [
                    node.name
                    for node in (cluster.mnodes + cluster.standbys
                                 + [cluster.coordinator]
                                 + cluster.storage + cluster.clients)
                    if node is not None and node.name not in isolated
                ]
                cluster.network.partition(isolated, others)
                self._log("partition", "|".join(isolated), index=index,
                          duration_us=event["duration_us"])

                def heal():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.heal(isolated, others)
                    self._log("partition_heal", "|".join(isolated),
                              index=index)

                self.env.process(heal())
        elif kind == "corrupt_wal":
            draw = random.Random(event["rng_seed"])

            def thunk():
                wal = cluster.mnodes[index].wal
                if wal.durable_lsn == 0:
                    self._log("corrupt_wal_noop",
                              cluster.mnodes[index].name, index=index)
                    return
                target = draw.randint(1, wal.durable_lsn)
                for segment in wal.segments:
                    for record in segment.records:
                        if record.lsn == target:
                            record.corrupt()
                            self._log("corrupt_wal",
                                      cluster.mnodes[index].name,
                                      index=index, lsn=target)
                            return
        else:
            raise ValueError("unknown nemesis kind: {!r}".format(kind))

        def guarded():
            if handle.cancelled:
                return
            handle.fired = True
            thunk()

        self._at(event["at_us"], guarded)
        return handle
