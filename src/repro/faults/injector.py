"""Deterministic fault schedules driven by the simulation RNG.

The injector turns "a node dies mid-run" into a reproducible experiment
input: fault times and victims are either given explicitly or drawn from
the cluster's seeded ``faults`` random stream, so the same seed yields
the same crash at the same microsecond, every run.

Determinism discipline: every random choice is made at *scheduling*
time, or (when the needed state does not exist yet, like a WAL's length)
from a per-event RNG whose seed was drawn at scheduling time.  Fire-time
draws from the shared stream would make one event's outcome depend on
how many other events fired before it — dropping an event from a
schedule (as the checker's shrinker does) must never perturb the
survivors.
"""

import random

from repro.core.records import INVALID, VALID
from repro.storage.wal import DiskSlowdown


class FaultHandle:
    """A scheduled nemesis event that its owner can drop before it fires.

    Returned by :meth:`FaultInjector.apply`; the shrinker cancels handles
    instead of rebuilding the event queue.  Cancelling after the event
    fired is a no-op.
    """

    __slots__ = ("event", "fired", "cancelled")

    def __init__(self, event):
        self.event = event
        self.fired = False
        self.cancelled = False

    def cancel(self):
        if not self.fired:
            self.cancelled = True

    def __repr__(self):
        state = ("fired" if self.fired
                 else "cancelled" if self.cancelled else "pending")
        return "<FaultHandle {} {}>".format(self.event.get("kind"), state)


class FaultInjector:
    """Schedules crashes, hangs and partitions on a cluster."""

    def __init__(self, cluster, stream="faults"):
        self.cluster = cluster
        self.env = cluster.env
        self.rng = cluster.shared.streams.stream(stream)
        #: Chronological log of injected fault events.
        self.events = []

    def _log(self, kind, target, **extra):
        event = {"kind": kind, "target": target, "at": self.env.now}
        event.update(extra)
        self.events.append(event)
        return event

    def _at(self, time_us, thunk):
        """Run ``thunk()`` at absolute sim time ``time_us``."""

        def proc():
            delay = time_us - self.env.now
            if delay > 0:
                yield self.env.timeout(delay)
            thunk()

        return self.env.process(proc())

    # -- crashes ---------------------------------------------------------

    def crash_mnode_at(self, time_us, index=None):
        """Schedule an MNode crash; a random victim when ``index`` is
        None.  Returns the victim index (known up front: the draw happens
        at scheduling time so the schedule is part of the seed)."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.mnodes))

        def crash():
            lag = self.cluster.crash_mnode(index)
            self._log("crash", self.cluster.mnodes[index].name,
                      index=index, lag_at_crash=lag)

        self._at(time_us, crash)
        return index

    def crash_storage_at(self, time_us, index=None):
        """Schedule a storage-node crash (black-holed, never recovered)."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.storage))
        name = self.cluster.storage[index].name

        def crash():
            self.cluster.network.set_down(name)
            self._log("crash", name, index=index)

        self._at(time_us, crash)
        return index

    # -- restarts --------------------------------------------------------

    def restart_mnode_at(self, time_us, index):
        """Schedule a crash-restart of slot ``index``'s dead former
        occupant: redo-replay its durable WAL and either resume it as
        primary (no promotion happened yet) or rejoin it as a fresh
        standby catching up from the promoted primary.  The restart is a
        process (replay and catch-up take simulated time); its outcome
        record lands in ``cluster.restart_log``."""

        def restart():
            def proc():
                record = yield from self.cluster.restart_mnode(index)
                self._log("restart", record["name"], index=index,
                          role=record["role"],
                          replayed_txns=record["replayed_txns"],
                          torn_records=record["torn_records"])

            self.env.process(proc())

        return self._at(time_us, restart)

    # -- disk corruption -------------------------------------------------

    def corrupt_wal_at(self, time_us, index=None, lsn=None, rng_seed=None):
        """Schedule silent disk corruption of one durable WAL record on
        MNode ``index`` (a random victim when None).  The damage is only
        observable at restart: redo verification fails the record's
        checksum and truncates replay there, so everything behind it is
        lost even though it was fsynced.  ``lsn`` picks the record; when
        None it is drawn at *fire* time (the log's length is not known at
        scheduling time) — but from a private RNG seeded *now* (or by the
        caller via ``rng_seed``), so the draw depends only on this
        event's seed, never on what other injector events did first."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.mnodes))
        draw = None
        if lsn is None:
            if rng_seed is None:
                rng_seed = self.rng.getrandbits(64)
            draw = random.Random(rng_seed)

        def corrupt():
            wal = self.cluster.mnodes[index].wal
            target = lsn
            if target is None:
                if wal.durable_lsn == 0:
                    self._log("corrupt_wal_noop",
                              self.cluster.mnodes[index].name, index=index)
                    return
                target = draw.randint(1, wal.durable_lsn)
            for segment in wal.segments:
                for record in segment.records:
                    if record.lsn == target:
                        record.corrupt()
                        self._log("corrupt_wal",
                                  self.cluster.mnodes[index].name,
                                  index=index, lsn=target)
                        return

        self._at(time_us, corrupt)
        return index

    # -- hangs -----------------------------------------------------------

    def hang_at(self, time_us, name, duration_us):
        """Schedule a transient hang: ``name`` is unreachable for
        ``duration_us`` then comes back with its state intact (a GC
        pause / network brown-out, not a crash)."""

        def hang():
            self.cluster.network.set_down(name)
            self._log("hang", name, duration_us=duration_us)

            def recover():
                yield self.env.timeout(duration_us)
                self.cluster.network.set_up(name)
                self._log("unhang", name)

            self.env.process(recover())

        return self._at(time_us, hang)

    # -- partitions ------------------------------------------------------

    def partition_at(self, time_us, group_a, group_b, duration_us=None):
        """Schedule a bidirectional partition between two node-name
        groups; heals after ``duration_us`` if given, else persists."""
        group_a = list(group_a)
        group_b = list(group_b)

        def split():
            self.cluster.network.partition(group_a, group_b)
            self._log("partition", "|".join(group_a) + "//"
                      + "|".join(group_b), duration_us=duration_us)

            if duration_us is not None:
                def heal():
                    yield self.env.timeout(duration_us)
                    self.cluster.network.heal(group_a, group_b)
                    self._log("heal", "|".join(group_a) + "//"
                              + "|".join(group_b))

                self.env.process(heal())

        return self._at(time_us, split)

    # -- gray failures ---------------------------------------------------
    #
    # Slow-not-dead modes: the victim keeps answering, so the failure
    # detector must NOT promote around it (the primary still holds all
    # the data) — these windows stress the degraded-but-alive paths:
    # retry storms, detection flapping, replication retransmission.

    def slow_disk_at(self, time_us, index=None, duration_us=3000.0,
                     fsync_factor=8.0, bandwidth_factor=4.0,
                     ramp_us=500.0):
        """Schedule a gray disk slowdown on MNode ``index``'s WAL: fsync
        latency ramps toward ``fsync_factor``× and per-byte bandwidth
        cost toward ``bandwidth_factor``× over ``ramp_us``, holds for
        ``duration_us``, then clears.  The node never stops answering —
        only its commits get slow."""
        if index is None:
            index = self.rng.randrange(len(self.cluster.mnodes))

        def slow():
            node = self.cluster.mnodes[index]
            slowdown = DiskSlowdown(
                self.env.now, duration_us, fsync_factor=fsync_factor,
                bandwidth_factor=bandwidth_factor, ramp_us=ramp_us,
            )
            node.wal.slow_disk = slowdown
            self._log("slow_disk", node.name, index=index,
                      duration_us=duration_us, fsync_factor=fsync_factor,
                      bandwidth_factor=bandwidth_factor)

            def clear():
                yield self.env.timeout(duration_us)
                # Clear by identity: a restart may have swapped the WAL
                # (or another window installed a new slowdown) since.
                current = self.cluster.mnodes[index]
                if current.wal.slow_disk is slowdown:
                    current.wal.slow_disk = None
                self._log("slow_disk_end", current.name, index=index)

            self.env.process(clear())

        self._at(time_us, slow)
        return index

    def degrade_link_at(self, time_us, name, duration_us,
                        latency_factor=1.0, loss_prob=0.0,
                        reorder_window_us=0.0, rng_seed=None):
        """Schedule gray link degradation on every hop touching
        ``name``: latency stretched by ``latency_factor``, each message
        independently lost with ``loss_prob``, and up to
        ``reorder_window_us`` of seeded jitter per hop (which breaks
        per-link FIFO).  Heals after ``duration_us``.  All draws come
        from ``rng_seed`` (drawn from the shared stream *now* when not
        given), so the window replays identically regardless of what
        other events fired."""
        if rng_seed is None:
            rng_seed = self.rng.getrandbits(64)

        def degrade():
            self.cluster.network.degrade_link(
                name, latency_factor=latency_factor, loss_prob=loss_prob,
                reorder_window_us=reorder_window_us, rng_seed=rng_seed,
            )
            self._log("degrade_link", name, duration_us=duration_us,
                      latency_factor=latency_factor, loss_prob=loss_prob,
                      reorder_window_us=reorder_window_us)

            def heal():
                yield self.env.timeout(duration_us)
                self.cluster.network.restore_link(name)
                self._log("degrade_heal", name)

            self.env.process(heal())

        return self._at(time_us, degrade)

    def skew_clock_at(self, time_us, name, offset_us=0.0, drift_ppm=0.0,
                      duration_us=None):
        """Schedule a clock skew on node ``name``: its local clock view
        jumps by ``offset_us`` and thereafter runs fast/slow by
        ``drift_ppm`` parts-per-million.  Resets after ``duration_us``
        when given (an operator fixing NTP), else persists.  Deadline
        stamping, backoff arithmetic and — when ``name`` is the
        coordinator — the heartbeat cadence all read this view."""

        def skew():
            self.env.clock(name).skew(offset_us=offset_us,
                                      drift_ppm=drift_ppm)
            self._log("skew_clock", name, offset_us=offset_us,
                      drift_ppm=drift_ppm, duration_us=duration_us)

            if duration_us is not None:
                def unskew():
                    yield self.env.timeout(duration_us)
                    self.env.clock(name).reset()
                    self._log("skew_heal", name)

                self.env.process(unskew())

        return self._at(time_us, skew)

    def stampede_at(self, time_us):
        """Schedule a cache stampede: every non-owned VALID dentry
        replica on every alive MNode (and the coordinator) is
        invalidated at once, and every client's dentry cache is
        dropped — the synchronized refetch storm a mass invalidation
        (e.g. a directory-tree migration) unleashes in production."""

        def stampede():
            invalidated = self._stampede()
            self._log("stampede", "all", invalidated=invalidated)

        return self._at(time_us, stampede)

    def _stampede(self):
        cluster = self.cluster
        invalidated = 0
        for node in [*cluster.mnodes, cluster.coordinator]:
            if node.halted or cluster.network.is_down(node.name):
                continue
            for key, record in list(node.dentries.scan()):
                if record.state == VALID and not node._owns_dentry(key):
                    # Mirrors the invalidation protocol's receiving
                    # side (seq bump + INVALID mark) without its
                    # X-lock: a stampede is exactly the case where
                    # invalidations land faster than lock discipline.
                    node.inval_seq[("d",) + key] += 1
                    record.state = INVALID
                    invalidated += 1
        for client in cluster.clients:
            invalidated += len(client.dcache.entries())
            client.dcache.clear()
        return invalidated

    def _everyone_but(self, isolated):
        """Every live node name outside ``isolated`` — mnodes, standbys,
        witnesses (consensus mode), coordinator, storage, clients."""
        cluster = self.cluster
        return [
            node.name
            for node in (cluster.mnodes + cluster.standbys
                         + list(getattr(cluster, "witnesses", []))
                         + [cluster.coordinator]
                         + cluster.storage + cluster.clients)
            if node is not None and node.name not in isolated
        ]

    # -- randomized schedules -------------------------------------------

    def crash_random_mnode_between(self, lo_us, hi_us):
        """Crash one RNG-chosen MNode at an RNG-chosen time in
        [lo_us, hi_us).  Returns ``(index, time_us)``."""
        time_us = self.rng.uniform(lo_us, hi_us)
        index = self.crash_mnode_at(time_us)
        return index, time_us

    # -- declarative schedules (the simulation checker's interface) ------

    def apply(self, event):
        """Schedule one declarative nemesis event; returns a
        :class:`FaultHandle` the owner can :meth:`~FaultHandle.cancel`
        before it fires.

        ``event`` is a plain dict from a generated schedule::

            {"kind": "crash",      "at_us": t, "index": i}
            {"kind": "restart",    "at_us": t, "index": i}
            {"kind": "hang",       "at_us": t, "index": i, "duration_us": d}
            {"kind": "partition",  "at_us": t, "index": i, "duration_us": d}
            {"kind": "corrupt_wal","at_us": t, "index": i, "rng_seed": s}
            {"kind": "slow_disk",  "at_us": t, "index": i, "duration_us": d,
             "fsync_factor": f, "bandwidth_factor": b, "ramp_us": r}
            {"kind": "degrade_link", "at_us": t, "index": i,
             "duration_us": d, "latency_factor": f, "loss_prob": p,
             "reorder_window_us": w, "rng_seed": s}
            {"kind": "skew_clock", "at_us": t, "index": i | "target":
             "coordinator", "duration_us": d, "offset_us": o,
             "drift_ppm": ppm}
            {"kind": "stampede",   "at_us": t}
            {"kind": "leader_partition", "at_us": t, "index": i,
             "duration_us": d}
            {"kind": "split_brain", "at_us": t, "index": i,
             "duration_us": d}
            {"kind": "asymm_partition", "at_us": t, "index": i,
             "duration_us": d, "direction": "inbound" | "outbound"}

        Every random choice is pinned inside the event (victims at
        generation time, fire-time draws via ``rng_seed``), so cancelling
        any subset of events never perturbs the survivors — the property
        the shrinker's drop-and-replay discipline rests on.  ``hang`` and
        ``partition`` target MNode slot ``index`` (a partition isolates
        the slot's primary plus its standby from everything else, so
        log shipping keeps flowing on the minority side).
        """
        kind = event["kind"]
        index = event.get("index")
        handle = FaultHandle(event)
        cluster = self.cluster

        if kind == "crash":
            def thunk():
                if index in cluster._crashed:
                    self._log("crash_noop", cluster.mnodes[index].name,
                              index=index)
                    return
                lag = cluster.crash_mnode(index)
                self._log("crash", cluster.mnodes[index].name,
                          index=index, lag_at_crash=lag)
        elif kind == "restart":
            def thunk():
                if index not in cluster._crashed:
                    self._log("restart_noop", cluster.mnodes[index].name,
                              index=index)
                    return

                def proc():
                    record = yield from cluster.restart_mnode(index)
                    self._log("restart", record["name"], index=index,
                              role=record["role"],
                              replayed_txns=record["replayed_txns"],
                              torn_records=record["torn_records"])

                self.env.process(proc())
        elif kind == "hang":
            def thunk():
                name = cluster.mnodes[index].name
                if cluster.network.is_down(name):
                    self._log("hang_noop", name, index=index)
                    return
                cluster.network.set_down(name)
                self._log("hang", name, index=index,
                          duration_us=event["duration_us"])

                def recover():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.set_up(name)
                    self._log("unhang", name, index=index)

                self.env.process(recover())
        elif kind == "partition":
            def thunk():
                isolated = [cluster.mnodes[index].name]
                if (index < len(cluster.standbys)
                        and cluster.standbys[index] is not None):
                    isolated.append(cluster.standbys[index].name)
                others = self._everyone_but(isolated)
                cluster.network.partition(isolated, others)
                self._log("partition", "|".join(isolated), index=index,
                          duration_us=event["duration_us"])

                def heal():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.heal(isolated, others)
                    self._log("partition_heal", "|".join(isolated),
                              index=index)

                self.env.process(heal())
        elif kind == "leader_partition":
            def thunk():
                # Isolate ONLY the slot's current leader (resolved at
                # fire time — it may be an elected -pN incarnation).
                # The minority-of-one scenario: the leader can reach no
                # member, so it must never acknowledge another write;
                # the follower and witness elect a successor.
                isolated = [cluster.mnodes[index].name]
                others = self._everyone_but(isolated)
                cluster.network.partition(isolated, others)
                self._log("leader_partition", isolated[0], index=index,
                          duration_us=event["duration_us"])

                def heal():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.heal(isolated, others)
                    self._log("leader_partition_heal", isolated[0],
                              index=index)

                self.env.process(heal())
        elif kind == "split_brain":
            def thunk():
                # Leader + witness on one side, the data follower (and
                # every client) on the other.  The leader retains a
                # 2-of-3 quorum through the witness, and the follower
                # must NOT be electable (the witness refuses its vote:
                # it hears the live leader).  Availability loss for the
                # partitioned clients, never a second leader.
                isolated = [cluster.mnodes[index].name]
                if index < len(cluster.witnesses):
                    isolated.append(cluster.witnesses[index].name)
                others = self._everyone_but(isolated)
                cluster.network.partition(isolated, others)
                self._log("split_brain", "|".join(isolated), index=index,
                          duration_us=event["duration_us"])

                def heal():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.heal(isolated, others)
                    self._log("split_brain_heal", "|".join(isolated),
                              index=index)

                self.env.process(heal())
        elif kind == "asymm_partition":
            def thunk():
                # Directed link loss inside the slot's consensus group.
                # "inbound": member->leader traffic is lost — members
                # still hear appends (no election) but the leader never
                # hears acks, so its lease lapses and it must stop
                # acknowledging (availability gap, no promotion).
                # "outbound": leader->member traffic is lost — members
                # go silent and elect while the old leader, deaf by
                # lease lapse, fences itself.
                leader = [cluster.mnodes[index].name]
                members = []
                if (index < len(cluster.standbys)
                        and cluster.standbys[index] is not None):
                    members.append(cluster.standbys[index].name)
                if index < len(cluster.witnesses):
                    members.append(cluster.witnesses[index].name)
                direction = event.get("direction", "outbound")
                if direction == "inbound":
                    srcs, dsts = members, leader
                else:
                    srcs, dsts = leader, members
                cluster.network.partition_directed(srcs, dsts)
                self._log("asymm_partition", leader[0], index=index,
                          direction=direction,
                          duration_us=event["duration_us"])

                def heal():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.heal(srcs, dsts)
                    self._log("asymm_partition_heal", leader[0],
                              index=index)

                self.env.process(heal())
        elif kind == "slow_disk":
            def thunk():
                node = cluster.mnodes[index]
                slowdown = DiskSlowdown(
                    self.env.now, event["duration_us"],
                    fsync_factor=event.get("fsync_factor", 8.0),
                    bandwidth_factor=event.get("bandwidth_factor", 4.0),
                    ramp_us=event.get("ramp_us", 500.0),
                )
                node.wal.slow_disk = slowdown
                self._log("slow_disk", node.name, index=index,
                          duration_us=event["duration_us"],
                          fsync_factor=slowdown.fsync_factor,
                          bandwidth_factor=slowdown.bandwidth_factor)

                def clear():
                    yield self.env.timeout(event["duration_us"])
                    current = cluster.mnodes[index]
                    if current.wal.slow_disk is slowdown:
                        current.wal.slow_disk = None
                    self._log("slow_disk_end", current.name, index=index)

                self.env.process(clear())
        elif kind == "degrade_link":
            def thunk():
                # Degrade the *current* slot occupant's links (the name
                # is resolved at fire time, like crash targets slots).
                name = cluster.mnodes[index].name
                if cluster.network.is_degraded(name):
                    self._log("degrade_noop", name, index=index)
                    return
                cluster.network.degrade_link(
                    name,
                    latency_factor=event.get("latency_factor", 1.0),
                    loss_prob=event.get("loss_prob", 0.0),
                    reorder_window_us=event.get("reorder_window_us", 0.0),
                    rng_seed=event["rng_seed"],
                )
                self._log("degrade_link", name, index=index,
                          duration_us=event["duration_us"],
                          latency_factor=event.get("latency_factor", 1.0),
                          loss_prob=event.get("loss_prob", 0.0),
                          reorder_window_us=event.get(
                              "reorder_window_us", 0.0))

                def heal():
                    yield self.env.timeout(event["duration_us"])
                    cluster.network.restore_link(name)
                    self._log("degrade_heal", name, index=index)

                self.env.process(heal())
        elif kind == "skew_clock":
            def thunk():
                if event.get("target") == "coordinator":
                    name = cluster.coordinator.name
                else:
                    name = cluster.mnodes[index].name
                self.env.clock(name).skew(
                    offset_us=event.get("offset_us", 0.0),
                    drift_ppm=event.get("drift_ppm", 0.0),
                )
                self._log("skew_clock", name, index=index,
                          offset_us=event.get("offset_us", 0.0),
                          drift_ppm=event.get("drift_ppm", 0.0),
                          duration_us=event["duration_us"])

                def unskew():
                    yield self.env.timeout(event["duration_us"])
                    self.env.clock(name).reset()
                    self._log("skew_heal", name, index=index)

                self.env.process(unskew())
        elif kind == "stampede":
            def thunk():
                invalidated = self._stampede()
                self._log("stampede", "all", invalidated=invalidated)
        elif kind == "migrate_slot":
            def thunk():
                # Online slot handoff under whatever chaos the rest of
                # the schedule injects.  Slot and destination were drawn
                # at generation time; a no-op draw (the slot already
                # lives on the destination) is logged and skipped so
                # dropping other events never perturbs this one.  The
                # saga itself runs on the coordinator and must commit or
                # roll back cleanly under ALL interleavings — migration
                # introduces no oracle excusals.
                coordinator = cluster.coordinator
                slot = event["slot"]
                dest = event["dest"]
                if cluster.shared.slot_map.node_of(slot) == dest:
                    self._log("migrate_noop", "slot-{}".format(slot),
                              slot=slot, dest=dest)
                    return
                self._log("migrate_slot", "slot-{}".format(slot),
                          slot=slot, dest=dest)

                def proc():
                    record = yield from coordinator.migrate_slot(
                        slot, dest, reason="nemesis")
                    if record is not None:
                        self._log("migrate_done", "slot-{}".format(slot),
                                  slot=slot, dest=dest,
                                  status=record["status"])

                self.env.process(proc())
        elif kind == "corrupt_wal":
            draw = random.Random(event["rng_seed"])

            def thunk():
                wal = cluster.mnodes[index].wal
                if wal.durable_lsn == 0:
                    self._log("corrupt_wal_noop",
                              cluster.mnodes[index].name, index=index)
                    return
                target = draw.randint(1, wal.durable_lsn)
                for segment in wal.segments:
                    for record in segment.records:
                        if record.lsn == target:
                            record.corrupt()
                            self._log("corrupt_wal",
                                      cluster.mnodes[index].name,
                                      index=index, lsn=target)
                            return
        else:
            raise ValueError("unknown nemesis kind: {!r}".format(kind))

        def guarded():
            if handle.cancelled:
                return
            handle.fired = True
            thunk()

        self._at(event["at_us"], guarded)
        return handle
