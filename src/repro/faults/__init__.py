"""Deterministic fault injection and failure detection.

FalconFS's MNodes inherit PostgreSQL primary-standby replication
(§4.3/§4.4 of the paper), and :mod:`repro.storage.replication`
implements the log shipping — this package supplies the rest of the
failure story, as reproducible simulation components:

* :class:`FaultInjector` — schedules crashes, hangs and network
  partitions at simulated times drawn from the cluster's seeded RNG
  streams, so a failure schedule is part of the experiment seed;
* :class:`FailureDetector` — the coordinator's heartbeat/lease monitor:
  periodic pings with a per-ping timeout, a consecutive-miss threshold,
  and an ``on_failure`` hook that drives promotion (by default the
  cluster's full :meth:`~repro.core.cluster.FalconCluster.fail_over`
  recovery path).

The network layer (:class:`repro.net.Network`) models the faults
themselves: traffic to or from a down node is black-holed, which the
deadline/retry machinery in :mod:`repro.obs.retry` converts into
timeouts and transparent retries against the promoted standby.
"""

from repro.faults.detector import FailureDetector
from repro.faults.injector import FaultInjector

__all__ = ["FailureDetector", "FaultInjector"]
