"""Heartbeat failure detection on the coordinator.

The coordinator periodically pings every MNode *slot* in the cluster
directory with a per-ping timeout; a slot that misses
``miss_threshold`` consecutive pings is declared dead and the
``on_failure`` hook (normally the cluster's promote-and-repair path) is
spawned for it.  Pinging slots rather than names means monitoring heals
itself: once failover installs the promoted standby in the directory,
the same slot resolves to the live replacement.

Detection latency is therefore bounded by roughly
``miss_threshold * interval + timeout`` — the availability-gap floor
the failover experiment measures against.

Under the consensus tier (``config.consensus``) the detector runs
**observe-only**: ``on_failure`` stays ``None``, so declarations are
logged and counted but never ordain a promotion — recovery is decided
by election timeouts at the data followers instead, and the detection
metrics remain comparable across the two recovery regimes.
"""

from collections import defaultdict

from repro.net.rpc import RpcFailure
from repro.obs import NULL_CONTEXT, deadline_call


class FailureDetector:
    """Coordinator-side heartbeat/lease monitor for the MNode ring."""

    def __init__(self, coordinator, shared, on_failure=None,
                 interval_us=None, timeout_us=None, miss_threshold=None):
        cfg = shared.config
        self.node = coordinator
        self.shared = shared
        self.env = coordinator.env
        self.on_failure = on_failure
        self.interval_us = (interval_us if interval_us is not None
                            else cfg.heartbeat_interval_us)
        self.timeout_us = (timeout_us if timeout_us is not None
                           else cfg.heartbeat_timeout_us)
        self.miss_threshold = (miss_threshold if miss_threshold is not None
                               else cfg.heartbeat_miss_threshold)
        #: Consecutive misses per slot index.
        self.misses = defaultdict(int)
        #: Slots declared dead and not yet recovered (not pinged).
        self.declared = set()
        #: Detection log: one record per declared failure.
        self.log = []
        self._running = False
        self._proc = None

    def start(self):
        """Start the heartbeat loop; returns its process."""
        if self._running:
            return self._proc
        self._running = True
        self._proc = self.env.process(self._loop())
        return self._proc

    def stop(self):
        """Ask the loop to exit at its next wakeup."""
        self._running = False

    def _loop(self):
        """Fixed-rate tick: probes are spawned at ``interval_us`` cadence
        and *not* joined.

        Joining them (as this loop once did) made the effective period
        ``interval + slowest ping RTT``, so a slow-not-dead link
        silently stretched detection latency past the documented
        ``miss_threshold * interval + timeout`` floor.  Each probe is
        already bounded by ``timeout_us``, so an unjoined straggler can
        overlap the next tick at most briefly.  Tick arithmetic runs on
        the coordinator's *local* clock: skewing it genuinely changes
        the heartbeat cadence the cluster experiences.
        """
        clock = self.node.clock
        next_due = clock.now_us() + self.interval_us
        while self._running:
            delay = next_due - clock.now_us()
            if delay > 0:
                yield self.env.timeout(clock.to_env_delay(delay))
            if not self._running:
                return
            next_due += self.interval_us
            if next_due < clock.now_us():
                # Fell behind (huge skew step or a stalled env): skip
                # missed ticks rather than firing a probe burst.
                next_due = clock.now_us() + self.interval_us
            for index in range(len(self.shared.mnode_names)):
                if index not in self.declared:
                    self.env.process(self._ping(index))

    def _ping(self, index):
        # Physical-node resolution, not slot resolution: liveness is a
        # property of machines, and under an elastic slot map the two
        # diverge (a node may host any number of slots, including none).
        target = self.shared.node_name(index)
        try:
            yield from deadline_call(
                self.node, NULL_CONTEXT, target, "ping", {},
                timeout_us=self.timeout_us,
            )
        except RpcFailure:
            self.misses[index] += 1
            if (self.misses[index] >= self.miss_threshold
                    and index not in self.declared):
                self._declare(index, target)
        else:
            self.misses[index] = 0

    def _declare(self, index, target):
        self.declared.add(index)
        self.log.append({
            "index": index, "name": target, "declared_at": self.env.now,
            "misses": self.misses[index],
        })
        self.node.metrics.counter("failures_declared").inc()
        if self.on_failure is not None:
            self.env.process(self._recover(index))

    def _recover(self, index):
        result = yield from self.on_failure(index)
        # The directory slot now resolves to the replacement (or to the
        # redo-recovered original, when restart won the race and the
        # failover was suppressed); resume monitoring it.
        self.misses[index] = 0
        self.declared.discard(index)
        return result

    def node_restarted(self, index):
        """A crashed node redo-recovered and re-registered under its
        slot.  Pending misses are forgiven immediately so a declaration
        does not fire on stale evidence; a slot already declared keeps
        its in-flight recovery, whose promotion the coordinator
        suppresses on arrival when it finds the slot answering again.
        """
        self.misses[index] = 0
