"""Concurrent request merging (§4.4): typed queues and the worker pool.

Each MNode runs a fixed set of database worker processes behind a
connection pool.  Incoming client requests are classified into per-type
queues; an idle worker takes a whole queue and executes it as a single
batch (one transaction), which lets the executor coalesce lock
acquisitions and WAL appends.

With ``merging`` disabled (the *no merge* ablation of Fig 15a) the batch
size is one and every dispatch serializes through a shared queue lock —
the request-dispatch contention the paper identifies as the bottleneck.
"""

from collections import deque


class WorkerPool:
    """Schedules batches of same-kind requests onto worker processes.

    ``executor(kind, batch)`` is a generator invoked by a worker with a
    non-empty list of messages; it owns all timing (dispatch, CPU, WAL)
    and responding.
    """

    def __init__(self, env, executor, workers, max_batch=32,
                 linger_us=0.0, merging=True):
        self.env = env
        self.executor = executor
        self.max_batch = max_batch if merging else 1
        self.linger_us = linger_us if merging else 0.0
        self.merging = merging
        #: Serializes dispatch in the no-merge configuration (shared
        #: request-queue contention).
        self.dispatch_lock = env.resource(capacity=1)
        self._queues = {}
        self._ready = env.store()
        self._scheduled = set()
        self.batches_executed = 0
        self.requests_executed = 0
        for _ in range(workers):
            env.process(self._worker())

    def submit(self, kind, message):
        """Enqueue a request; wakes a worker if the queue was idle."""
        queue = self._queues.get(kind)
        if queue is None:
            queue = deque()
            self._queues[kind] = queue
        queue.append(message)
        if kind not in self._scheduled:
            self._scheduled.add(kind)
            self._ready.put(kind)

    @property
    def backlog(self):
        return sum(len(q) for q in self._queues.values())

    @property
    def average_batch_size(self):
        if self.batches_executed == 0:
            return 0.0
        return self.requests_executed / self.batches_executed

    def _worker(self):
        while True:
            kind = yield self._ready.get()
            if self.linger_us:
                # Brief accumulation window: trades a little latency for
                # larger batches (visible in Fig 11 vs Fig 10).
                yield self.env.schedule_timeout(self.linger_us)
            queue = self._queues[kind]
            pop = queue.popleft
            batch = [pop() for _ in range(min(len(queue), self.max_batch))]
            if queue:
                # Leftovers: hand the kind to the next idle worker.
                self._ready.put(kind)
            else:
                # No yield since the drain: the queue cannot have refilled.
                self._scheduled.discard(kind)
            if not batch:
                continue
            self.batches_executed += 1
            self.requests_executed += len(batch)
            yield from self.executor(kind, batch)
