"""Cluster-wide configuration and shared context.

Also home of the **epoch-stamped slot map**: hybrid indexing hashes a
directory name to a *slot*, and the slot map says which physical MNode
currently hosts that slot.  Statically the map is the identity
(slot ``i`` lives on node ``i``) and nothing behaves differently from a
fixed ring; online migration reassigns one slot at a time, bumping the
map's epoch, and stale-epoch requests bounce with ``EMOVED`` until the
client refreshes its private copy — the elastic-namespace analogue of
the lazy exception-table refresh.
"""

from dataclasses import dataclass

from repro.core.records import InodeAllocator
from repro.net.costs import CostModel
from repro.obs.tracer import NULL_TRACER
from repro.sim.rng import RandomStreams


class SlotMap:
    """Versioned slot -> MNode-index assignment.

    The authoritative copy lives on :class:`ClusterShared` and is only
    mutated by the coordinator (the epoch authority); clients hold
    private copies that go stale and are patched lazily from ``EMOVED``
    bounces.  Every reassignment bumps ``epoch`` by one, so "my epoch is
    older than the slot's move" is decidable from the integer alone.
    """

    __slots__ = ("owners", "epoch", "versions")

    def __init__(self, owners, epoch=0, versions=None):
        #: ``owners[slot]`` is the physical node index hosting ``slot``.
        self.owners = list(owners)
        self.epoch = epoch
        #: ``versions[slot]`` is the epoch at which ``slot`` last moved
        #: (0 = the seed assignment).  Patches are judged per slot: a
        #: client that absorbed a high-epoch hint for one slot must
        #: still accept an older hint about a *different* slot it has
        #: never heard about.
        self.versions = (list(versions) if versions is not None
                         else [0] * len(self.owners))

    @classmethod
    def identity(cls, num_slots):
        return cls(range(num_slots))

    @property
    def num_slots(self):
        return len(self.owners)

    def node_of(self, slot):
        return self.owners[slot]

    def slots_of(self, node_index):
        """Every slot currently hosted by physical node ``node_index``."""
        return [slot for slot, owner in enumerate(self.owners)
                if owner == node_index]

    def assign(self, slot, node_index):
        """Reassign ``slot`` to ``node_index`` and bump the epoch."""
        self.owners[slot] = node_index
        self.epoch += 1
        self.versions[slot] = self.epoch
        return self.epoch

    def version_of(self, slot):
        """Epoch at which ``slot`` last changed owner (0 = seed)."""
        return self.versions[slot]

    def copy(self):
        return SlotMap(self.owners, self.epoch, self.versions)

    def update_from(self, other):
        """Merge ``other``'s assignment slot by slot: adopt every slot
        ``other`` knows a strictly newer move for.  A global-epoch gate
        would be wrong here — two maps can share an epoch while each
        holds patches the other lacks."""
        changed = False
        for slot, version in enumerate(other.versions):
            if version > self.versions[slot]:
                self.owners[slot] = other.owners[slot]
                self.versions[slot] = version
                changed = True
        if other.epoch > self.epoch:
            self.epoch = other.epoch
        return changed

    def patch(self, slot, node_index, epoch):
        """Apply one EMOVED hint: adopt the single reassignment when the
        advertised epoch is ahead of what we know *about that slot* (a
        newer hint for the same slot supersedes)."""
        if epoch > self.versions[slot]:
            self.owners[slot] = node_index
            self.versions[slot] = epoch
            if epoch > self.epoch:
                self.epoch = epoch
            return True
        return False

    def to_wire(self):
        return {"owners": list(self.owners), "epoch": self.epoch,
                "versions": list(self.versions)}

    @classmethod
    def from_wire(cls, wire):
        return cls(wire["owners"], wire["epoch"], wire.get("versions"))

    def __repr__(self):
        return "SlotMap(epoch={}, owners={})".format(self.epoch,
                                                     self.owners)


@dataclass
class FalconConfig:
    """Deployment and feature configuration for a FalconFS cluster."""

    num_mnodes: int = 4
    num_storage: int = 4
    #: Cores per metadata server (the paper restricts servers to 4).
    server_cores: int = 4
    #: Concurrent request merging (§4.4); False = the *no merge* ablation.
    merging: bool = True
    max_batch: int = 32
    #: Accumulation window for batch formation (microseconds).
    merge_linger_us: float = 4.0
    #: Replicate mkdir eagerly with 2PC instead of lazily (§4.3); True =
    #: the *no inv* ablation of Fig 15a.
    eager_replication: bool = False
    #: Contention multiplier on the serialized dispatch cost when merging
    #: is disabled (shared request-queue cache-line bouncing, §6.7).
    unmerged_dispatch_factor: float = 24.0
    #: Load-balance bound: no node may exceed (1/n + epsilon) of inodes.
    epsilon: float = 0.02
    #: Retry backoff for blocked (migrating) inodes, microseconds — the
    #: base of the shared exponential backoff schedule.
    retry_backoff_us: float = 100.0
    #: Exponential backoff growth factor and cap for the shared
    #: :class:`~repro.obs.RetryPolicy`.
    retry_backoff_multiplier: float = 2.0
    retry_backoff_max_us: float = 6400.0
    #: Attempt budget per operation before the client gives up.
    retry_max_attempts: int = 64
    #: Backoff jitter fraction in [0, 1] (0 = off).  Each retry delay is
    #: spread over ``[delay * (1 - jitter), delay]`` with the client's
    #: seeded RNG, so a mass invalidation (cache stampede) or failover
    #: does not meet perfectly synchronized retry storms.  Off by
    #: default: golden traces stay bit-identical.
    retry_jitter: float = 0.0
    #: Absolute per-operation deadline, microseconds (0 = no deadline).
    #: Enforced at every hop via the kernel's Interrupt machinery.
    op_deadline_us: float = 0.0
    #: Per-RPC-attempt timeout, microseconds (0 = no per-attempt bound).
    #: Required when faults are injected: a black-holed RPC to a crashed
    #: node otherwise waits forever, and timeouts are what turn a crash
    #: into a retry against the promoted replacement.
    rpc_timeout_us: float = 0.0
    #: Failure-detector heartbeat cadence and per-ping timeout,
    #: microseconds, plus consecutive misses before a node is declared
    #: dead.  The coordinator pings every MNode; see repro.faults.
    heartbeat_interval_us: float = 500.0
    heartbeat_timeout_us: float = 200.0
    heartbeat_miss_threshold: int = 3
    #: Asynchronous log-shipping replication to per-MNode standbys (the
    #: evaluation runs with this disabled, like the paper's).
    replication: bool = False
    #: Shipper retransmission cadence, microseconds (0 = off).  While a
    #: shipper has unacknowledged WAL records it re-ships the suffix at
    #: this period, healing ``wal_ship``/``wal_ack`` messages lost to
    #: gray link degradation.  Event-driven: the timer only exists while
    #: the unacked window is non-empty, so quiescence still drains.
    ship_retry_us: float = 0.0
    #: Quorum-replicated metadata tier (requires ``replication``): each
    #: directory slot becomes a consensus group — leader (the MNode),
    #: one data-holding voter (the standby) and one vote-only witness.
    #: Commits acknowledge only after a majority has durably appended,
    #: leadership moves by election instead of coordinator ordination,
    #: and the serve path is fenced by leader leases.
    consensus: bool = False
    #: Follower election timeout base, microseconds: a follower that
    #: hears nothing from its leader for a randomized duration in
    #: ``[election_timeout_us, 2 * election_timeout_us]`` starts an
    #: election (per-follower seeded randomization breaks ties).
    election_timeout_us: float = 4000.0
    #: Leader lease duration, microseconds.  A leader extends its lease
    #: every time a quorum acknowledges a heartbeat; once the lease
    #: lapses it stops acknowledging operations (ENOTLEADER) until a
    #: quorum answers again — the fast-fail half of zombie fencing (the
    #: safety half is quorum commit itself).
    lease_us: float = 3000.0
    #: Leader heartbeat (empty AppendEntries) cadence, microseconds.
    consensus_heartbeat_us: float = 1000.0
    #: Directory slots in the hybrid index (0 = one per MNode, the
    #: static layout).  More slots than nodes gives migration something
    #: to move: each slot is the unit of online handoff and nodes host
    #: several.
    num_slots: int = 0
    #: Test-only: activate a migrated slot at the destination as soon as
    #: the snapshot installs, WITHOUT waiting for the fenced delta — the
    #: planted handoff bug the checker's migration nemesis must catch.
    broken_handoff: bool = False
    seed: int = 0


class ClusterShared:
    """Identity and service directory shared by every node in a cluster."""

    def __init__(self, env, costs, config, tracer=None):
        self.env = env
        self.costs = costs if costs is not None else CostModel()
        self.config = config
        #: Cluster-wide tracer; the null tracer allocates no spans.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.streams = RandomStreams(config.seed)
        self.allocator = InodeAllocator()
        self.mnode_names = [
            "mnode-{}".format(i) for i in range(config.num_mnodes)
        ]
        #: Slot count for hybrid indexing; defaults to one per MNode so
        #: the identity slot map reproduces the static ring exactly.
        self.num_slots = config.num_slots or config.num_mnodes
        #: Authoritative slot -> node assignment (coordinator-mutated).
        #: Identity when slots == nodes; round-robin wrap when the
        #: elastic config hashes over more slots than nodes.
        self.slot_map = SlotMap(
            i % config.num_mnodes for i in range(self.num_slots)
        )
        self.storage_names = [
            "osd-{}".format(i) for i in range(config.num_storage)
        ]
        self.coordinator_name = "coordinator"

    def mnode_name(self, slot):
        """Name of the MNode currently hosting directory slot ``slot``,
        per the authoritative slot map.  Server-side resolution only —
        clients consult their own (possibly stale) map copies."""
        return self.mnode_names[self.slot_map.node_of(slot)]

    def node_name(self, node_index):
        """Name of physical node ``node_index`` (slot-map independent)."""
        return self.mnode_names[node_index]

    def storage_for(self, ino, block_index):
        """Data placement: hash of (file id, block offset) — §4.1."""
        from repro.core.indexing import stable_hash

        idx = stable_hash((ino, block_index)) % len(self.storage_names)
        return self.storage_names[idx]
