"""Cluster-wide configuration and shared context."""

from dataclasses import dataclass

from repro.core.records import InodeAllocator
from repro.net.costs import CostModel
from repro.obs.tracer import NULL_TRACER
from repro.sim.rng import RandomStreams


@dataclass
class FalconConfig:
    """Deployment and feature configuration for a FalconFS cluster."""

    num_mnodes: int = 4
    num_storage: int = 4
    #: Cores per metadata server (the paper restricts servers to 4).
    server_cores: int = 4
    #: Concurrent request merging (§4.4); False = the *no merge* ablation.
    merging: bool = True
    max_batch: int = 32
    #: Accumulation window for batch formation (microseconds).
    merge_linger_us: float = 4.0
    #: Replicate mkdir eagerly with 2PC instead of lazily (§4.3); True =
    #: the *no inv* ablation of Fig 15a.
    eager_replication: bool = False
    #: Contention multiplier on the serialized dispatch cost when merging
    #: is disabled (shared request-queue cache-line bouncing, §6.7).
    unmerged_dispatch_factor: float = 24.0
    #: Load-balance bound: no node may exceed (1/n + epsilon) of inodes.
    epsilon: float = 0.02
    #: Retry backoff for blocked (migrating) inodes, microseconds — the
    #: base of the shared exponential backoff schedule.
    retry_backoff_us: float = 100.0
    #: Exponential backoff growth factor and cap for the shared
    #: :class:`~repro.obs.RetryPolicy`.
    retry_backoff_multiplier: float = 2.0
    retry_backoff_max_us: float = 6400.0
    #: Attempt budget per operation before the client gives up.
    retry_max_attempts: int = 64
    #: Backoff jitter fraction in [0, 1] (0 = off).  Each retry delay is
    #: spread over ``[delay * (1 - jitter), delay]`` with the client's
    #: seeded RNG, so a mass invalidation (cache stampede) or failover
    #: does not meet perfectly synchronized retry storms.  Off by
    #: default: golden traces stay bit-identical.
    retry_jitter: float = 0.0
    #: Absolute per-operation deadline, microseconds (0 = no deadline).
    #: Enforced at every hop via the kernel's Interrupt machinery.
    op_deadline_us: float = 0.0
    #: Per-RPC-attempt timeout, microseconds (0 = no per-attempt bound).
    #: Required when faults are injected: a black-holed RPC to a crashed
    #: node otherwise waits forever, and timeouts are what turn a crash
    #: into a retry against the promoted replacement.
    rpc_timeout_us: float = 0.0
    #: Failure-detector heartbeat cadence and per-ping timeout,
    #: microseconds, plus consecutive misses before a node is declared
    #: dead.  The coordinator pings every MNode; see repro.faults.
    heartbeat_interval_us: float = 500.0
    heartbeat_timeout_us: float = 200.0
    heartbeat_miss_threshold: int = 3
    #: Asynchronous log-shipping replication to per-MNode standbys (the
    #: evaluation runs with this disabled, like the paper's).
    replication: bool = False
    #: Shipper retransmission cadence, microseconds (0 = off).  While a
    #: shipper has unacknowledged WAL records it re-ships the suffix at
    #: this period, healing ``wal_ship``/``wal_ack`` messages lost to
    #: gray link degradation.  Event-driven: the timer only exists while
    #: the unacked window is non-empty, so quiescence still drains.
    ship_retry_us: float = 0.0
    #: Quorum-replicated metadata tier (requires ``replication``): each
    #: directory slot becomes a consensus group — leader (the MNode),
    #: one data-holding voter (the standby) and one vote-only witness.
    #: Commits acknowledge only after a majority has durably appended,
    #: leadership moves by election instead of coordinator ordination,
    #: and the serve path is fenced by leader leases.
    consensus: bool = False
    #: Follower election timeout base, microseconds: a follower that
    #: hears nothing from its leader for a randomized duration in
    #: ``[election_timeout_us, 2 * election_timeout_us]`` starts an
    #: election (per-follower seeded randomization breaks ties).
    election_timeout_us: float = 4000.0
    #: Leader lease duration, microseconds.  A leader extends its lease
    #: every time a quorum acknowledges a heartbeat; once the lease
    #: lapses it stops acknowledging operations (ENOTLEADER) until a
    #: quorum answers again — the fast-fail half of zombie fencing (the
    #: safety half is quorum commit itself).
    lease_us: float = 3000.0
    #: Leader heartbeat (empty AppendEntries) cadence, microseconds.
    consensus_heartbeat_us: float = 1000.0
    seed: int = 0


class ClusterShared:
    """Identity and service directory shared by every node in a cluster."""

    def __init__(self, env, costs, config, tracer=None):
        self.env = env
        self.costs = costs if costs is not None else CostModel()
        self.config = config
        #: Cluster-wide tracer; the null tracer allocates no spans.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.streams = RandomStreams(config.seed)
        self.allocator = InodeAllocator()
        self.mnode_names = [
            "mnode-{}".format(i) for i in range(config.num_mnodes)
        ]
        self.storage_names = [
            "osd-{}".format(i) for i in range(config.num_storage)
        ]
        self.coordinator_name = "coordinator"

    def mnode_name(self, index):
        return self.mnode_names[index]

    def storage_for(self, ino, block_index):
        """Data placement: hash of (file id, block offset) — §4.1."""
        from repro.core.indexing import stable_hash

        idx = stable_hash((ino, block_index)) % len(self.storage_names)
        return self.storage_names[idx]
