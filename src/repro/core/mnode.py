"""The FalconFS metadata node (MNode).

An MNode is the paper's PostgreSQL-with-extensions metadata server.  It
holds:

* a **namespace replica** — lazily synchronized directory dentries
  (:mod:`repro.core.replica`), enabling local path resolution;
* an **inode table shard** — the file/directory attribute records hybrid
  indexing places here;
* the **concurrent request merging** machinery (§4.4): typed request
  queues drained in batches, with lock coalescing (one acquisition per
  distinct lock per batch) and WAL coalescing (one transaction, hence one
  group-committed log append, per batch).

Client-facing operations (`create`, `open`, `close`, `getattr`, `setattr`,
`unlink`, `mkdir`) flow through the worker pool.  Control-plane traffic
(dentry lookups serving other replicas, invalidations, rmdir/chmod/rename
execution for the coordinator, statistics, migration) is handled by
directly spawned processes so that replica maintenance can never be
starved by a full worker pool.
"""

import heapq
from collections import defaultdict

from repro.core.indexing import ROUTE_PATHWALK, ExceptionTable, HybridIndex
from repro.core.merging import WorkerPool
from repro.core.records import (
    INVALID,
    VALID,
    DentryRecord,
    InodeRecord,
    inode_from_wire,
    inode_to_wire,
)
from repro.core.replica import NamespaceReplicaMixin
from repro.net import Node
from repro.net.message import Message
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import CAT_PHASE, CAT_QUEUE, NULL_CONTEXT, OpContext
from repro.obs.tracer import CAT_BATCH
from repro.storage import LockMode, Table, Transaction, WriteAheadLog
from repro.vfs.pathwalk import split_path

#: Operations that flow through the merging worker pool.
MERGEABLE_OPS = frozenset(
    ("create", "open", "close", "getattr", "setattr", "unlink", "mkdir",
     "lookup")
)

#: Operations that mutate the inode table (X lock on the target).
WRITE_OPS = frozenset(("create", "close", "unlink", "mkdir", "setattr"))

#: Operations that require write permission on the parent directory.
PARENT_WRITE_OPS = frozenset(("create", "unlink", "mkdir"))


class _Plan:
    """A validated, resolved request ready for batch execution."""

    __slots__ = ("message", "op", "payload", "pid", "name", "chain",
                 "lock_specs", "cpu_us", "slot")

    def __init__(self, message, pid, name, chain):
        self.message = message
        self.op = message.kind
        self.payload = message.payload
        self.pid = pid
        self.name = name
        self.chain = chain
        self.lock_specs = {}
        self.cpu_us = 0.0
        self.slot = None

    @property
    def inode_key(self):
        return (self.pid, self.name)


class MNode(NamespaceReplicaMixin, Node):
    """One metadata server."""

    def __init__(self, env, network, shared, index):
        super().__init__(
            env, network, shared.node_name(index),
            cores=shared.config.server_cores,
        )
        self.shared = shared
        self.my_index = index
        self.init_replica()
        self.inodes = Table("inode")
        #: Durable node-local control records.  ``("slot", i)`` rows
        #: persist handoff state ("moved"/"pending"/"active") so a
        #: crash-restart mid-migration reconstructs the fence instead of
        #: resurrecting a handed-off slot from the stale map seed.
        self.meta = Table("meta")
        self.wal = WriteAheadLog(env, self.costs, self.metrics)
        self.xt = ExceptionTable()
        self.index = HybridIndex(shared.num_slots, self.xt)
        #: Directory slots this node currently hosts (serves
        #: authoritatively).  Seeded from the cluster slot map so a
        #: promoted or restarted incarnation starts with the slots its
        #: predecessor ended with.
        self.hosted_slots = set(shared.slot_map.slots_of(index))
        #: slot -> {"node", "epoch"}: slots handed off (or mid-handoff)
        #: to another node; requests bounce with EMOVED carrying the
        #: destination so clients patch their private slot maps.
        self.moved_slots = {}
        #: Slots whose snapshot is installed but whose fenced delta has
        #: not been applied yet — requests bounce ERETRY until
        #: activation (the handoff-safety invariant the planted
        #: ``broken_handoff`` bug violates).
        self.pending_slots = set()
        #: slot -> captured logical records: while a slot is being
        #: migrated away, every commit touching it is also appended
        #: here; the fence returns (and stops) this capture atomically.
        self._slot_capture = {}
        #: slot -> number of in-flight local writers (planned batch ops
        #: and staged control-plane mutations); the fence drains this
        #: to zero, with capture still running, before collecting.
        self._slot_writers = defaultdict(int)
        #: slot -> live local inode-record count (planner statistics).
        self.slot_inode_counts = defaultdict(int)
        #: filename -> number of local inodes with that name (load stats).
        self.filename_counts = defaultdict(int)
        #: filename -> set of parent ids (secondary index for migration).
        self._name_parents = defaultdict(set)
        #: Filenames whose inodes are blocked mid-migration.
        self.migrating = set()
        #: txid -> list of staged 2PC actions (rename / eager replication).
        self._staged = {}
        #: Log shipper when primary-standby replication is enabled.
        self.shipper = None
        #: Ship-LSN origin within the WAL: (wal txn count at the lsn-space
        #: origin, first ship lsn after it).  Lets a restart map durable
        #: WAL records back onto shipping LSNs — records at or before the
        #: anchor reached the standby out of band (snapshot / bulk load)
        #: and are never re-shipped.
        self._ship_anchor = 0
        self._ship_base = 1
        # Hot-path metric handles: deliver/_execute_batch/_respond run
        # once per message, so the registry lookup is paid once, here.
        self._received_ctr = self.metrics.counter("received")
        self._ops_ctr = self.metrics.counter("ops")
        self._op_errors_ctr = self.metrics.counter("op_errors")
        self._forwarded_ctr = self.metrics.counter("forwarded")
        self._batch_size_hist = self.metrics.histogram("batch_size")
        cfg = shared.config
        # With tracing off (every throughput experiment) the per-batch
        # wrapper generator and _batch_ctx call are pure overhead; hand
        # the pool a thin closure returning the body generator directly.
        if shared.tracer.enabled:
            executor = self._execute_batch
        else:
            def executor(kind, batch, _body=self._execute_batch_body):
                return _body(kind, batch, None)
        self.pool = WorkerPool(
            env, executor, workers=cfg.server_cores,
            max_batch=cfg.max_batch, linger_us=cfg.merge_linger_us,
            merging=cfg.merging,
        )

    # ------------------------------------------------------------------
    # message intake
    # ------------------------------------------------------------------

    def deliver(self, message):
        self._received_ctr.inc(message.kind)
        if message.kind in MERGEABLE_OPS:
            self.pool.submit(message.kind, message)
        else:
            self.env.process(self._handle_guard(message))

    def handle(self, message):
        handler = getattr(self, "_on_" + message.kind, None)
        if handler is None:
            raise RuntimeError(
                "{} cannot handle {!r}".format(self.name, message)
            )
        yield from handler(message)

    def _owns_dentry(self, key):
        slot = self.index.locate(key[0], key[1])
        return slot in self.hosted_slots and slot not in self.moved_slots

    def _slot_of(self, key):
        """Directory slot owning inode key ``(pid, name)``."""
        return self.index.locate(key[0], key[1])

    def _slot_failure(self, slot, name):
        """The bounce for a request addressed to a slot this node does
        not serve: EMOVED with the destination hint when the slot was
        handed off, ERETRY while its delta is still in flight here."""
        moved = self.moved_slots.get(slot)
        if moved is not None:
            return RpcFailure(RpcError.EMOVED, {
                "slot": slot, "node": moved["node"],
                "epoch": moved["epoch"],
            })
        if slot in self.pending_slots:
            return RpcFailure(RpcError.ERETRY, name)
        return None

    def _restore_slot_state(self):
        """Reconcile slot hosting with the durable handoff markers after
        state surgery (redo restart or promotion): a fenced slot stays
        fenced across a crash, an adopted slot stays adopted, and an
        installed-but-never-activated slot stays pending — the slot-map
        seed in the constructor knows none of this."""
        for key, state in list(self.meta.scan()):
            if key[0] != "slot":
                continue
            slot = key[1]
            if state["state"] == "moved":
                self.hosted_slots.discard(slot)
                self.moved_slots[slot] = {"node": state["node"],
                                          "epoch": state["epoch"]}
            elif state["state"] == "pending":
                self.hosted_slots.discard(slot)
                self.pending_slots.add(slot)
            elif state["state"] == "active":
                self.hosted_slots.add(slot)
                self.moved_slots.pop(slot, None)
                self.pending_slots.discard(slot)

    def _check_hosted(self, key):
        """Raise the slot bounce unless this node currently serves
        ``key``'s slot; returns the slot (for writer registration).
        Callers must not yield between this check and registering in
        ``_slot_writers`` — the fence relies on that atomicity."""
        slot = self._slot_of(key)
        if slot not in self.hosted_slots:
            failure = self._slot_failure(slot, key)
            if failure is None:
                # No handoff marker of our own: the request was simply
                # misdirected (e.g. a client that absorbed the fence
                # hint of a handoff that later aborted).  Answer with
                # the cluster directory's current word on the slot so
                # the sender can never wedge on a dead-end target.
                owner = self.shared.slot_map.node_of(slot)
                if owner != self.my_index:
                    failure = RpcFailure(RpcError.EMOVED, {
                        "slot": slot, "node": owner,
                        "epoch": self.shared.slot_map.version_of(slot),
                    })
            raise failure or RpcFailure(RpcError.ERETRY, key)
        return slot

    def attach_standby(self, standby_name, start_lsn=1, anchor=None,
                       base=None):
        """Point log shipping at ``standby_name``.

        ``anchor``/``base`` pin the ship-LSN origin for a *resumed*
        shipper (crash-restart); by default the origin is "now": WAL
        transactions already appended are assumed covered out of band
        (initial empty log, or a snapshot the standby just installed).
        """
        from repro.storage.replication import LogShipper

        self.shipper = LogShipper(
            self, standby_name, start_lsn=start_lsn,
            retry_us=self.shared.config.ship_retry_us,
        )
        self._ship_anchor = (self.wal.appended_txns if anchor is None
                             else anchor)
        self._ship_base = start_lsn if base is None else base

    def attach_group(self, witness_name, standby_name=None, term=1,
                     base_lsn=0, base_term=0, anchor=None):
        """Attach this MNode as the *leader* of a consensus group.

        Replaces the plain log shipper with a
        :class:`~repro.storage.consensus.ReplicatedLog`: every committed
        transaction becomes a term-stamped entry, operations acknowledge
        only after quorum, and the serve path is fenced by the leader
        lease.  ``base_lsn``/``base_term`` anchor the log at the
        snapshot horizon the leader's tables reflect (election install
        or redo recovery); ``anchor`` pins the WAL-transaction count
        that horizon corresponds to, exactly like :meth:`attach_standby`.
        """
        from repro.storage.consensus import ReplicatedLog

        cfg = self.shared.config
        self.shipper = ReplicatedLog(
            self, witness_name, standby_name=standby_name, term=term,
            base_lsn=base_lsn, base_term=base_term,
            lease_us=cfg.lease_us, heartbeat_us=cfg.consensus_heartbeat_us,
        )
        self.wal.term = term
        self._ship_anchor = (self.wal.appended_txns if anchor is None
                             else anchor)
        self._ship_base = base_lsn + 1
        return self.shipper

    def _serving_as_leader(self):
        """False when a consensus lease fences this node: it is deposed,
        or its lease lapsed (it may be the minority side of a partition
        and must not answer even reads — a successor could already be
        serving newer state)."""
        shipper = self.shipper
        if shipper is None or not hasattr(shipper, "leading"):
            return True
        return shipper.leading(self.clock.now_us())

    def _quorum_barrier(self):
        """Generator: park until the shipper's latest entry is quorum-
        committed.  True = safe to acknowledge; False = quorum is
        unreachable (deposed, or the lease lapsed mid-wait) and the
        operation must answer ENOTLEADER instead of acking a write a
        majority never saw.  Trivially True outside consensus mode."""
        shipper = self.shipper
        if shipper is None or not hasattr(shipper, "wait_quorum"):
            return True
        ok = yield from shipper.wait_quorum()
        return ok

    def _txn(self, ctx=None):
        return Transaction(self.env, self.wal, self.costs,
                           on_commit=self._ship_committed, ctx=ctx,
                           barrier=self.alive_barrier)

    def _ship_committed(self, txn):
        # Resolved at commit time, not transaction creation: a standby
        # attached mid-flight (rejoin after a crash-restart) must see
        # every transaction that commits after the attach, or a commit
        # racing the attach would be neither shipped nor in the
        # snapshot its catch-up installs.
        if self.shipper is not None:
            self.shipper.ship(txn)
        if self._slot_capture:
            # Slot handoff in progress: tee every committed write that
            # belongs to a captured slot into its migration delta.  This
            # hook sees *every* durable commit path (batches, renames,
            # fsck, coordinator-executed ops), so nothing that commits
            # here before the fence collects can be missing at the
            # destination.
            for table, key, value in txn.export_writes():
                if table == "meta":
                    # Rename-applied markers are slot-scoped durable
                    # state and must travel with the handoff: a stale
                    # commit re-delivery after the flip resolves to the
                    # *destination*, which can only no-op it if the
                    # marker moved too.  Handoff markers ("slot", ...)
                    # describe this node and never move.
                    if key[0] != "rename":
                        continue
                    buf = self._slot_capture.get(key[1])
                    if buf is not None:
                        buf.append((table, key, value))
                    continue
                if table not in ("inode", "dentry"):
                    continue
                buf = self._slot_capture.get(self._slot_of(key))
                if buf is not None:
                    buf.append((table, key, value))

    # ------------------------------------------------------------------
    # batch execution (concurrent request merging, §4.4)
    # ------------------------------------------------------------------

    def _batch_ctx(self, kind, batch):
        """Batch-level context: its root span carries the member op ids,
        so the analyzer can amortize shared costs (dispatch, coalesced
        locks, the single WAL flush) across the merged operations."""
        tracer = self.shared.tracer
        if not tracer.enabled:
            return None
        members = [
            message.ctx.op_id for message in batch
            if message.ctx is not None
        ]
        ctx = OpContext(self.env, "batch:" + kind, origin=self.name,
                        tracer=tracer)
        ctx.begin(node=self.name, category=CAT_BATCH,
                  attrs={"members": members, "n": len(batch)})
        # Per-member queue wait: network arrival to batch pickup.
        for message in batch:
            mctx = message.ctx
            if (mctx is not None and mctx.traced
                    and message.arrive_time is not None):
                mctx.record("queue.wait", CAT_QUEUE, message.arrive_time,
                            self.env.now, node=self.name)
        return ctx

    def _execute_batch(self, kind, batch):
        bctx = self._batch_ctx(kind, batch)
        if bctx is None:
            yield from self._execute_batch_body(kind, batch, None)
            return
        try:
            yield from self._execute_batch_body(kind, batch, bctx)
        except BaseException as exc:
            bctx.finish(error=repr(exc))
            raise
        bctx.finish()

    def _execute_batch_body(self, kind, batch, bctx):
        cfg = self.shared.config
        if cfg.merging:
            # One dispatch per batch: the queue hand-off is amortized.
            yield from self.execute(self.costs.dispatch_us, ctx=bctx)
        else:
            # Every request individually contends on the shared queue;
            # under high concurrency the cache-line bouncing inflates the
            # dispatch cost well beyond the uncontended slice (§6.7).
            req = self.pool.dispatch_lock.request()
            if bctx is not None and not req.triggered:
                start = self.env.now
                yield req
                bctx.record("dispatch.wait", CAT_QUEUE, start, self.env.now,
                            node=self.name)
            else:
                yield req
            try:
                yield from self.execute(
                    self.costs.dispatch_us * cfg.unmerged_dispatch_factor,
                    ctx=bctx,
                )
            finally:
                self.pool.dispatch_lock.release(req)
        self._batch_size_hist.observe(len(batch))

        plans = []
        for message in batch:
            plan = yield from self._plan(message)
            if plan is not None:
                plans.append(plan)
        if not plans:
            return
        if kind == "mkdir" and cfg.eager_replication:
            # Eager 2PC replication: independent directories proceed in
            # parallel (the *no inv* ablation measures 2PC cost, not an
            # artificial serialization).
            yield self.env.all_of([
                self.env.process(self._mkdir_eager(plan)) for plan in plans
            ])
            return

        # -- lock coalescing: one acquisition per distinct key per batch.
        lock_modes = {}
        for plan in plans:
            for key, mode in plan.lock_specs.items():
                if lock_modes.get(key) != LockMode.EXCLUSIVE:
                    lock_modes[key] = mode
        grants = []
        for key in sorted(lock_modes):
            grant = self.locks.acquire(key, lock_modes[key], ctx=bctx)
            yield grant.event
            grants.append(grant)

        # -- revalidate: a concurrent invalidation between resolution and
        # locking forces a client retry (rare; namespace changes only).
        # Surviving plans register as slot writers in the same no-yield
        # block, so a slot fence firing after this instant waits for
        # them (and one firing before it already failed them above).
        live = []
        for plan in plans:
            if self._plan_still_valid(plan):
                live.append(plan)
                if plan.slot is not None:
                    self._slot_writers[plan.slot] += 1
            else:
                self._respond_error(
                    plan.message, RpcFailure(RpcError.ERETRY, plan.name)
                )
        if not live:
            for grant in grants:
                self.locks.release(grant)
            return

        # -- aggregate CPU charge: coalesced locks + per-op work + one txn.
        try:
            costs = self.costs
            cpu = len(grants) * (costs.lock_acquire_us
                                 + costs.lock_release_us)
            cpu += sum(plan.cpu_us for plan in live)
            cpu += costs.txn_begin_us + costs.txn_commit_us
            yield from self.execute(cpu, ctx=bctx)

            txn = self._txn(ctx=bctx)
            outcomes = []
            for plan in live:
                try:
                    outcomes.append((plan, self._apply(plan, txn)))
                except RpcFailure as failure:
                    outcomes.append((plan, failure))
            quorum_ok = True
            if txn.write_count:
                yield from txn.commit()
                # Quorum commit: the batch's entry must be durably
                # appended by a majority before anyone is told it
                # happened.  Grants stay held across the wait so no
                # concurrent reader observes state that a successor
                # leader might not have.
                quorum_ok = yield from self._quorum_barrier()
            for grant in grants:
                self.locks.release(grant)
            for plan, outcome in outcomes:
                if isinstance(outcome, RpcFailure):
                    self._respond_error(plan.message, outcome)
                elif not quorum_ok:
                    self._respond_error(
                        plan.message,
                        RpcFailure(RpcError.ENOTLEADER, self.name),
                    )
                else:
                    self._ops_ctr.inc(plan.op)
                    self._respond_ok(plan.message, outcome)
        finally:
            for plan in live:
                if plan.slot is not None:
                    self._slot_writers[plan.slot] -= 1

    def _plan(self, message):
        """Generator: validate routing and resolve the parent directory.

        Returns a :class:`_Plan`, or None when the request was forwarded
        or answered with an error.
        """
        payload = message.payload
        ctx = message.ctx
        if (ctx is not None and ctx.deadline is not None
                and self.env.now_us() >= ctx.deadline):
            # The client already gave up on this op; don't do its work.
            self._respond_error(
                message, RpcFailure(RpcError.ETIMEDOUT, message.kind)
            )
            return None
        if not self._serving_as_leader():
            # Lease fence: a deposed (or possibly-partitioned) leader
            # answers nothing — not even reads, which could otherwise
            # return state a successor has already overwritten.  No
            # hint: the client re-resolves through the directory.
            self._respond_error(
                message, RpcFailure(RpcError.ENOTLEADER, self.name)
            )
            return None
        if message.kind == "lookup":
            # Stateful-client component lookup: keyed (pid, name) access,
            # no path resolution (the client is doing the walking).
            return self._plan_keyed_lookup(message)
        try:
            components = split_path(payload["path"])
        except ValueError:
            self._respond_error(
                message, RpcFailure(RpcError.EINVAL, payload.get("path"))
            )
            return None
        if not components:
            self._respond_error(
                message, RpcFailure(RpcError.EINVAL, "operation on /")
            )
            return None
        name = components[-1]

        # -- routing validation against the local exception table and
        # slot map.  A client with a stale table is corrected by
        # forwarding (§4.2.1); one holding a stale slot map is bounced
        # with EMOVED carrying the destination (elastic namespace).
        route_kind, target = self.index.route(name)
        if route_kind != ROUTE_PATHWALK and target not in self.hosted_slots:
            failure = self._slot_failure(target, name)
            if failure is not None:
                self._respond_error(message, failure)
                return None
            # Misdirected (stale client table): decoding it here was not
            # amortizable, and the correct node pays dispatch again.
            yield from self.execute(self.costs.dispatch_us)
            self._forward(message, target)
            return None

        try:
            resolved = yield from self.resolve_dir(components[:-1], ctx=ctx)
        except RpcFailure as failure:
            self._respond_error(message, failure)
            return None

        if route_kind == ROUTE_PATHWALK:
            target = self.index.hash_parent_name(resolved.ino, name)
            if target not in self.hosted_slots:
                failure = self._slot_failure(target, name)
                if failure is not None:
                    self._respond_error(message, failure)
                    return None
                yield from self.execute(self.costs.dispatch_us)
                self._forward(message, target)
                return None

        if name in self.migrating:
            self._respond_error(message, RpcFailure(RpcError.ERETRY, name))
            return None

        parent_mode = (
            resolved.chain[-1][1].mode if resolved.chain
            else self.root_dentry.mode
        )
        # Search permission on the parent is required for any access to
        # its entries; write permission for mutations.
        if not parent_mode & 0o111 or (
            message.kind in PARENT_WRITE_OPS and not parent_mode & 0o222
        ):
            self._respond_error(
                message, RpcFailure(RpcError.EACCES, payload["path"])
            )
            return None

        plan = _Plan(message, resolved.ino, name, resolved.chain)
        plan.slot = target
        for dkey, _, _ in resolved.chain:
            plan.lock_specs.setdefault(dkey, LockMode.SHARED)
        ikey = ("i", plan.pid, name)
        plan.lock_specs[ikey] = (
            LockMode.EXCLUSIVE if message.kind in WRITE_OPS
            else LockMode.SHARED
        )
        if message.kind == "mkdir":
            # We will also insert the local replica dentry.
            plan.lock_specs[("d", plan.pid, name)] = LockMode.EXCLUSIVE
        plan.cpu_us = self._plan_cpu(message.kind, len(components))
        return plan

    def _plan_keyed_lookup(self, message):
        payload = message.payload
        pid, name = payload["pid"], payload["name"]
        target = self.index.locate(pid, name)
        if target not in self.hosted_slots:
            failure = self._slot_failure(target, name)
            if failure is not None:
                self._respond_error(message, failure)
                return None
            self._forward(message, target)
            return None
        if name in self.migrating:
            self._respond_error(message, RpcFailure(RpcError.ERETRY, name))
            return None
        plan = _Plan(message, pid, name, [])
        plan.slot = target
        plan.lock_specs[("i", pid, name)] = LockMode.SHARED
        plan.cpu_us = self.costs.index_lookup_us
        return plan

    def _plan_cpu(self, op, num_components):
        costs = self.costs
        cpu = costs.resolve_component_us * num_components
        if op in ("open", "getattr"):
            cpu += costs.index_lookup_us
        elif op == "create":
            cpu += costs.index_lookup_us + costs.index_insert_us
        elif op == "mkdir":
            cpu += costs.index_lookup_us + 2 * costs.index_insert_us
        elif op in ("close", "setattr"):
            cpu += costs.index_lookup_us + costs.index_insert_us
        elif op == "unlink":
            cpu += costs.index_lookup_us + costs.index_delete_us
        return cpu

    def _plan_still_valid(self, plan):
        if plan.name in self.migrating:
            return False
        if plan.slot is not None and plan.slot not in self.hosted_slots:
            # The slot was fenced (or handed off) between planning and
            # lock grant; the retry re-plans and gets the EMOVED hint.
            return False
        for dkey, record, seq in plan.chain:
            if self.inval_seq[dkey] != seq or record.state == INVALID:
                return False
            if self.dentries.get((dkey[1], dkey[2])) is not record:
                return False
        return True

    # ------------------------------------------------------------------
    # operation semantics (pure, executed inside the batch transaction)
    # ------------------------------------------------------------------

    def _apply(self, plan, txn):
        op = plan.op
        payload = plan.payload
        key = plan.inode_key
        where = payload.get("path", key)
        record = txn.get(self.inodes, key)
        if op == "create":
            if record is not None:
                if payload.get("exclusive", True):
                    raise RpcFailure(RpcError.EEXIST, where)
                if record.is_dir:
                    raise RpcFailure(RpcError.EISDIR, where)
                truncated = record.copy()
                truncated.size = 0
                truncated.mtime = self.env.now
                txn.put(self.inodes, key, truncated)
                return {"ino": record.ino}
            inode = InodeRecord(
                ino=self.shared.allocator.allocate(), is_dir=False,
                mode=payload.get("mode", 0o644), size=payload.get("size", 0),
                mtime=self.env.now,
            )
            txn.put(self.inodes, key, inode)
            self._track_name(key, +1)
            return {"ino": inode.ino}
        if op == "mkdir":
            if record is not None:
                raise RpcFailure(RpcError.EEXIST, where)
            ino = self.shared.allocator.allocate()
            mode = payload.get("mode", 0o755)
            inode = InodeRecord(ino=ino, is_dir=True, mode=mode,
                                mtime=self.env.now)
            txn.put(self.inodes, key, inode)
            txn.put(self.dentries, key, DentryRecord(ino=ino, mode=mode))
            self._track_name(key, +1)
            return {"ino": ino}
        if record is None:
            raise RpcFailure(RpcError.ENOENT, where)
        if op in ("open", "getattr", "lookup"):
            if op == "open" and record.is_dir:
                raise RpcFailure(RpcError.EISDIR, where)
            return {"attrs": inode_to_wire(record)}
        if op == "close":
            updated = record.copy()
            updated.size = payload.get("size", record.size)
            updated.mtime = self.env.now
            txn.put(self.inodes, key, updated)
            return {}
        if op == "unlink":
            if record.is_dir:
                raise RpcFailure(RpcError.EISDIR, where)
            txn.delete(self.inodes, key)
            self._track_name(key, -1)
            return {}
        if op == "setattr":
            if record.is_dir:
                # Directory permission changes go through the coordinator.
                raise RpcFailure(RpcError.EISDIR, where)
            updated = record.copy()
            updated.mode = payload.get("mode", record.mode)
            updated.uid = payload.get("uid", record.uid)
            updated.gid = payload.get("gid", record.gid)
            txn.put(self.inodes, key, updated)
            return {}
        raise RpcFailure(RpcError.EINVAL, op)

    def _track_name(self, key, delta):
        pid, name = key
        self.filename_counts[name] += delta
        if self.filename_counts[name] <= 0:
            del self.filename_counts[name]
        slot = self._slot_of(key)
        self.slot_inode_counts[slot] += delta
        if self.slot_inode_counts[slot] <= 0:
            del self.slot_inode_counts[slot]
        if delta > 0:
            self._name_parents[name].add(pid)
        else:
            self._name_parents[name].discard(pid)
            if not self._name_parents[name]:
                del self._name_parents[name]

    # ------------------------------------------------------------------
    # responses / forwarding
    # ------------------------------------------------------------------

    def _respond_ok(self, message, data):
        body = {"ok": True, "data": data, "xt_version": self.xt.version}
        payload = message.payload
        requester_version = payload.get("xt_version") if payload else None
        if requester_version is not None and requester_version < self.xt.version:
            body["xt"] = exception_table_to_wire(self.xt)
        self.respond(message, body)

    def _respond_error(self, message, failure):
        self._op_errors_ctr.inc(RpcError.name(failure.code))
        self.respond_error(message, failure)

    def _forward(self, message, target_index):
        self._forwarded_ctr.inc(message.kind)
        forwarded = Message(
            self.name, self.shared.mnode_name(target_index), message.kind,
            message.payload, message.size, message.reply_to,
            ctx=message.ctx,
        )
        self.network.send(forwarded)

    # ------------------------------------------------------------------
    # eager replication ablation (the *no inv* configuration, Fig 15a)
    # ------------------------------------------------------------------

    def _mkdir_eager(self, plan):
        """mkdir with 2PC dentry replication to every MNode."""
        key = plan.inode_key
        ctx = plan.message.ctx or NULL_CONTEXT
        grant = self.locks.acquire(("i",) + key, LockMode.EXCLUSIVE,
                                   ctx=ctx)
        yield grant.event
        try:
            if self.inodes.get(key) is not None:
                self._respond_error(
                    plan.message, RpcFailure(RpcError.EEXIST, plan.name)
                )
                return
            ino = self.shared.allocator.allocate()
            mode = plan.payload.get("mode", 0o755)
            txid = "mkdir-{}-{}".format(self.name, ino)
            wire = {"ino": ino, "mode": mode, "uid": 0, "gid": 0}
            peers = [
                peer for peer in self.shared.mnode_names
                if peer != self.name
            ]
            with ctx.span("2pc", CAT_PHASE, node=self.name,
                          attrs={"txid": txid} if ctx.traced else None):
                votes = yield self.env.all_of([
                    self.call(peer, "replica_prepare",
                              {"txid": txid, "key": list(key),
                               "record": wire}, ctx=ctx)
                    for peer in peers
                ])
                yield from self.execute(
                    self.costs.two_phase_round_us * max(1, len(peers)),
                    ctx=ctx,
                )
                if not all(vote.get("ok") for vote in votes):
                    yield self.env.all_of([
                        self.call(peer, "replica_abort", {"txid": txid},
                                  ctx=ctx)
                        for peer in peers
                    ])
                    self._respond_error(
                        plan.message, RpcFailure(RpcError.ERETRY, plan.name)
                    )
                    return
                txn = self._txn(ctx=ctx)
                inode = InodeRecord(ino=ino, is_dir=True, mode=mode,
                                    mtime=self.env.now)
                txn.put(self.inodes, key, inode)
                txn.put(self.dentries, key, DentryRecord(ino=ino,
                                                         mode=mode))
                yield from txn.commit()
                self._track_name(key, +1)
                yield self.env.all_of([
                    self.call(peer, "replica_commit", {"txid": txid},
                              ctx=ctx)
                    for peer in peers
                ])
                yield from self.execute(
                    self.costs.two_phase_round_us * max(1, len(peers)),
                    ctx=ctx,
                )
            self.metrics.counter("ops").inc("mkdir")
            self._respond_ok(plan.message, {"ino": ino})
        finally:
            self.locks.release(grant)

    def _on_replica_prepare(self, message):
        payload = message.payload
        key = tuple(payload["key"])
        grant = self.locks.acquire(("d",) + key, LockMode.EXCLUSIVE,
                                   ctx=message.ctx)
        yield grant.event
        yield from self.execute(self.costs.index_insert_us, ctx=message.ctx)
        # Participants persist their vote before answering (2PC rule).
        yield self.wal.commit(self.costs.wal_record_bytes, ctx=message.ctx)
        self._staged[payload["txid"]] = {"key": key, "grant": grant,
                                         "record": payload["record"]}
        self.respond(message, {"ok": True})

    def _on_replica_commit(self, message):
        staged = self._staged.pop(message.payload["txid"])
        wire = staged["record"]
        self.dentries.put(staged["key"], DentryRecord(
            ino=wire["ino"], mode=wire["mode"], uid=wire["uid"],
            gid=wire["gid"],
        ))
        yield from self.execute(self.costs.index_insert_us)
        self.locks.release(staged["grant"])
        self.respond(message, {"ok": True})

    def _on_replica_abort(self, message):
        staged = self._staged.pop(message.payload["txid"], None)
        if staged is not None:
            self.locks.release(staged["grant"])
        self.respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # control plane: liveness and failover repair
    # ------------------------------------------------------------------

    def _on_ping(self, message):
        """Heartbeat probe from the failure detector.  A crashed node
        never answers (the network black-holes its traffic), so the
        detector's per-ping timeout is what turns death into a signal."""
        yield from self.execute(self.costs.dispatch_us)
        self.respond(message, {"ok": True, "index": self.my_index})

    def _on_wal_ack(self, message):
        """Standby applied-LSN acknowledgement: prune the shipper's
        retained history down to the unacknowledged suffix."""
        if (self.shipper is not None
                and message.sender == self.shipper.standby_name):
            self.shipper.acknowledge(message.payload["applied_lsn"])
        return
        yield  # pragma: no cover

    def _on_append_ack(self, message):
        """Consensus member ack: advance its match index, move the
        commit horizon, renew the lease — or fence this leader for good
        when the ack carries a higher term (a successor exists)."""
        shipper = self.shipper
        if shipper is not None and hasattr(shipper, "on_ack"):
            shipper.on_ack(message.payload)
        return
        yield  # pragma: no cover

    def _on_snapshot(self, message):
        """Base-backup fetch for a (re)joining standby: a copy of the
        replicated tables plus the shipping LSN the copy reflects.  The
        shipper must already point at the requester, so commits after
        this instant arrive as ordered log-shipping deltas the snapshot
        does not cover."""
        entries = {
            "inode": [(key, record.copy())
                      for key, record in self.inodes.scan()],
            "dentry": [(key, record.copy())
                       for key, record in self.dentries.scan()],
            "meta": [(key, value.copy())
                     for key, value in self.meta.scan()],
        }
        # The LSN must be read at the same instant as the table copy:
        # transactions committing while the copy cost elapses below are
        # not in the snapshot and must stay above its LSN so the standby
        # keeps (rather than drops) their buffered deltas.
        lsn = self.shipper.next_lsn - 1 if self.shipper is not None else 0
        count = sum(len(rows) for rows in entries.values())
        yield from self.execute(
            self.costs.index_lookup_us + 0.02 * count, ctx=message.ctx
        )
        reply = {"tables": entries, "lsn": lsn}
        if self.shipper is not None and hasattr(self.shipper, "last_term"):
            # Consensus: the follower resets its log base to this
            # snapshot point, so it needs the term at that position.
            reply["term"] = (self.shipper.last_term if lsn
                             == self.shipper.last_lsn else 0)
        self.respond(
            message, reply,
            size=self.costs.rpc_response_bytes
            + self.costs.wal_record_bytes * count,
        )

    def _on_invalidate_owner(self, message):
        """Invalidate every replica dentry owned by a failed MNode shard.

        After a promotion the survivors' cached dentries for the failed
        shard may be stale relative to the standby's state (anything
        from the lost-unshipped window), so they are conservatively
        marked INVALID and lazily refetched from the promoted owner.
        The payload names the failed node's *slots* (a node hosts
        several under the elastic namespace).
        """
        payload = message.payload
        if "slots" in payload:
            slots = set(payload["slots"])
        else:
            slots = {payload["owner"]}
        keys = [
            key for key, record in self.dentries.scan()
            if self.index.locate(key[0], key[1]) in slots
            and record.state == VALID
        ]
        yield from self.apply_invalidation(keys)
        self.respond(message, {"invalidated": len(keys)})

    def _on_fsck_scan(self, message):
        """Report every local inode entry for the coordinator's
        post-failover reachability sweep."""
        entries = [
            {"key": list(key), "ino": record.ino, "is_dir": record.is_dir}
            for key, record in self.inodes.scan()
        ]
        yield from self.execute(
            self.costs.index_lookup_us + 0.02 * len(entries)
        )
        self.respond(
            message, {"entries": entries},
            size=self.costs.rpc_response_bytes + 32 * len(entries),
        )

    def _on_fsck_delete(self, message):
        """Garbage-collect orphaned inodes (parent directory lost in a
        failover's unshipped window)."""
        keys = [tuple(key) for key in message.payload["keys"]]
        txn = self._txn(ctx=message.ctx)
        removed = []
        writer_slots = set()
        try:
            for key in keys:
                record = self.inodes.get(key)
                if record is None:
                    continue
                slot = self._slot_of(key)
                if slot in self.moved_slots or slot in self.pending_slots:
                    # Mid-slot-handoff: the slot's records travel with
                    # the handoff saga; its current host sweeps them.
                    continue
                if slot not in writer_slots:
                    writer_slots.add(slot)
                    self._slot_writers[slot] += 1
                txn.delete(self.inodes, key)
                if record.is_dir:
                    txn.delete(self.dentries, key)
                    self.inval_seq[("d",) + key] += 1
                removed.append(key)
            yield from self.execute(
                self.costs.index_delete_us * max(1, len(removed))
            )
            if txn.write_count:
                yield from txn.commit()
            else:
                txn.abort()
        finally:
            for slot in writer_slots:
                self._slot_writers[slot] -= 1
        for key in removed:
            self._track_name(key, -1)
        self.metrics.counter("fsck_removed").inc(amount=len(removed))
        self.respond(message, {"removed": len(removed)})

    # ------------------------------------------------------------------
    # control plane: replica maintenance
    # ------------------------------------------------------------------

    def _on_lookup_dentry(self, message):
        """Serve a dentry fetch from another namespace replica.

        Takes the directory inode's shared lock, so fetches block behind a
        namespace change that holds it exclusively (§4.3, case 2).
        """
        payload = message.payload
        key = (payload["pid"], payload["name"])
        grant = self.locks.acquire(("i",) + key, LockMode.SHARED,
                                   ctx=message.ctx)
        yield grant.event
        try:
            yield from self.execute(self.costs.index_lookup_us,
                                    ctx=message.ctx)
            record = self.inodes.get(key)
        finally:
            self.locks.release(grant)
        self.metrics.counter("served_lookups").inc()
        if record is None:
            self._respond_error(message, RpcFailure(RpcError.ENOENT, key))
        elif not record.is_dir:
            self._respond_error(message, RpcFailure(RpcError.ENOTDIR, key))
        else:
            self.respond(message, {
                "ino": record.ino, "mode": record.mode,
                "uid": record.uid, "gid": record.gid,
            })

    def _on_invalidate(self, message):
        """Invalidate replica dentries; optionally report child existence
        (the rmdir children check rides the same broadcast)."""
        payload = message.payload
        yield from self.apply_invalidation(payload["keys"])
        response = {}
        if payload.get("children_of") is not None:
            yield from self.execute(self.costs.index_lookup_us)
            response["has_children"] = self.inodes.has_prefix(
                (payload["children_of"],)
            )
        self.respond(message, response)

    # ------------------------------------------------------------------
    # control plane: namespace changes executed for the coordinator
    # ------------------------------------------------------------------

    def _on_rmdir_exec(self, message):
        """Owner-side rmdir: lock, broadcast invalidation + child check,
        then delete inode and local dentry if the directory is empty."""
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        dgrant = self.locks.acquire(("d",) + key, LockMode.EXCLUSIVE,
                                    ctx=ctx)
        yield dgrant.event
        igrant = self.locks.acquire(("i",) + key, LockMode.EXCLUSIVE,
                                    ctx=ctx)
        yield igrant.event
        slot = None
        try:
            # Registered as a slot writer in the same no-yield block as
            # the hosted check: a fence either sees this writer and
            # drains it, or fenced first and the check bounces us.
            slot = self._check_hosted(key)
            self._slot_writers[slot] += 1
            yield from self.execute(self.costs.index_lookup_us, ctx=ctx)
            record = self.inodes.get(key)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, payload["path"])
            if not record.is_dir:
                raise RpcFailure(RpcError.ENOTDIR, payload["path"])
            peers = [
                peer for peer in self.shared.mnode_names
                if peer != self.name
            ]
            # Marshaling one invalidation per peer costs owner CPU —
            # the cluster-size-proportional overhead of §6.2's rmdir.
            yield from self.execute(
                self.costs.invalidate_apply_us * 4 * len(peers), ctx=ctx
            )
            replies = yield self.env.all_of([
                self.call(peer, "invalidate",
                          {"keys": [list(key)], "children_of": record.ino},
                          ctx=ctx)
                for peer in peers
            ])
            yield from self.execute(self.costs.index_lookup_us, ctx=ctx)
            local_children = self.inodes.has_prefix((record.ino,))
            if local_children or any(r.get("has_children") for r in replies):
                raise RpcFailure(RpcError.ENOTEMPTY, payload["path"])
            txn = self._txn(ctx=ctx)
            txn.delete(self.inodes, key)
            txn.delete(self.dentries, key)
            yield from txn.commit()
            self.inval_seq[("d",) + key] += 1
            self._track_name(key, -1)
            # The delete is applied locally either way; only the *ack*
            # is gated on quorum.
            if not (yield from self._quorum_barrier()):
                raise RpcFailure(RpcError.ENOTLEADER, self.name)
            self.metrics.counter("ops").inc("rmdir")
            self.respond(message, {"ok": True})
        except RpcFailure as failure:
            self._respond_error(message, failure)
        finally:
            if slot is not None:
                self._slot_writers[slot] -= 1
            self.locks.release(igrant)
            self.locks.release(dgrant)

    def _on_chmod_exec(self, message):
        """Owner-side directory permission change: invalidate everywhere,
        then update the inode and the local replica dentry."""
        payload = message.payload
        ctx = message.ctx
        key = (payload["pid"], payload["name"])
        dgrant = self.locks.acquire(("d",) + key, LockMode.EXCLUSIVE,
                                    ctx=ctx)
        yield dgrant.event
        igrant = self.locks.acquire(("i",) + key, LockMode.EXCLUSIVE,
                                    ctx=ctx)
        yield igrant.event
        slot = None
        try:
            slot = self._check_hosted(key)
            self._slot_writers[slot] += 1
            record = self.inodes.get(key)
            if record is None:
                raise RpcFailure(RpcError.ENOENT, payload["path"])
            peers = [
                peer for peer in self.shared.mnode_names
                if peer != self.name
            ]
            yield self.env.all_of([
                self.call(peer, "invalidate", {"keys": [list(key)]},
                          ctx=ctx)
                for peer in peers
            ])
            updated = record.copy()
            updated.mode = payload["mode"]
            txn = self._txn(ctx=ctx)
            txn.put(self.inodes, key, updated)
            if record.is_dir:
                txn.put(self.dentries, key, DentryRecord(
                    ino=record.ino, mode=payload["mode"],
                    uid=record.uid, gid=record.gid,
                ))
            yield from txn.commit()
            if not (yield from self._quorum_barrier()):
                raise RpcFailure(RpcError.ENOTLEADER, self.name)
            self.metrics.counter("ops").inc("chmod")
            self.respond(message, {"ok": True})
        except RpcFailure as failure:
            self._respond_error(message, failure)
        finally:
            if slot is not None:
                self._slot_writers[slot] -= 1
            self.locks.release(igrant)
            self.locks.release(dgrant)

    # -- rename 2PC participant -----------------------------------------

    def _on_rename_prepare(self, message):
        payload = message.payload
        txid = payload["txid"]
        key = tuple(payload["key"])
        action = payload["action"]
        deadline = payload.get("deadline")
        igrant = self.locks.acquire(("i",) + key, LockMode.EXCLUSIVE,
                                    ctx=message.ctx)
        yield igrant.event
        dgrant = self.locks.acquire(("d",) + key, LockMode.EXCLUSIVE,
                                    ctx=message.ctx)
        yield dgrant.event
        if deadline is not None and self.env.now_us() > deadline:
            # The coordinator timed this attempt out while we were still
            # queued on the locks; its abort may already have arrived and
            # found nothing.  Staging now would hold these X grants with
            # nobody left to release them — refuse the vote instead.
            self.locks.release(igrant)
            self.locks.release(dgrant)
            self.respond(message, {"ok": False, "expired": True})
            return
        slot = self._slot_of(key)
        if slot not in self.hosted_slots:
            # The slot migrated away while we were queued on the locks
            # (or the coordinator resolved a stale map).  Refusing with
            # the bounce makes the coordinator abort and the client
            # re-resolve to the slot's new home.
            self.locks.release(igrant)
            self.locks.release(dgrant)
            self._respond_error(message, self._slot_failure(slot, key)
                                or RpcFailure(RpcError.ERETRY, key))
            return
        # Staged writers pin the slot until the decision applies or the
        # transaction aborts: a fence waits for the 2PC to finish, so
        # the decided actions land at the source and ride the capture.
        self._slot_writers[slot] += 1
        yield from self.execute(self.costs.index_lookup_us, ctx=message.ctx)
        record = self.inodes.get(key)
        ok = record is not None if action == "delete" else record is None
        staged = self._staged.setdefault(txid, [])
        staged.append({
            "action": action, "key": key, "grants": [igrant, dgrant],
            "record": payload.get("record"), "slot": slot,
        })
        # Persist the vote.
        yield self.wal.commit(self.costs.wal_record_bytes, ctx=message.ctx)
        if deadline is not None:
            # In-doubt termination: if neither commit nor abort shows up
            # (both can be black-holed by a crash or partition), ask the
            # coordinator for the recorded outcome rather than holding
            # the staged X locks forever.
            self.env.process(self._resolve_in_doubt(txid, deadline))
        response = {"ok": ok}
        if ok and action == "delete":
            response["record"] = inode_to_wire(record)
        self.respond(message, response)

    def _apply_rename(self, staged, ctx, txid):
        """Generator: apply a decided rename's staged actions in one
        transaction and release the staged locks.

        The same transaction durably marks each touched slot's half of
        ``txid`` as applied: a commit whose *acknowledgement* is lost
        (not the commit itself) spawns a coordinator completer that
        re-delivers the decision — and by the time that re-delivery
        lands, a later acked rename or unlink may have legitimately
        vacated the keys, so the redo guards alone cannot tell "never
        applied" from "applied, then superseded".  Only receiver-side
        memory can; it rides the WAL (redo restart), log shipping
        (promotion) and the slot handoff (capture tee + snapshot), so
        every future incarnation of the slot remembers."""
        txn = self._txn(ctx=ctx)
        for slot in sorted({entry["slot"] for entry in staged}):
            txn.put(self.meta, ("rename", slot, txid), {"applied": True})
        for entry in staged:
            key = entry["key"]
            if entry["action"] == "delete":
                record = self.inodes.get(key)
                txn.delete(self.inodes, key)
                if record is not None and record.is_dir:
                    txn.delete(self.dentries, key)
                    self.inval_seq[("d",) + key] += 1
                self._track_name(key, -1)
            else:
                record = inode_from_wire(entry["record"])
                txn.put(self.inodes, key, record)
                if record.is_dir:
                    txn.put(self.dentries, key, DentryRecord(
                        ino=record.ino, mode=record.mode,
                        uid=record.uid, gid=record.gid,
                    ))
                self._track_name(key, +1)
        yield from txn.commit()
        self._release_staged(staged)

    def _release_staged(self, staged):
        for entry in staged:
            for grant in entry["grants"]:
                self.locks.release(grant)
            slot = entry.get("slot")
            if slot is not None:
                self._slot_writers[slot] -= 1

    def _resolve_in_doubt(self, txid, deadline):
        """Process: terminate a prepared rename whose decision never
        arrived (presumed abort, commit confirmed by the coordinator)."""
        from repro.obs import deadline_call

        grace = 2 * (self.shared.config.rpc_timeout_us or 1000.0)
        yield self.env.timeout(max(0.0, deadline - self.env.now_us()) + grace)
        backoff = 500.0
        while txid in self._staged and not self.halted:
            try:
                reply = yield from deadline_call(
                    self, NULL_CONTEXT, self.shared.coordinator_name,
                    "rename_resolve", {"txid": txid},
                    timeout_us=self.shared.config.rpc_timeout_us or 1000.0,
                )
            except RpcFailure:
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, 8000.0)
                continue
            staged = self._staged.pop(txid, None)
            if staged is None:
                return
            if reply["state"] == "commit":
                yield from self._apply_rename(staged, NULL_CONTEXT, txid)
            else:
                self._release_staged(staged)
            return

    def _on_rename_commit(self, message):
        txid = message.payload["txid"]
        actions = message.payload.get("actions") or []
        staged = self._staged.pop(txid, None)
        if staged is not None:
            yield from self._apply_rename(staged, message.ctx, txid)
        elif self._rename_applied(txid, actions):
            # Already durably applied here (or by a predecessor whose
            # state this node inherited): the completer's re-delivery
            # must be a pure no-op ack.  Re-running the redo guards
            # instead would resurrect state a *later* acked rename or
            # unlink legitimately removed — the guards see a free key
            # and cannot know the insert already happened once.
            pass
        else:
            # No staged state and no applied marker: this node lost its
            # prepared half across a crash/promotion.  Redo from the
            # actions the commit carries, idempotently.
            try:
                yield from self._redo_rename(txid, actions, message.ctx)
            except RpcFailure as failure:
                # The key's slot migrated away: the completer re-resolves
                # the slot to its new home and re-delivers there.
                self._respond_error(message, failure)
                return
        # Acking a decided commit tells the coordinator's completer to
        # stop re-delivering — so under consensus the ack must wait for
        # quorum, or a minority leader would absorb the decision and a
        # later elected leader would never see these actions.  On
        # failure the completer retries against the slot, which the
        # election install re-points at the new leader (whose
        # _redo_rename applies the actions idempotently).
        if not (yield from self._quorum_barrier()):
            self._respond_error(
                message, RpcFailure(RpcError.ENOTLEADER, self.name)
            )
            return
        self.respond(message, {"ok": True})

    def _rename_applied(self, txid, actions):
        """True when every half this commit carries is already durably
        marked applied for ``txid`` on this node's slots."""
        if not actions:
            return False
        return all(
            self.meta.get(
                ("rename", self._slot_of(tuple(action["key"])), txid)
            ) is not None
            for action in actions
        )

    def _redo_rename(self, txid, actions, ctx):
        """Generator: apply a decided rename's actions without staged
        state, taking fresh locks per action.

        Guards make re-delivery and crash interleavings safe: a delete
        applies only while the key still holds the renamed ino, and an
        insert only while the key is free — an op acknowledged after the
        decision (a re-create of the source name, a create that took the
        destination after promotion dropped the prepare) wins over the
        redo, never the other way around.  Each action commits with its
        slot's applied marker for ``txid`` — even when a guard skips the
        data write, the decision is terminally resolved here and a later
        re-delivery must not get another chance at the key."""
        for action in actions:
            key = tuple(action["key"])
            igrant = self.locks.acquire(("i",) + key, LockMode.EXCLUSIVE,
                                        ctx=ctx)
            yield igrant.event
            dgrant = self.locks.acquire(("d",) + key, LockMode.EXCLUSIVE,
                                        ctx=ctx)
            yield dgrant.event
            slot = None
            try:
                slot = self._check_hosted(key)
                self._slot_writers[slot] += 1
                marker = ("rename", slot, txid)
                if self.meta.get(marker) is not None:
                    continue
                current = self.inodes.get(key)
                txn = self._txn(ctx=ctx)
                txn.put(self.meta, marker, {"applied": True})
                applied = None
                if action["action"] == "delete":
                    if current is not None and current.ino == action["ino"]:
                        txn.delete(self.inodes, key)
                        if current.is_dir:
                            txn.delete(self.dentries, key)
                            self.inval_seq[("d",) + key] += 1
                        self._track_name(key, -1)
                        applied = "delete"
                else:
                    record = inode_from_wire(action["record"])
                    if current is None:
                        txn.put(self.inodes, key, record)
                        if record.is_dir:
                            txn.put(self.dentries, key, DentryRecord(
                                ino=record.ino, mode=record.mode,
                                uid=record.uid, gid=record.gid,
                            ))
                        self._track_name(key, +1)
                        applied = "insert"
                yield from txn.commit()
                if applied is not None:
                    self.metrics.counter("rename_redos").inc(applied)
            finally:
                if slot is not None:
                    self._slot_writers[slot] -= 1
                self.locks.release(igrant)
                self.locks.release(dgrant)

    def _on_rename_abort(self, message):
        staged = self._staged.pop(message.payload["txid"], [])
        self._release_staged(staged)
        self.respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    # ------------------------------------------------------------------
    # control plane: directory listing
    # ------------------------------------------------------------------

    def _on_readdir(self, message):
        """Resolve the directory locally, then scatter a child scan to all
        MNodes (file inodes for one directory live everywhere)."""
        payload = message.payload
        if not self._serving_as_leader():
            self._respond_error(
                message, RpcFailure(RpcError.ENOTLEADER, self.name)
            )
            return
        try:
            components = split_path(payload["path"])
            resolved = yield from self.resolve_dir(components,
                                                   ctx=message.ctx)
        except (ValueError, RpcFailure) as failure:
            if not isinstance(failure, RpcFailure):
                failure = RpcFailure(RpcError.EINVAL, payload["path"])
            self._respond_error(message, failure)
            return
        dir_ino = resolved.ino
        peers = [
            peer for peer in self.shared.mnode_names if peer != self.name
        ]
        replies = yield self.env.all_of([
            self.call(peer, "scan_children", {"pid": dir_ino},
                      ctx=message.ctx)
            for peer in peers
        ])
        local = self._scan_children(dir_ino)
        yield from self.execute(
            self.costs.index_lookup_us + 0.02 * len(local),
            ctx=message.ctx,
        )
        # De-duplicate: during a slot handoff's install window the same
        # inode is (briefly, correctly) present on both the source and
        # the pending destination.
        entries = set(map(tuple, local))
        for reply in replies:
            entries.update(map(tuple, reply["entries"]))
        entries = sorted(entries)
        self.metrics.counter("ops").inc("readdir")
        self._respond_ok(message, {"entries": entries})

    def _on_scan_children(self, message):
        pid = message.payload["pid"]
        entries = self._scan_children(pid)
        yield from self.execute(
            self.costs.index_lookup_us + 0.02 * len(entries)
        )
        self.respond(
            message, {"entries": entries},
            size=self.costs.rpc_response_bytes + 16 * len(entries),
        )

    def _scan_children(self, pid):
        return [
            (key[1], record.is_dir)
            for key, record in self.inodes.scan_prefix((pid,))
        ]

    # ------------------------------------------------------------------
    # control plane: statistics, exception table, migration
    # ------------------------------------------------------------------

    def _on_stats(self, message):
        """Report local inode count and the top-k filename frequencies
        (the paper's O(n log n) statistics, §4.2.2)."""
        top_k = message.payload.get("top_k", 16)
        top = heapq.nlargest(
            top_k, self.filename_counts.items(), key=lambda item: item[1]
        )
        yield from self.execute(self.costs.index_lookup_us)
        self.respond(message, {
            "inode_count": len(self.inodes),
            "top_filenames": top,
            # Per-slot live record counts + the hosted set: the slot-
            # migration planner's raw material.
            "slot_counts": dict(self.slot_inode_counts),
            "hosted_slots": sorted(self.hosted_slots),
        })

    def _on_name_count(self, message):
        name = message.payload["name"]
        yield from self.execute(self.costs.index_lookup_us)
        self.respond(
            message, {"count": self.filename_counts.get(name, 0)}
        )

    def _on_xt_update(self, message):
        table = exception_table_from_wire(message.payload["table"])
        if table.version > self.xt.version:
            self.xt.version = table.version
            self.xt.pathwalk = table.pathwalk
            self.xt.override = table.override
        yield from self.execute(self.costs.index_lookup_us)
        self.respond(message, {"ok": True})

    def _on_fetch_xt(self, message):
        yield from self.execute(self.costs.index_lookup_us)
        self.respond(message, {"table": exception_table_to_wire(self.xt)})

    def _on_migrate_begin(self, message):
        self.migrating.update(message.payload["names"])
        self.respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def _on_migrate_end(self, message):
        self.migrating.difference_update(message.payload["names"])
        self.respond(message, {"ok": True})
        return
        yield  # pragma: no cover

    def _on_migrate_collect(self, message):
        """Remove and return every local inode with the given filename."""
        name = message.payload["name"]
        parents = sorted(self._name_parents.get(name, ()))
        entries = []
        txn = self._txn()
        writer_slots = set()
        try:
            for pid in parents:
                key = (pid, name)
                record = self.inodes.get(key)
                if record is None:
                    continue
                slot = self._slot_of(key)
                if slot in self.moved_slots or slot in self.pending_slots:
                    # Mid-slot-handoff copies: the fenced (or still
                    # installing) slot's records travel with the slot
                    # saga, not with the filename migration.  Note the
                    # slot here is the key's *post-xt-change* slot — a
                    # merely non-hosted slot is the normal collect case
                    # (the table change just re-homed the name).
                    continue
                if slot not in writer_slots:
                    writer_slots.add(slot)
                    self._slot_writers[slot] += 1
                entries.append({"key": list(key),
                                "record": inode_to_wire(record)})
                txn.delete(self.inodes, key)
                if record.is_dir:
                    txn.delete(self.dentries, key)
                    self.inval_seq[("d",) + key] += 1
            yield from self.execute(
                self.costs.index_delete_us * max(1, len(entries))
            )
            if txn.write_count:
                yield from txn.commit()
            else:
                txn.abort()
        finally:
            for slot in writer_slots:
                self._slot_writers[slot] -= 1
        for entry in entries:
            self._track_name(tuple(entry["key"]), -1)
        self.respond(
            message, {"entries": entries},
            size=self.costs.rpc_response_bytes + 64 * len(entries),
        )

    def _on_migrate_install(self, message):
        entries = message.payload["entries"]
        txn = self._txn()
        writer_slots = set()
        try:
            for entry in entries:
                key = tuple(entry["key"])
                slot = self._slot_of(key)
                if slot in self.hosted_slots and slot not in writer_slots:
                    writer_slots.add(slot)
                    self._slot_writers[slot] += 1
                record = inode_from_wire(entry["record"])
                txn.put(self.inodes, key, record)
                if record.is_dir:
                    txn.put(self.dentries, key, DentryRecord(
                        ino=record.ino, mode=record.mode,
                        uid=record.uid, gid=record.gid,
                    ))
                self._track_name(key, +1)
            yield from self.execute(
                self.costs.index_insert_us * max(1, len(entries))
            )
            if txn.write_count:
                yield from txn.commit()
            else:
                txn.abort()
        finally:
            for slot in writer_slots:
                self._slot_writers[slot] -= 1
        self.respond(message, {"ok": True})

    # ------------------------------------------------------------------
    # control plane: online slot handoff (elastic namespace)
    # ------------------------------------------------------------------

    def _on_slot_snapshot(self, message):
        """Source step 1 of an online slot handoff: atomically copy
        every inode record in the slot and open the delta capture.

        The copy and the capture start in one no-yield instant, so
        every commit lands in exactly one of them — the analogue of
        :meth:`_on_snapshot` reading the ship LSN at copy time."""
        slot = message.payload["slot"]
        entries = [
            {"key": list(key), "record": inode_to_wire(record)}
            for key, record in self.inodes.scan()
            if self._slot_of(key) == slot
        ]
        # The slot's rename-applied markers ride along: the destination
        # inherits the duty of no-op-acking stale commit re-deliveries.
        markers = [
            {"key": list(key), "record": dict(value)}
            for key, value in self.meta.scan()
            if key[0] == "rename" and key[1] == slot
        ]
        self._slot_capture[slot] = []
        yield from self.execute(
            self.costs.index_lookup_us + 0.02 * len(entries),
            ctx=message.ctx,
        )
        self.respond(
            message, {"slot": slot, "entries": entries,
                      "markers": markers},
            size=self.costs.rpc_response_bytes + 64 * len(entries),
        )

    def _on_slot_install(self, message):
        """Destination step 2: durably install the source's snapshot.

        The slot stays *pending* — requests bounce ERETRY — until
        ``slot_activate`` applies the fenced delta.  Directory dentries
        are reconstructed from the inode records: this node is about to
        become their owner, so its replica entries must be
        authoritative, not fetched from the (retiring) source."""
        payload = message.payload
        slot = payload["slot"]
        entries = payload["entries"]
        self.pending_slots.add(slot)
        txn = self._txn(ctx=message.ctx)
        # Durable marker: a crash between install and activate restarts
        # with the slot *pending*, never serving the delta-less copy.
        txn.put(self.meta, ("slot", slot), {"state": "pending"})
        for marker in payload.get("markers", ()):
            txn.put(self.meta, tuple(marker["key"]),
                    dict(marker["record"]))
        for entry in entries:
            key = tuple(entry["key"])
            record = inode_from_wire(entry["record"])
            if txn.get(self.inodes, key) is None:
                self._track_name(key, +1)
            txn.put(self.inodes, key, record)
            if record.is_dir:
                txn.put(self.dentries, key, DentryRecord(
                    ino=record.ino, mode=record.mode,
                    uid=record.uid, gid=record.gid,
                ))
        yield from self.execute(
            self.costs.index_insert_us * max(1, len(entries)),
            ctx=message.ctx,
        )
        if txn.write_count:
            yield from txn.commit()
        else:
            txn.abort()
        if self.shared.config.broken_handoff:
            # PLANTED BUG (test-only): start serving as soon as the
            # snapshot lands, without waiting for the fenced delta —
            # any write the source acknowledged during the capture
            # window is invisible here (and clobbered when the stale
            # activate arrives).  The migration nemesis must catch it.
            self.pending_slots.discard(slot)
            self.hosted_slots.add(slot)
            self.moved_slots.pop(slot, None)
        self.respond(message, {"ok": True, "installed": len(entries)})

    def _on_slot_fence(self, message):
        """Source step 3: the fence.  Stop serving the slot in one
        no-yield instant — every later request bounces EMOVED with the
        destination hint — drain the in-flight local writers, then
        return the captured delta, closing the capture atomically."""
        payload = message.payload
        slot = payload["slot"]
        self.hosted_slots.discard(slot)
        self.moved_slots[slot] = {
            "node": payload["node"], "epoch": payload["epoch"],
        }
        # Writers registered before the fence drain to zero with the
        # capture still running, so their commits are in the delta; no
        # new writer can register (the hosted check above bounces it).
        while self._slot_writers.get(slot, 0) > 0:
            yield self.env.timeout(50.0)
        self._slot_writers.pop(slot, None)
        delta = self._slot_capture.pop(slot, [])
        entries = []
        for table, key, value in delta:
            if value is None:
                wire = None
            elif table == "inode":
                wire = inode_to_wire(value)
            elif table == "meta":
                wire = dict(value)
            else:
                wire = dentry_to_wire(value)
            entries.append({"table": table, "key": list(key),
                            "record": wire})
        # Durable fence marker *before* the delta leaves this node: a
        # restart must come back fenced, not resurrect the slot from
        # the (not yet flipped) map and serve state the destination is
        # about to supersede.
        txn = self._txn(ctx=message.ctx)
        txn.put(self.meta, ("slot", slot), {
            "state": "moved", "node": payload["node"],
            "epoch": payload["epoch"],
        })
        yield from txn.commit()
        yield from self.execute(
            self.costs.index_lookup_us + 0.02 * len(entries),
            ctx=message.ctx,
        )
        self.respond(
            message, {"ok": True, "delta": entries},
            size=self.costs.rpc_response_bytes + 64 * len(entries),
        )

    def _on_slot_activate(self, message):
        """Destination step 4: durably apply the fenced delta, then
        start serving.  The ordering is the handoff-safety invariant:
        every write the source ever acknowledged for this slot is
        applied here before the first request is."""
        payload = message.payload
        slot = payload["slot"]
        if slot in self.hosted_slots:
            # Already serving.  Unreachable under the correct protocol
            # (the slot is pending until this handler runs); only the
            # broken_handoff ablation lands here — it activated at
            # install time and now drops the delta on the floor.
            self.respond(message, {"ok": True, "applied": 0})
            return
        txn = self._txn(ctx=message.ctx)
        # Durable adoption marker, committed atomically with the delta:
        # a restart after this commit serves the slot; before it, the
        # slot is still pending and the re-delivered activate applies.
        txn.put(self.meta, ("slot", slot), {"state": "active"})
        applied = 0
        for entry in payload["delta"]:
            key = tuple(entry["key"])
            if entry["table"] == "inode":
                current = txn.get(self.inodes, key)
                if entry["record"] is None:
                    if current is not None:
                        txn.delete(self.inodes, key)
                        self._track_name(key, -1)
                else:
                    if current is None:
                        self._track_name(key, +1)
                    txn.put(self.inodes, key,
                            inode_from_wire(entry["record"]))
            elif entry["table"] == "meta":
                # A rename-applied marker committed at the source
                # during the capture window.
                if entry["record"] is None:
                    txn.delete(self.meta, key)
                else:
                    txn.put(self.meta, key, dict(entry["record"]))
            else:
                if entry["record"] is None:
                    txn.delete(self.dentries, key)
                else:
                    txn.put(self.dentries, key,
                            dentry_from_wire(entry["record"]))
            applied += 1
        yield from self.execute(
            self.costs.index_insert_us * max(1, applied), ctx=message.ctx
        )
        if txn.write_count:
            yield from txn.commit()
        else:
            txn.abort()
        self.pending_slots.discard(slot)
        self.hosted_slots.add(slot)
        # A slot migrating *back* clears the tombstone from its earlier
        # handoff; clients whose maps still point elsewhere recover via
        # server-side forwarding.
        self.moved_slots.pop(slot, None)
        self.metrics.counter("slots_adopted").inc()
        self.respond(message, {"ok": True, "applied": applied})

    def _on_slot_reclaim(self, message):
        """Source-side abort: the destination died mid-handoff.  Resume
        serving from local state — nothing was lost, every write this
        node acknowledged is still durably here (the purge never ran).
        Idempotent: safe to re-deliver, safe on a restarted incarnation
        that never fenced."""
        slot = message.payload["slot"]
        self.moved_slots.pop(slot, None)
        self._slot_capture.pop(slot, None)
        self.pending_slots.discard(slot)
        self.hosted_slots.add(slot)
        if self.meta.get(("slot", slot)) is not None:
            txn = self._txn(ctx=message.ctx)
            txn.delete(self.meta, ("slot", slot))
            yield from txn.commit()
        self.respond(message, {"ok": True})

    def _on_slot_discard(self, message):
        """Destination-side abort: the saga failed before the map flip.
        Delete the installed copy — the placement audit must never find
        the same key authoritative on two nodes."""
        slot = message.payload["slot"]
        self.pending_slots.discard(slot)
        self.hosted_slots.discard(slot)
        removed = 0
        txn = self._txn(ctx=message.ctx)
        txn.delete(self.meta, ("slot", slot))
        for key, _ in list(self.meta.scan()):
            if key[0] == "rename" and key[1] == slot:
                txn.delete(self.meta, key)
        for key, record in list(self.inodes.scan()):
            if self._slot_of(key) != slot:
                continue
            txn.delete(self.inodes, key)
            if record.is_dir:
                txn.delete(self.dentries, key)
            self._track_name(key, -1)
            removed += 1
        yield from self.execute(
            self.costs.index_delete_us * max(1, removed), ctx=message.ctx
        )
        if txn.write_count:
            yield from txn.commit()
        else:
            txn.abort()
        self.respond(message, {"ok": True, "removed": removed})

    def _on_slot_purge(self, message):
        """Source final step, after the authoritative map flip: delete
        the migrated slot's inode records — the destination owns them
        now.  Directory dentries stay behind as ordinary replica cache
        (no longer authoritative: the slot is not hosted here)."""
        slot = message.payload["slot"]
        removed = 0
        txn = self._txn(ctx=message.ctx)
        # The slot's rename-applied markers went with the handoff (the
        # destination answers stale commit re-deliveries now); drop the
        # dead local copies alongside the records.
        for key, _ in list(self.meta.scan()):
            if key[0] == "rename" and key[1] == slot:
                txn.delete(self.meta, key)
        for key, record in list(self.inodes.scan()):
            if self._slot_of(key) != slot:
                continue
            txn.delete(self.inodes, key)
            self._track_name(key, -1)
            removed += 1
        yield from self.execute(
            self.costs.index_delete_us * max(1, removed), ctx=message.ctx
        )
        if txn.write_count:
            yield from txn.commit()
        else:
            txn.abort()
        self.metrics.counter("slot_purged").inc(amount=removed)
        self.respond(message, {"ok": True, "removed": removed})


def dentry_to_wire(record):
    """Serialize a :class:`DentryRecord` for a handoff delta."""
    return {"ino": record.ino, "mode": record.mode, "uid": record.uid,
            "gid": record.gid, "state": record.state}


def dentry_from_wire(data):
    return DentryRecord(ino=data["ino"], mode=data["mode"],
                        uid=data["uid"], gid=data["gid"],
                        state=data.get("state", VALID))


def exception_table_to_wire(table):
    """Serialize an exception table for RPC distribution."""
    return {
        "version": table.version,
        "pathwalk": sorted(table.pathwalk),
        "override": dict(table.override),
    }


def exception_table_from_wire(data):
    return ExceptionTable(
        version=data["version"],
        pathwalk=data["pathwalk"],
        override=data["override"],
    )
