"""Metadata record types stored in MNode tables (Table 1 of the paper).

Both tables key by ``(parent_id, name)``:

* **dentry** records form the namespace replica — directory entries only,
  replicated (lazily) on every MNode.  A replica entry can be *valid*,
  *invalid* (it must be refetched from its owner before use — the
  invalidation-based locking of §4.3), or absent (fetched on demand).
* **inode** records hold per-file/directory attributes, sharded across
  MNodes by hybrid indexing.

A server-side dentry record is intentionally small (the paper's §3 notes
under 100 bytes vs 800 bytes for a VFS-cached directory); we model that
footprint for the memory-accounting experiments.
"""

from dataclasses import dataclass
from itertools import count

#: Modeled memory footprint of a server-side namespace-replica entry.
SERVER_DENTRY_BYTES = 96

#: Dentry replica states.
VALID = "valid"
INVALID = "invalid"


@dataclass
class DentryRecord:
    """Namespace-replica entry for one directory."""

    ino: int
    mode: int = 0o755
    uid: int = 0
    gid: int = 0
    state: str = VALID

    def copy(self):
        return DentryRecord(self.ino, self.mode, self.uid, self.gid, self.state)


@dataclass
class InodeRecord:
    """Sharded attribute record for a file or directory."""

    ino: int
    is_dir: bool = False
    mode: int = 0o644
    uid: int = 0
    gid: int = 0
    size: int = 0
    mtime: float = 0.0
    nlink: int = 1

    def copy(self):
        return InodeRecord(
            self.ino, self.is_dir, self.mode, self.uid, self.gid,
            self.size, self.mtime, self.nlink,
        )


def inode_to_wire(record):
    """Serialize an :class:`InodeRecord` for an RPC payload."""
    return {
        "ino": record.ino,
        "is_dir": record.is_dir,
        "mode": record.mode,
        "uid": record.uid,
        "gid": record.gid,
        "size": record.size,
        "mtime": record.mtime,
        "nlink": record.nlink,
    }


def inode_from_wire(data):
    """Deserialize an RPC payload into an :class:`InodeRecord`."""
    return InodeRecord(
        ino=data["ino"],
        is_dir=data["is_dir"],
        mode=data["mode"],
        uid=data["uid"],
        gid=data["gid"],
        size=data["size"],
        mtime=data["mtime"],
        nlink=data["nlink"],
    )


class InodeAllocator:
    """Cluster-wide unique inode numbers.

    Real FalconFS allocates ids from per-MNode ranges handed out by the
    coordinator; a shared counter is behaviourally identical because
    placement never depends on the id value.  The multi-process serving
    mode, where no object is shared, gives each MNode a strided counter
    (``start=2+index, step=num_mnodes``) — disjoint id spaces with no
    coordination.
    """

    def __init__(self, start=2, step=1):
        self._next = count(start, step)

    def allocate(self):
        return next(self._next)
