"""Hybrid metadata indexing (§4.2).

The index answers one question: *which MNode owns the inode for this
(parent, name)?*  The common case is pure filename hashing.  Two kinds of
exception-table entries redirect corner cases:

* **path-walk redirection** — hot filenames (e.g. ``Makefile``) hash by
  ``(parent_id, name)`` instead, spreading their many instances across
  MNodes.  A client cannot compute this placement (it does not know parent
  ids), so it sends the request to a *random* MNode, which resolves the
  parent locally and forwards one hop (§4.2.1).
* **overriding redirection** — a filename is pinned to a designated MNode
  to correct hash variance; clients send straight to it.

The table is versioned: the coordinator pushes updates eagerly to MNodes
and clients refresh lazily off responses, so MNodes must validate every
request against their own copy and forward misdirected ones.
"""

import zlib

#: Routing decisions returned by :meth:`HybridIndex.route`.
ROUTE_HASH = "hash"
ROUTE_PATHWALK = "pathwalk"
ROUTE_OVERRIDE = "override"


_hash_cache = {}


def stable_hash(value):
    """A process-stable hash of a string or tuple of strings/ints.

    Python's builtin ``hash`` is randomized per process; placement must be
    deterministic across runs, so we CRC the repr of the key.  Results are
    memoized: routing hashes the same filename on every hop, and the cache
    grows with the namespace, which the simulation holds in memory anyway.
    """
    cached = _hash_cache.get(value)
    if cached is not None:
        return cached
    if isinstance(value, tuple):
        data = "\x00".join(str(part) for part in value)
    else:
        data = str(value)
    result = zlib.crc32(data.encode("utf-8"))
    _hash_cache[value] = result
    return result


class ExceptionTable:
    """Versioned set of redirection entries, copied on every node.

    Immutable by convention: mutation helpers return the entry sets in
    place but bump ``version``; distribution happens by handing whole
    copies around (the tables are tiny — Table 3 shows 0-2 entries in
    practice, §A.1 bounds them at O(n log n)).
    """

    def __init__(self, version=0, pathwalk=None, override=None):
        self.version = version
        #: Filenames placed by (parent_id, name) hashing.
        self.pathwalk = set(pathwalk or ())
        #: Filename -> MNode index pinnings.
        self.override = dict(override or {})

    def copy(self):
        return ExceptionTable(self.version, self.pathwalk, self.override)

    def __len__(self):
        return len(self.pathwalk) + len(self.override)

    def __repr__(self):
        return "<ExceptionTable v{} pathwalk={} override={}>".format(
            self.version, sorted(self.pathwalk), self.override
        )

    def add_pathwalk(self, name):
        self.pathwalk.add(name)
        self.override.pop(name, None)
        self.version += 1

    def add_override(self, name, node_index):
        self.override[name] = node_index
        self.pathwalk.discard(name)
        self.version += 1

    def remove(self, name):
        removed = name in self.pathwalk or name in self.override
        self.pathwalk.discard(name)
        self.override.pop(name, None)
        if removed:
            self.version += 1
        return removed


class HybridIndex:
    """Placement logic shared by clients, MNodes and the coordinator.

    ``num_nodes`` is the number of directory *slots* hashed over.  In
    the static layout there is one slot per MNode and the slot index is
    the node index; under the elastic namespace the cluster slot map
    (:class:`repro.core.shared.SlotMap`) resolves slot -> current host,
    so everything this index returns is a slot.
    """

    def __init__(self, num_nodes, table=None):
        if num_nodes < 1:
            raise ValueError("need at least one MNode")
        self.num_nodes = num_nodes
        self.table = table if table is not None else ExceptionTable()

    def hash_name(self, name):
        """Common-case placement: hash of the filename alone."""
        return stable_hash(name) % self.num_nodes

    def hash_parent_name(self, parent_id, name):
        """Path-walk-redirected placement: hash of (parent_id, name)."""
        return stable_hash((parent_id, name)) % self.num_nodes

    def route(self, name):
        """Classify ``name``: (ROUTE_*, target-node-or-None).

        ``ROUTE_HASH`` and ``ROUTE_OVERRIDE`` give a definite target;
        ``ROUTE_PATHWALK`` requires parent resolution (target None at the
        client, computable server-side via :meth:`hash_parent_name`).
        """
        if name in self.table.override:
            return ROUTE_OVERRIDE, self.table.override[name]
        if name in self.table.pathwalk:
            return ROUTE_PATHWALK, None
        return ROUTE_HASH, self.hash_name(name)

    def locate(self, parent_id, name):
        """Definitive owner MNode for ``(parent_id, name)`` — server side,
        where the parent id is known."""
        kind, target = self.route(name)
        if kind == ROUTE_PATHWALK:
            return self.hash_parent_name(parent_id, name)
        return target

    def client_target(self, name, rng=None):
        """Where a client should send a request about ``name``.

        Returns ``(node_index, is_definitive)``.  For path-walk entries the
        client picks a random MNode (which forwards), so the result is not
        definitive and the operation costs an extra hop.
        """
        kind, target = self.route(name)
        if kind == ROUTE_PATHWALK:
            if rng is None:
                return 0, False
            return rng.randrange(self.num_nodes), False
        return target, True
