"""Lazy namespace replication (§4.3): the replica holder mixin.

Both MNodes and the coordinator hold a namespace replica — a table of
directory dentries keyed ``(parent_id, name)`` — and resolve paths against
it locally.  Missing or invalidated entries are fetched on demand from the
directory's *owner* MNode (the node hybrid indexing placed its inode on).

The mixin also implements the receiving side of the invalidation protocol:
an invalidation X-locks the dentry (waiting out any in-flight request that
holds it shared), bumps the key's invalidation sequence number (so lookup
responses issued before the invalidation are discarded — the paper's
"discard stale responses" rule), and marks the entry invalid.
"""

from collections import defaultdict

from repro.core.records import INVALID, VALID, DentryRecord
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import NULL_CONTEXT, RetryPolicy, deadline_call, retry
from repro.storage import LockManager, LockMode, Table
from repro.vfs.attrs import ROOT_INO

#: Resolution gives up after this many discarded (stale) fetches.
MAX_FETCH_RETRIES = 16

#: Stale fetches retry immediately (zero backoff keeps the protocol's
#: interleavings deterministic); the +1 turns the retry cap into an
#: attempt budget.
_FETCH_POLICY = RetryPolicy(max_attempts=MAX_FETCH_RETRIES + 1,
                            base_us=0.0)


class ResolvedDir:
    """Result of resolving a directory path against the local replica."""

    __slots__ = ("ino", "chain")

    def __init__(self, ino, chain):
        self.ino = ino
        #: list of (dentry_lock_key, record, inval_seq) per component.
        self.chain = chain


class NamespaceReplicaMixin:
    """Adds a namespace replica to a :class:`~repro.net.Node` subclass.

    Requires the host class to provide ``env``, ``costs``, ``shared``,
    ``call`` and ``metrics``; call :meth:`init_replica` from ``__init__``.
    """

    def init_replica(self):
        self.dentries = Table("dentry")
        self.locks = LockManager(self.env)
        self.inval_seq = defaultdict(int)
        #: The root directory is known everywhere and never invalidated.
        self.root_dentry = DentryRecord(ino=ROOT_INO, mode=0o777)

    # -- resolution ---------------------------------------------------------

    def resolve_dir(self, components, ctx=None):
        """Generator: resolve a directory path locally, fetching missing
        dentries from their owners.  Returns a :class:`ResolvedDir`.

        Raises :class:`RpcFailure` with ``ENOENT`` (component missing — the
        one extra hop the paper accepts for negative accesses), ``ENOTDIR``
        or ``EACCES``.
        """
        current = ROOT_INO
        mode = self.root_dentry.mode
        chain = []
        dget = self.dentries.get
        for name in components:
            if not mode & 0o111:
                raise RpcFailure(RpcError.EACCES, "/".join(components))
            key = (current, name)
            # Local VALID record: skip the fetch/retry machinery entirely
            # (the overwhelmingly common case — replicas are warm).
            record = dget(key)
            if record is None or record.state == INVALID:
                record = yield from self._dentry_record(key, ctx)
            dkey = ("d",) + key
            chain.append((dkey, record, self.inval_seq[dkey]))
            current = record.ino
            mode = record.mode
        return ResolvedDir(current, chain)

    def _dentry_record(self, key, ctx=None):
        """Generator: return a VALID dentry record for ``key``.

        A fetch whose response was invalidated in flight is discarded
        and re-issued (§4.3 conflict resolution, case 2) via the shared
        retry helper, with zero backoff and a bounded attempt budget.
        """
        record = self.dentries.get(key)
        if record is not None and record.state != INVALID:
            return record
        timeout_us = self.shared.config.rpc_timeout_us or None

        def attempt(_attempt, _hint):
            record = self.dentries.get(key)
            while record is None or record.state == INVALID:
                if self._owns_dentry(key):
                    # We are the owner: absence is authoritative.
                    if record is not None:
                        self.dentries.delete(key)
                    raise RpcFailure(RpcError.ENOENT, key)
                dkey = ("d",) + key
                seq = self.inval_seq[dkey]
                self.metrics.counter("remote_lookups").inc()
                payload = {"pid": key[0], "name": key[1]}
                try:
                    if timeout_us is None:
                        attrs = yield self.call(
                            self._owner_name(key), "lookup_dentry",
                            payload, ctx=ctx,
                        )
                    else:
                        # Bounded fetch: a crashed owner black-holes the
                        # request, and the holder may be sitting on locks
                        # other operations need (the rename path fetches
                        # while holding the global rename mutex).  Each
                        # timed-out attempt re-resolves the owner, so the
                        # retry lands on the promoted standby once
                        # failover installs it.
                        attrs = yield from deadline_call(
                            self, ctx or NULL_CONTEXT,
                            self._owner_name(key), "lookup_dentry",
                            payload, timeout_us=timeout_us,
                        )
                except RpcFailure as failure:
                    if (failure.code == RpcError.ENOENT
                            and record is not None):
                        self.dentries.delete(key)
                    raise
                if self.inval_seq[dkey] != seq:
                    # Stale response: let the retry helper re-issue.
                    raise RpcFailure(RpcError.ERETRY, key)
                record = DentryRecord(
                    ino=attrs["ino"], mode=attrs["mode"], uid=attrs["uid"],
                    gid=attrs["gid"], state=VALID,
                )
                self.dentries.put(key, record)
            return record

        retryable = (RpcError.ERETRY,)
        if timeout_us is not None:
            retryable = (RpcError.ERETRY, RpcError.ETIMEDOUT)
        record = yield from retry(
            self, ctx or NULL_CONTEXT, attempt, policy=_FETCH_POLICY,
            retryable=retryable,
        )
        return record

    def _owns_dentry(self, key):
        """True when this node is the owner MNode of ``key``'s inode."""
        return False

    def _owner_name(self, key):
        index = self.index.locate(key[0], key[1])
        return self.shared.mnode_name(index)

    # -- invalidation (receiving side) ---------------------------------------

    def apply_invalidation(self, keys):
        """Generator: X-lock, bump sequence and mark INVALID for each key."""
        for key in keys:
            dkey = ("d",) + tuple(key)
            grant = self.locks.acquire(dkey, LockMode.EXCLUSIVE)
            yield grant.event
            self.inval_seq[dkey] += 1
            record = self.dentries.get(tuple(key))
            if record is not None:
                record.state = INVALID
            self.locks.release(grant)
            if self.costs.invalidate_apply_us:
                yield self.env.timeout(self.costs.invalidate_apply_us)
            self.metrics.counter("invalidations").inc()
