"""FalconFS: the paper's primary contribution.

The package wires the substrates (:mod:`repro.sim`, :mod:`repro.net`,
:mod:`repro.storage`, :mod:`repro.vfs`) into the stateless-client DFS of
the paper:

* :mod:`repro.core.indexing` — hybrid metadata indexing (§4.2): filename
  hashing in the common case, selective redirection (path-walk and
  overriding) via a versioned exception table.
* :mod:`repro.core.mnode` — metadata nodes: lazily replicated namespace,
  sharded inode table, invalidation-based concurrency control (§4.3) and
  concurrent request merging (§4.4).
* :mod:`repro.core.coordinator` — namespace-change coordination (rmdir,
  chmod, rename via 2PL/2PC) and statistical load balancing (§4.2.2).
* :mod:`repro.core.client` — the stateless client with VFS shortcut (§5)
  and the stateful FalconFS-NoBypass variant used in the ablations.
* :mod:`repro.core.filestore` — the hash-placed block store (data path).
* :mod:`repro.core.cluster` — cluster assembly plus a synchronous
  POSIX-like facade for examples and tests.
"""

from repro.core.cluster import FalconCluster, FalconConfig, FalconFilesystem
from repro.core.indexing import ExceptionTable, HybridIndex, stable_hash
from repro.core.verify import InvariantViolation, check_cluster_invariants

__all__ = [
    "ExceptionTable",
    "FalconCluster",
    "FalconConfig",
    "FalconFilesystem",
    "HybridIndex",
    "InvariantViolation",
    "check_cluster_invariants",
    "stable_hash",
]
