"""Cluster assembly and the synchronous facade.

:class:`FalconCluster` wires MNodes, the coordinator, storage nodes and
clients onto one simulated network.  :class:`FalconFilesystem` is a
synchronous POSIX-like view for examples and tests: each call spawns the
client operation as a simulation process and runs the event loop until it
completes, so callers never see generators.

Example
-------
>>> from repro.core import FalconCluster
>>> cluster = FalconCluster()
>>> fs = cluster.fs()
>>> fs.mkdir("/data")
>>> fs.write("/data/sample.bin", size=64 * 1024)
>>> fs.read("/data/sample.bin")
65536
"""

from repro.core.client import FalconClient
from repro.core.coordinator import Coordinator
from repro.core.filestore import StorageNode
from repro.core.mnode import MNode
from repro.core.records import DentryRecord, InodeRecord
from repro.core.shared import ClusterShared, FalconConfig
from repro.net import CostModel, Network
from repro.net.rpc import RpcError, RpcFailure
from repro.runtime import SimEnv
from repro.vfs.attrs import ROOT_INO
from repro.vfs.pathwalk import basename, join_path, parent_path, split_path


class FalconCluster:
    """A complete simulated FalconFS deployment."""

    def __init__(self, config=None, costs=None, env=None, tracer=None):
        self.config = config or FalconConfig()
        self.env = env or SimEnv()
        self.costs = costs or CostModel()
        self.costs.server_cores = self.config.server_cores
        self.shared = ClusterShared(self.env, self.costs, self.config,
                                    tracer=tracer)
        self.network = Network(self.env, self.costs)
        self.mnodes = [
            MNode(self.env, self.network, self.shared, i)
            for i in range(self.config.num_mnodes)
        ]
        self.coordinator = Coordinator(self.env, self.network, self.shared)
        self.standbys = []
        #: Vote-only consensus members, one per slot (consensus mode).
        self.witnesses = []
        self._consensus_running = False
        #: (slot, name) of deposed-but-alive leaders awaiting demotion.
        self._zombies = []
        if self.config.consensus:
            from repro.storage.consensus import ConsensusFollower, Witness

            for i, mnode in enumerate(self.mnodes):
                witness = Witness(
                    self.env, self.network, mnode.name + "-witness",
                    election_timeout_us=self.config.election_timeout_us,
                )
                follower = self._make_follower(i, mnode.name + "-standby",
                                               witness.name)
                mnode.attach_group(witness.name,
                                   standby_name=follower.name)
                self.witnesses.append(witness)
                self.standbys.append(follower)
                self.coordinator.register_leader(i, 1, mnode.name)
            self.coordinator.install_leader = self.install_elected_leader
        elif self.config.replication:
            from repro.storage.replication import Standby

            for mnode in self.mnodes:
                standby = Standby(self.env, self.network,
                                  mnode.name + "-standby")
                mnode.attach_standby(standby.name)
                self.standbys.append(standby)
        self.storage = [
            StorageNode(self.env, self.network, name)
            for name in self.shared.storage_names
        ]
        self.clients = []
        #: Crash events ({index, name, at, lag_at_crash}) — see crash_mnode.
        self.crash_log = []
        #: Dead primaries kept for post-mortem inspection (tests compare
        #: their tables against the promoted standby's).
        self.retired_mnodes = []
        #: slot index -> crashed-and-not-yet-restarted node object.
        self._crashed = {}
        #: One record per completed crash-restart — see restart_mnode.
        self.restart_log = []
        #: Active heartbeat failure detector, if started.
        self.detector = None
        self._promotions = 0

    # -- clients -----------------------------------------------------------

    def add_client(self, mode="vfs", cache_budget_bytes=None, name=None):
        """Attach a new client; returns the :class:`FalconClient`."""
        if name is None:
            name = "client-{}".format(len(self.clients))
        client = FalconClient(
            self.env, self.network, self.shared, name,
            mode=mode, cache_budget_bytes=cache_budget_bytes,
        )
        self.clients.append(client)
        return client

    def fs(self, client=None, **client_kwargs):
        """A synchronous filesystem view bound to ``client`` (or a new one)."""
        if client is None:
            client = self.add_client(**client_kwargs)
        return FalconFilesystem(self, client)

    # -- execution helpers ---------------------------------------------------

    def run_process(self, generator):
        """Run a client/coordinator generator to completion; return its value."""
        process = self.env.process(generator)
        return self.env.run(until=process)

    def run_for(self, duration_us):
        """Advance simulated time by ``duration_us``."""
        self.env.run(until=self.env.now + duration_us)

    # -- cluster management ---------------------------------------------------

    def rebalance(self):
        """Run the coordinator's load-balancing loop synchronously."""
        return self.run_process(self.coordinator.rebalance())

    def shrink_exception_table(self):
        return self.run_process(self.coordinator.shrink())

    def add_mnode(self):
        """Scale out: attach a fresh MNode to the ring (elastic
        namespace).  The new node hosts **no** directory slots until the
        coordinator migrates some onto it (``migrate_slot`` /
        ``rebalance_slots``), so joining is invisible to clients — the
        slot map is untouched and no placement changes until a handoff
        commits.  Returns the new node's physical index.
        """
        if self.config.consensus:
            raise RuntimeError(
                "scale-out under consensus groups is not supported")
        index = len(self.mnodes)
        self.shared.mnode_names.append("mnode-{}".format(index))
        node = MNode(self.env, self.network, self.shared, index)
        self.mnodes.append(node)
        self.config.num_mnodes = len(self.mnodes)
        if self.config.replication:
            from repro.storage.replication import Standby

            standby = Standby(self.env, self.network,
                              node.name + "-standby")
            node.attach_standby(standby.name)
            self.standbys.append(standby)
        elif self.standbys:
            self.standbys.append(None)
        return index

    def inode_distribution(self):
        """Per-MNode inode counts (files + directories)."""
        return [len(mnode.inodes) for mnode in self.mnodes]

    def verify(self):
        """Audit cluster invariants (placement, replica coherence,
        reachability, statistics); raises
        :class:`~repro.core.verify.InvariantViolation` on corruption."""
        from repro.core.verify import check_cluster_invariants

        return check_cluster_invariants(self)

    @property
    def exception_table(self):
        return self.coordinator.xt

    # -- faults and failover -------------------------------------------------

    def crash_mnode(self, index):
        """Kill MNode ``index``: every message to or from it (including
        in-flight WAL shipments) is black-holed from now on, and its WAL
        power-fails — an fsync in flight becomes a torn tail and its
        waiters are never acknowledged.  Returns the replication lag at
        the instant of the crash — the committed-but-unshipped
        transaction count that a later promotion will lose (a later
        *restart* loses only the unfsynced tail)."""
        mnode = self.mnodes[index]
        lag = 0
        if (mnode.shipper is not None and index < len(self.standbys)
                and self.standbys[index] is not None):
            lag = self.standbys[index].lag(mnode.shipper)
        self.network.set_down(mnode.name)
        mnode.wal.power_fail()
        self._crashed[index] = mnode
        self.crash_log.append({
            "index": index, "name": mnode.name, "at": self.env.now,
            "lag_at_crash": lag,
        })
        return lag

    def promote_standby(self, index):
        """Promote MNode ``index``'s standby into the ring (state
        surgery, called by the coordinator's failover path).

        Builds a fresh MNode from the standby's replicated tables and
        installs it under directory slot ``index``, so every client and
        server that re-resolves the slot reaches the promoted node.
        Returns ``(new_node, lost_txns)``.
        """
        if index >= len(self.standbys) or self.standbys[index] is None:
            raise RuntimeError(
                "MNode {} has no standby to promote".format(index)
            )
        old = self.mnodes[index]
        standby = self.standbys[index]
        lost_txns = standby.lag(old.shipper) if old.shipper else 0
        tables = standby.promote_tables()
        self._promotions += 1
        new_name = "{}-p{}".format(old.name, self._promotions)
        # The directory slot must point at the new name *before* the
        # MNode is constructed (it takes its name from the directory) —
        # and from here on, every retry that re-resolves slot ``index``
        # lands on the promoted node.
        self.shared.mnode_names[index] = new_name
        node = MNode(self.env, self.network, self.shared, index)
        if "inode" in tables:
            node.inodes = tables["inode"]
        if "dentry" in tables:
            node.dentries = tables["dentry"]
        if "meta" in tables:
            node.meta = tables["meta"]
        # Durable handoff markers override the slot-map seed: a fenced
        # or pending slot stays that way across the promotion.
        node._restore_slot_state()
        self._rebuild_owned_state(node)
        # Base-backup the installed tables into the promoted node's WAL
        # so the new primary is itself restartable: a later crash
        # redo-replays this base image plus whatever it commits on top.
        node.wal.bootstrap(
            [[("inode", key, record.copy())]
             for key, record in node.inodes.scan()]
            + [[("dentry", key, record.copy())]
               for key, record in node.dentries.scan()]
            + [[("meta", key, value.copy())]
               for key, value in node.meta.scan()]
        )
        self.mnodes[index] = node
        # The dead original can never be resumed in place now that the
        # slot moved on; if it restarts it rejoins as a standby.  Halt it
        # so its frozen handlers stay dead if its *name* is reincarnated.
        old.halted = True
        self.retired_mnodes.append(old)
        self.standbys[index] = None
        return node, lost_txns

    def _rebuild_owned_state(self, node):
        """State surgery after installing tables into a fresh MNode
        (promotion or redo recovery): revalidate owned dentries from the
        authoritative inodes, conservatively invalidate non-owned
        replicas, rebuild load-balancer statistics and copy in the
        coordinator's exception table.

        Owned directories' dentries are rebuilt from the inode table
        sitting alongside them (an owner treats INVALID as gone and
        would otherwise delete its own namespace); non-owned replicas
        may have missed invalidation broadcasts while the node was dead,
        so they are marked INVALID and lazily refetched.
        """
        from repro.core.records import INVALID, VALID

        for key, record in list(node.dentries.scan()):
            if not node._owns_dentry(key):
                record.state = INVALID
                continue
            inode = node.inodes.get(key)
            if inode is None or not inode.is_dir:
                node.dentries.delete(key)
                continue
            record.ino = inode.ino
            record.mode = inode.mode
            record.uid = inode.uid
            record.gid = inode.gid
            record.state = VALID
        for key, inode in node.inodes.scan():
            node._track_name(key, +1)
            # Owned dentries are derivable state: if the record itself
            # did not survive (lost behind a torn or corrupted WAL
            # record, or never shipped to the standby), reconstruct it
            # from the authoritative inode alongside it.
            if (inode.is_dir and node._owns_dentry(key)
                    and node.dentries.get(key) is None):
                node.dentries.put(key, DentryRecord(
                    ino=inode.ino, mode=inode.mode,
                    uid=inode.uid, gid=inode.gid,
                ))
        # The coordinator's exception table is authoritative; copy it in
        # place so the node's HybridIndex (bound at construction) sees it.
        xt = self.coordinator.xt
        node.xt.version = xt.version
        node.xt.pathwalk = set(xt.pathwalk)
        node.xt.override = dict(xt.override)

    # -- consensus (leader election) -----------------------------------------

    def _make_follower(self, slot, name, witness_name):
        """Construct the slot's data follower with its seeded election
        RNG (one stream per follower name, so reincarnations draw a
        fresh deterministic sequence)."""
        from repro.storage.consensus import ConsensusFollower

        return ConsensusFollower(
            self.env, self.network, name, slot, witness_name,
            self.shared.coordinator_name,
            self.shared.streams.stream(
                "consensus.election.{}.{}".format(slot, name)),
            election_timeout_us=self.config.election_timeout_us,
            rpc_timeout_us=self.config.rpc_timeout_us or 400.0,
        )

    def start_consensus(self):
        """Start the groups' standing timers: leader heartbeats (which
        double as retransmission and lease renewal) and follower
        election timers.  :meth:`heal` stops them again before the
        drain, so quiescence-based checking still works."""
        if not self.config.consensus:
            raise RuntimeError("consensus is not enabled")
        self._consensus_running = True
        for mnode in self.mnodes:
            if mnode.shipper is not None:
                mnode.shipper.start()
        for follower in self.standbys:
            if follower is not None:
                follower.start_elections()

    def stop_consensus_timers(self):
        self._consensus_running = False
        for mnode in self.mnodes:
            shipper = mnode.shipper
            if shipper is not None and hasattr(shipper, "stop"):
                shipper.stop()
        for follower in self.standbys:
            if follower is not None and hasattr(follower,
                                                "stop_elections"):
                follower.stop_elections()

    def install_elected_leader(self, slot, term, claim):
        """Consensus-mode state surgery (the coordinator's
        ``leader_claim`` install hook): promote the elected data
        follower into the ring under directory slot ``slot``.

        Unlike ordained promotion, nothing here decides *whether* the
        follower may lead — the witness's vote already established
        that its log holds every quorum-acked entry.  The follower
        first applies its **entire** log including the uncommitted
        suffix (an acked entry can sit above its last known commit
        horizon if the old leader died before piggybacking it), then
        its tables are installed into a fresh MNode whose replicated
        log is re-based at the follower's log end.  The group runs
        with the witness as its only member until the deposed
        machine rejoins as the new data follower.
        """
        follower = self.standbys[slot]
        if follower is None or follower.name != claim["name"]:
            raise RuntimeError(
                "leader claim for slot {} from {!r}, but the slot's "
                "follower is {!r}".format(
                    slot, claim["name"],
                    None if follower is None else follower.name))
        old = self.mnodes[slot]
        follower.force_apply_all()
        base_lsn = follower._last_lsn()
        base_term = follower._last_term()
        # Entries the old leader appended but never quorum-committed:
        # durable on one machine only, never acknowledged to anyone.
        lost_txns = 0
        if old.shipper is not None:
            lost_txns = max(0, old.shipper.last_lsn - base_lsn)
        follower.stop_elections()
        tables = follower.promote_tables()
        self._promotions += 1
        new_name = "{}-p{}".format(old.name, self._promotions)
        self.shared.mnode_names[slot] = new_name
        node = MNode(self.env, self.network, self.shared, slot)
        if "inode" in tables:
            node.inodes = tables["inode"]
        if "dentry" in tables:
            node.dentries = tables["dentry"]
        if "meta" in tables:
            node.meta = tables["meta"]
        node._restore_slot_state()
        self._rebuild_owned_state(node)
        node.wal.bootstrap(
            [[("inode", key, record.copy())]
             for key, record in node.inodes.scan()]
            + [[("dentry", key, record.copy())]
               for key, record in node.dentries.scan()]
            + [[("meta", key, value.copy())]
               for key, value in node.meta.scan()]
        )
        self.mnodes[slot] = node
        # The deposed leader: crashed, or an alive zombie on the
        # minority side of a partition.  Halt it either way — its lease
        # provably lapsed before the witness would grant the vote that
        # got us here, so it has already stopped serving; halting makes
        # that permanent even if its name is later reincarnated.  An
        # alive zombie's machine is demoted into the group's new data
        # follower at heal time.
        old.halted = True
        self.retired_mnodes.append(old)
        if slot not in self._crashed:
            self._zombies.append((slot, old.name))
        self.standbys[slot] = None
        shipper = node.attach_group(
            self.witnesses[slot].name, standby_name=None, term=term,
            base_lsn=base_lsn, base_term=base_term,
        )
        if self._consensus_running:
            shipper.start()
        return node, lost_txns

    def _rejoin_follower(self, index, old):
        """Generator: consensus flavor of rejoin — the restarted (or
        demoted-zombie) machine becomes the slot's new data follower,
        snapshots from the elected leader, and arms its election timer.
        """
        if not self.network.is_down(old.name):
            # A zombie being demoted, not a crash: abandon the halted
            # incarnation's frozen handlers the same way a crash does.
            self.network.set_down(old.name)
        self.network.reincarnate(old.name)
        follower = self._make_follower(index, old.name,
                                       self.witnesses[index].name)
        leader = self.mnodes[index]
        self.standbys[index] = follower
        if leader.shipper is not None and hasattr(leader.shipper,
                                                  "attach_data_member"):
            leader.shipper.attach_data_member(follower.name)
        yield from follower.catch_up(leader.name)
        if self._consensus_running:
            follower.start_elections()
        return follower

    def restart_mnode(self, index):
        """Generator: restart the crashed former occupant of slot
        ``index`` from its durable WAL.

        Redo-replays the fsynced log prefix (truncating at the first
        torn or corrupted record), then either

        * **resumes as primary** — the failure detector has not promoted
          anyone, so the rebuilt node re-registers under its own name
          and slot, reconciles with its standby (queries the applied
          LSN, re-ships the durable delta the standby missed), or
        * **rejoins as standby** — a promoted node owns the slot; the
          restarted machine becomes its fresh standby and catches up via
          snapshot + log-shipping delta.

        Returns the restart record (also appended to ``restart_log``).
        """
        old = self._crashed.pop(index, None)
        if old is None:
            raise RuntimeError(
                "MNode slot {} has no crashed node to restart".format(index)
            )
        started_at = self.env.now
        payloads, torn = old.wal.replay()
        # Reboot + redo take real time; the node serves nothing meanwhile.
        yield self.env.timeout(
            self.costs.wal_fsync_us
            + self.costs.wal_replay_us_per_record * len(payloads)
        )
        # The old incarnation is retired for good: its frozen handler
        # processes must stay dead once the name is reachable again.
        old.halted = True
        promoted_away = self.shared.mnode_names[index] != old.name
        if promoted_away:
            role = "standby"
            if self.config.consensus:
                node = yield from self._rejoin_follower(index, old)
            else:
                node = yield from self._rejoin_standby(index, old)
        else:
            role = "primary"
            node = yield from self._resume_primary(index, old, payloads)
        if self.detector is not None:
            self.detector.node_restarted(index)
        record = {
            "index": index, "name": node.name, "role": role,
            "restarted_at": started_at, "recovered_at": self.env.now,
            "recovery_us": self.env.now - started_at,
            "replayed_txns": len(payloads), "torn_records": torn,
        }
        self.restart_log.append(record)
        return record

    def _resume_primary(self, index, old, payloads):
        """Generator: rebuild the crashed node from its durable WAL and
        re-install it under its own name and slot, then reconcile log
        shipping with the surviving standby."""
        self.network.reincarnate(old.name)
        node = MNode(self.env, self.network, self.shared, index)
        tables = {"inode": node.inodes, "dentry": node.dentries,
                  "meta": node.meta}
        for _, payload in payloads:
            if not payload:
                continue
            for table_name, key, value in payload:
                table = tables[table_name]
                if value is None:
                    table.delete(key)
                else:
                    table.put(key, value.copy())
        node.wal.bootstrap([payload for _, payload in payloads])
        # Replayed handoff markers (fenced-away / mid-install slots)
        # override the slot-map seed before ownership is rebuilt.
        node._restore_slot_state()
        self._rebuild_owned_state(node)
        self.mnodes[index] = node
        self.retired_mnodes.append(old)
        standby = (self.standbys[index] if index < len(self.standbys)
                   else None)
        if self.config.consensus:
            # Resume leading under a *bumped* term: an elected successor
            # cannot exist (the slot never moved on), but the bump makes
            # any concurrent claim under the old term provably stale.
            # The whole durable log becomes the new base — entries the
            # group already holds are below or at it (a shipped entry
            # was fsynced first), so members above the base dup-skip
            # and members below it resync by snapshot (follower) or
            # adopt the base (witness).
            term = self.coordinator.next_term(index)
            anchor, base = old._ship_anchor, old._ship_base
            entries, _ = old.wal.replay_entries()
            shippable = [(etrm, payload) for lsn, etrm, payload in entries
                         if lsn > anchor and payload]
            base_lsn = base + len(shippable) - 1
            base_term = (shippable[-1][0] if shippable
                         else getattr(old.shipper, "base_term", 0))
            shipper = node.attach_group(
                self.witnesses[index].name,
                standby_name=None if standby is None else standby.name,
                term=term, base_lsn=base_lsn, base_term=base_term,
            )
            if self._consensus_running:
                shipper.start()
        elif standby is not None and old.shipper is not None:
            # Map durable WAL records back onto shipping LSNs: every
            # replicable transaction after the old ship anchor occupied
            # one LSN, starting at the old base.  Whatever the standby
            # has not applied is the durable-but-unshipped window —
            # exactly what a promotion would have lost; re-ship it.
            anchor, base = old._ship_anchor, old._ship_base
            shippable = [payload for lsn, payload in payloads
                         if lsn > anchor and payload]
            node.attach_standby(
                standby.name, start_lsn=base + len(shippable),
                anchor=anchor, base=base,
            )
            reply = yield node.call(standby.name, "applied_query", {})
            applied = reply["applied_lsn"]
            # Only the suffix past the standby's applied LSN is
            # outstanding; acked state reflects that, not the ctor's
            # fresh-shipper assumption.
            node.shipper.acked_lsn = applied
            for lsn, payload in enumerate(shippable, start=base):
                if lsn > applied:
                    node.shipper.ship_payload(payload, lsn=lsn)
        return node

    def _rejoin_standby(self, index, old):
        """Generator: a promoted node owns the slot, so the restarted
        machine rejoins as its fresh standby — attach shipping first
        (commits from here on arrive as ordered deltas), then install a
        snapshot that the delta stream seamlessly extends."""
        from repro.storage.replication import Standby

        self.network.reincarnate(old.name)
        standby = Standby(self.env, self.network, old.name)
        primary = self.mnodes[index]
        primary.attach_standby(standby.name)
        self.standbys[index] = standby
        # ``old`` is already in retired_mnodes: the promotion put it
        # there when it took over the slot.
        yield from standby.catch_up(primary.name)
        return standby

    def fail_over(self, index):
        """Generator: the full recovery path for a dead MNode — promote
        its standby and run the coordinator's cluster repair (survivor
        invalidation + orphan fsck).  Returns the failover record.

        If the slot is down but has no standby to promote (an earlier
        promotion consumed it and no restart has restored one yet),
        recovery is **deferred**: a record is logged and nothing changes
        — the failure detector keeps re-declaring the slot until either
        the crashed machine restarts in place or a standby reappears.
        Promoting nothing would otherwise crash the control plane."""
        failed_name = self.shared.node_name(index)
        if self.network.is_down(failed_name) and (
                index >= len(self.standbys)
                or self.standbys[index] is None):
            record = {
                "index": index,
                "failed": failed_name,
                "promoted": None,
                "deferred": True,
                "detected_at": self.env.now,
                "lost_txns": 0,
                "orphans_removed": 0,
            }
            self.coordinator.failover_log.append(record)
            self.coordinator.metrics.counter("failovers_deferred").inc()
            return record
        record = yield from self.coordinator.fail_over(
            index, self.promote_standby
        )
        return record

    def heal(self, restart=True):
        """Clear every injected fault condition so the cluster can drain:
        stop failure detection, lift all partitions and restart any
        still-crashed slots (in slot order; each restart runs to
        completion).  Hung nodes recover on their own timers and are left
        alone — blanket ``set_up`` would unfence a crashed-but-never-
        promoted node and let it serve its pre-crash zombie state.
        Returns the restart records."""
        if self.detector is not None:
            self.detector.stop()
        self.network.heal()
        # Gray failures heal too: restore degraded links, reset skewed
        # clocks and clear disk slowdowns, so the drain that follows
        # (and the convergence audits after it) runs on healthy gear.
        self.network.restore_links()
        for view in self.env.clock_views():
            view.reset()
        for mnode in self.mnodes:
            mnode.wal.slow_disk = None
        records = []
        if restart:
            for index in sorted(self._crashed):
                records.append(self.run_process(self.restart_mnode(index)))
        if self.config.consensus:
            # Demote alive zombies: leaders deposed while partitioned
            # (not crashed).  Their halted incarnation is already
            # retired; the machine reincarnates as the slot's new data
            # follower so the group regains its 2-of-3 data quorum.
            zombies, self._zombies = self._zombies, []
            for slot, name in zombies:
                if self.standbys[slot] is not None:
                    continue  # a crash-restart already refilled the slot
                old = next(m for m in self.retired_mnodes
                           if m.name == name)
                self.run_process(self._rejoin_follower(slot, old))
            if self._consensus_running:
                # Let the groups settle — heartbeats re-establish match
                # positions and push the commit horizon to every member
                # — then stop the standing timers so the drain that
                # follows can actually go quiescent.
                self.run_for(10 * self.config.consensus_heartbeat_us)
                self.stop_consensus_timers()
        return records

    def quiesce(self, budget_us=None):
        """Drain the event queue (bounded by ``budget_us`` when given);
        True when the simulation went fully quiescent."""
        return self.env.run_until_quiescent(budget_us)

    def start_failure_detection(self, **kwargs):
        """Start the coordinator's heartbeat failure detector; detected
        deaths trigger :meth:`fail_over` automatically.  Returns the
        :class:`~repro.faults.FailureDetector`.

        Under consensus the detector is observe-only (``on_failure``
        stays ``None``): recovery is decided by election timeouts at
        the followers, not ordained by the coordinator — the detector
        keeps feeding its detection-latency metrics for comparison."""
        from repro.faults import FailureDetector

        self.detector = FailureDetector(
            self.coordinator, self.shared,
            on_failure=None if self.config.consensus else self.fail_over,
            **kwargs,
        )
        self.detector.start()
        return self.detector

    def replication_divergence(self):
        """Per-MNode primary/standby differences (requires replication).

        Run the simulation until quiescent first (e.g. ``run_for``) so
        in-flight shipments drain; an all-empty result means every
        standby has converged.
        """
        from repro.storage.replication import divergence

        if not self.standbys:
            raise RuntimeError("replication is not enabled")
        return {
            mnode.name: divergence(mnode, standby)
            for mnode, standby in zip(self.mnodes, self.standbys)
            if standby is not None
        }

    def install_exception_table(self, pathwalk=(), override=None,
                                include_clients=True):
        """Set redirection entries everywhere at once (offline).

        Test/experiment helper: equivalent to the coordinator having
        pushed the table and every client having refreshed.  Call before
        :meth:`bulk_load` so placement honours the entries.
        """
        holders = [self.coordinator] + self.mnodes
        if include_clients:
            holders += self.clients
        for holder in holders:
            table = holder.xt
            for name in pathwalk:
                table.pathwalk.add(name)
            for name, target in (override or {}).items():
                table.override[name] = target
            table.version += 1

    # -- bulk loading -------------------------------------------------------

    def bulk_load(self, tree, replicate_dentries=True):
        """Install a :class:`~repro.workloads.trees.TreeSpec` directly into
        the MNode tables, bypassing the protocol.

        Used to initialize the large trees of the traversal and
        load-balance experiments (the paper pre-creates its datasets too).
        Placement honours the coordinator's current exception table.
        With ``replicate_dentries`` every MNode's namespace replica starts
        complete — the steady state lazy replication converges to; pass
        False to start replicas cold (only owners populated).
        Returns a ``path -> ino`` map.
        """
        index = self.coordinator.index
        slot_map = self.shared.slot_map
        path_ino = {"/": ROOT_INO}
        for dpath in tree.dirs:
            pid = path_ino[parent_path(dpath)]
            name = basename(dpath)
            ino = self.shared.allocator.allocate()
            owner = self.mnodes[slot_map.node_of(index.locate(pid, name))]
            key = (pid, name)
            owner.inodes.put(key, InodeRecord(ino=ino, is_dir=True,
                                              mode=0o755))
            owner._track_name(key, +1)
            self._bulk_standby(owner, key, owner.inodes.get(key), True)
            owner.wal.bootstrap([[
                ("inode", key, owner.inodes.get(key).copy()),
                ("dentry", key, DentryRecord(ino=ino, mode=0o755)),
            ]])
            if replicate_dentries:
                for mnode in self.mnodes:
                    mnode.dentries.put(key, DentryRecord(ino=ino,
                                                         mode=0o755))
            else:
                owner.dentries.put(key, DentryRecord(ino=ino, mode=0o755))
            path_ino[dpath] = ino
        for fpath, size in tree.files:
            pid = path_ino[parent_path(fpath)]
            name = basename(fpath)
            ino = self.shared.allocator.allocate()
            owner = self.mnodes[slot_map.node_of(index.locate(pid, name))]
            key = (pid, name)
            owner.inodes.put(key, InodeRecord(ino=ino, is_dir=False,
                                              size=size))
            owner._track_name(key, +1)
            self._bulk_standby(owner, key, owner.inodes.get(key), False)
            owner.wal.bootstrap([[
                ("inode", key, owner.inodes.get(key).copy()),
            ]])
            path_ino[fpath] = ino
        # Bulk records reached the standbys by direct mirroring, not log
        # shipping; advance each ship anchor past them so a restart never
        # tries to re-ship the preloaded dataset.
        for mnode in self.mnodes:
            mnode._ship_anchor = mnode.wal.appended_txns
        return path_ino

    def _bulk_standby(self, owner, key, record, is_dir):
        """Mirror a bulk-loaded record into the owner's standby."""
        if not self.standbys:
            return
        standby = self.standbys[self.mnodes.index(owner)]
        if standby is None:
            return
        standby.table("inode").put(key, record.copy())
        if is_dir:
            standby.table("dentry").put(
                key, DentryRecord(ino=record.ino, mode=record.mode,
                                  uid=record.uid, gid=record.gid),
            )


class FalconFilesystem:
    """Synchronous POSIX-like facade over one client."""

    def __init__(self, cluster, client):
        self.cluster = cluster
        self.client = client

    def _run(self, generator):
        return self.cluster.run_process(generator)

    # -- namespace ------------------------------------------------------

    def mkdir(self, path, mode=0o755):
        return self._run(self.client.mkdir(path, mode))

    def makedirs(self, path, mode=0o755, exist_ok=True):
        """Create ``path`` and any missing ancestors."""
        current = "/"
        for name in split_path(path):
            current = join_path(current, name)
            try:
                self._run(self.client.mkdir(current, mode))
            except RpcFailure as failure:
                if not (exist_ok and failure.code == RpcError.EEXIST):
                    raise

    def rmdir(self, path):
        self._run(self.client.rmdir(path))

    def rename(self, src, dst):
        self._run(self.client.rename(src, dst))

    def chmod(self, path, mode):
        self._run(self.client.chmod(path, mode))

    def listdir(self, path):
        """Sorted child names of a directory."""
        return [name for name, _ in self._run(self.client.readdir(path))]

    def readdir(self, path):
        """Sorted list of (name, is_dir) pairs."""
        return self._run(self.client.readdir(path))

    # -- files ------------------------------------------------------------

    def create(self, path, mode=0o644, exclusive=True):
        return self._run(self.client.create(path, mode, exclusive))

    def write(self, path, size, mode=0o644, exclusive=True):
        """Create a file and store ``size`` bytes; returns the ino."""
        return self._run(
            self.client.write_file(path, size, mode, exclusive)
        )

    def read(self, path):
        """Read a whole file; returns its size."""
        return self._run(self.client.read_file(path))

    def unlink(self, path):
        self._run(self.client.unlink(path))

    def getattr(self, path):
        return self._run(self.client.getattr(path))

    def exists(self, path):
        return self._run(self.client.exists(path))

    def is_dir(self, path):
        try:
            return self.getattr(path)["is_dir"]
        except RpcFailure as failure:
            if failure.code == RpcError.ENOENT:
                return False
            raise
