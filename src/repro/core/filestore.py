"""The FalconFS file store: hash-placed block storage (§4.1).

File data is striped in fixed-size blocks; block ``i`` of file ``ino``
lives on the storage node selected by hashing ``(ino, i)``.  Each storage
node models one NVMe SSD: a serialized device channel with a fixed per-IO
cost plus size-over-bandwidth transfer time, which is what caps the data
path of Fig 12 once files grow past the metadata-IOPS-bound regime.

The same storage nodes back the baseline file systems, so data-path
differences across systems come from their metadata paths only.
"""

from repro.core.indexing import stable_hash
from repro.net import Node
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import CAT_DISK, CAT_PHASE, NULL_CONTEXT


class DataIntegrityError(RpcFailure):
    """A read returned a block whose checksum does not match."""

    def __init__(self, detail):
        super().__init__(RpcError.EINVAL, detail)


def block_checksum(ino, index):
    """Deterministic content checksum for block ``index`` of ``ino``.

    The simulator carries no payload bytes, so the checksum commits to
    the block's *identity*: verification catches any routing or
    bookkeeping error that hands a reader the wrong block (wrong inode,
    wrong offset, stale placement).
    """
    return stable_hash(("blk", ino, index))


class StorageNode(Node):
    """One data server with one simulated NVMe SSD."""

    def __init__(self, env, network, name):
        super().__init__(env, network, name, cores=network.costs.server_cores)
        self.disk = env.resource(capacity=network.costs.ssd_queue_depth)
        #: Small (journal-sized) writes go through their own NVMe queue
        #: and do not wait behind multi-megabyte data transfers.
        self.small_io = env.resource(capacity=2)
        #: (ino, block) -> stored checksum, for end-to-end verification.
        self.block_sums = {}
        self.bytes_read = 0
        self.bytes_written = 0

    def handle(self, message):
        if message.kind == "read_block":
            yield from self._read(message)
        elif message.kind == "write_block":
            yield from self._write(message)
        else:
            raise RuntimeError(
                "{} cannot handle {!r}".format(self.name, message)
            )

    def _read(self, message):
        payload = message.payload
        size = payload["size"]
        yield from self._disk_io(
            size, self.costs.ssd_read_bandwidth_bytes_per_us,
            ctx=message.ctx, label="disk.read",
        )
        self.bytes_read += size
        self.metrics.counter("blocks").inc("read")
        stored = self.block_sums.get((payload["ino"], payload["block"]))
        # The response carries the data, so its wire size is the payload.
        self.respond(message, {"size": size, "checksum": stored},
                     size=size + self.costs.rpc_response_bytes)

    def _write(self, message):
        payload = message.payload
        size = payload["size"]
        if "checksum" in payload:
            self.block_sums[(payload["ino"], payload["block"])] = \
                payload["checksum"]
        ctx = message.ctx or NULL_CONTEXT
        if size <= 4096:
            request = self.small_io.request()
            yield request
            try:
                with ctx.span("disk.write", CAT_DISK, node=self.name,
                              attrs={"bytes": size}
                              if ctx.traced else None):
                    yield self.env.timeout(self.costs.ssd_io_us)
            finally:
                self.small_io.release(request)
        else:
            yield from self._disk_io(
                size, self.costs.ssd_write_bandwidth_bytes_per_us,
                ctx=message.ctx, label="disk.write",
            )
        self.bytes_written += size
        self.metrics.counter("blocks").inc("write")
        self.respond(message, {"size": size})

    def _disk_io(self, size, bandwidth, ctx=None, label="disk.io"):
        """One device IO: fixed submission cost plus transfer at the
        device bandwidth shared across the queue depth."""
        ctx = ctx or NULL_CONTEXT
        request = self.disk.request()
        yield request
        try:
            effective = bandwidth / self.costs.ssd_queue_depth
            with ctx.span(label, CAT_DISK, node=self.name,
                          attrs={"bytes": size}
                          if ctx.traced else None):
                yield self.env.timeout(
                    self.costs.ssd_io_us + size / effective
                )
        finally:
            self.disk.release(request)


class BlockClient:
    """Client-side data path: parallel block transfer helpers.

    Used by every simulated file system's client (FalconFS and baselines)
    once the metadata path has produced a file id and size.
    """

    def __init__(self, node, shared):
        self.node = node
        self.shared = shared

    def _blocks(self, size):
        block = self.node.costs.block_size_bytes
        offset = 0
        index = 0
        while offset < size or index == 0:
            yield index, min(block, max(0, size - offset))
            offset += block
            index += 1

    def read(self, ino, size, verify=True, ctx=None):
        """Generator: fetch all blocks of a file in parallel.

        With ``verify`` (default), every returned block's checksum is
        compared against the expected identity checksum; a mismatch or a
        block served for data this client wrote under a different
        identity raises :class:`DataIntegrityError`.  Blocks that were
        never written through the protocol (bulk-loaded files) carry no
        stored checksum and are skipped.
        """
        ctx = ctx or NULL_CONTEXT
        with ctx.span("data.read", CAT_PHASE, node=self.node.name,
                      attrs={"bytes": size} if ctx.traced else None):
            calls = []
            expected = []
            for index, chunk in self._blocks(size):
                target = self.shared.storage_for(ino, index)
                expected.append((index, block_checksum(ino, index)))
                calls.append(self.node.call(
                    target, "read_block",
                    {"ino": ino, "block": index, "size": chunk},
                    ctx=ctx if ctx is not NULL_CONTEXT else None,
                ))
            replies = yield self.node.env.all_of(calls)
        if verify:
            for reply, (index, want) in zip(replies, expected):
                stored = reply.get("checksum")
                if stored is not None and stored != want:
                    raise DataIntegrityError(
                        "ino {} block {}: checksum mismatch".format(
                            ino, index)
                    )
        return size

    def write(self, ino, size, ctx=None):
        """Generator: store all blocks of a file in parallel."""
        ctx = ctx or NULL_CONTEXT
        with ctx.span("data.write", CAT_PHASE, node=self.node.name,
                      attrs={"bytes": size} if ctx.traced else None):
            calls = []
            for index, chunk in self._blocks(size):
                target = self.shared.storage_for(ino, index)
                calls.append(self.node.call(
                    target, "write_block",
                    {"ino": ino, "block": index, "size": chunk,
                     "checksum": block_checksum(ino, index)},
                    size=chunk + self.node.costs.rpc_request_bytes,
                    ctx=ctx if ctx is not NULL_CONTEXT else None,
                ))
            yield self.node.env.all_of(calls)
        return size
