"""The FalconFS coordinator.

The coordinator owns namespace *changes* and cluster load balance:

* **rmdir / directory chmod** — it resolves the path on its own namespace
  replica, takes shared locks on the ancestors and an exclusive lock on
  the target, and forwards execution to the directory inode's owner MNode,
  which drives the invalidation broadcast (§4.3).
* **rename** — classic 2PL + 2PC across the source and destination owner
  MNodes, with an invalidation broadcast for directory renames.
* **statistical load balancing** (§4.2.2) — it gathers per-MNode inode
  counts and top-k filename frequencies, then iteratively redirects the
  most frequent filename on the most loaded node, choosing between
  path-walk and overriding redirection by whichever minimizes the new
  maximum.  It also shrinks the exception table when entries are no
  longer needed.
"""

import math
from itertools import count

from repro.core.indexing import ExceptionTable, HybridIndex
from repro.core.mnode import exception_table_to_wire
from repro.core.replica import NamespaceReplicaMixin
from repro.net import Node
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import CAT_PHASE, NULL_CONTEXT, deadline_call
from repro.storage import LockMode
from repro.vfs.pathwalk import split_path


class Coordinator(NamespaceReplicaMixin, Node):
    """The central coordinator node."""

    def __init__(self, env, network, shared):
        super().__init__(
            env, network, shared.coordinator_name,
            cores=shared.config.server_cores,
        )
        self.shared = shared
        self.init_replica()
        self.xt = ExceptionTable()
        self.index = HybridIndex(shared.num_slots, self.xt)
        self._txids = count(1)
        #: Serializes rename 2PC rounds (prevents cross-rename deadlock).
        self._rename_mutex = env.resource(capacity=1)
        #: txid -> "commit" | "abort", recorded *before* the decision is
        #: sent to any participant.  Participants left in doubt (their
        #: commit/abort was black-holed by a fault) query this via
        #: ``rename_resolve``; absence means no commit was ever sent, so
        #: the answer is presumed abort.
        self._rename_outcomes = {}
        self.rebalance_log = []
        #: One record per completed failover (timeline + lost window).
        self.failover_log = []
        #: Active slot handoffs: slot -> in-progress migration record.
        #: Failover is deferred for any node acting as a handoff source
        #: or destination — promoting mid-handoff would resurrect a
        #: fenced slot from the standby's pre-fence state.
        self.migrations = {}
        #: One record per finished (committed or aborted) slot handoff.
        self.migration_log = []
        #: Serializes slot handoffs: one saga owns the epoch at a time,
        #: so the fence-advertised epoch is exactly the one the final
        #: ``assign`` installs.
        self._migration_mutex = env.resource(capacity=1)
        #: Consensus-mode membership registry: slot -> {"term", "leader"}.
        #: Under consensus the coordinator no longer *ordains* promotion;
        #: it only validates term monotonicity on leader claims and
        #: remembers who currently leads each directory slot.
        self.consensus_registry = {}
        #: State-surgery hook installed by the cluster in consensus mode:
        #: ``hook(slot, term, claim) -> (new_node, lost_txns)``.  Called
        #: synchronously from the claim handler, like ``promote`` in
        #: :meth:`fail_over`.
        self.install_leader = None

    def handle(self, message):
        handler = getattr(self, "_on_" + message.kind, None)
        if handler is None:
            raise RuntimeError(
                "coordinator cannot handle {!r}".format(message)
            )
        yield from handler(message)

    # ------------------------------------------------------------------
    # path helpers
    # ------------------------------------------------------------------

    def _resolve_and_lock(self, components, ctx=None):
        """Resolve the parent chain and lock it (S ancestors, X target).

        Returns ``(pid, grants)``; the caller must release the grants.
        """
        parents = components[:-1]
        name = components[-1]
        resolved = yield from self.resolve_dir(parents, ctx=ctx)
        grants = []
        try:
            for dkey, _, _ in resolved.chain:
                grant = self.locks.acquire(dkey, LockMode.SHARED, ctx=ctx)
                yield grant.event
                grants.append(grant)
            target = self.locks.acquire(
                ("d", resolved.ino, name), LockMode.EXCLUSIVE, ctx=ctx
            )
            yield target.event
            grants.append(target)
        except BaseException:
            for grant in grants:
                self.locks.release(grant)
            raise
        yield from self.execute(
            self.costs.resolve_component_us * len(components)
            + len(grants) * self.costs.lock_acquire_us,
            ctx=ctx,
        )
        return resolved.ino, grants

    def _release(self, grants):
        for grant in grants:
            self.locks.release(grant)

    def _owner(self, pid, name):
        return self.shared.mnode_name(self.index.locate(pid, name))

    # ------------------------------------------------------------------
    # client-facing namespace changes
    # ------------------------------------------------------------------

    def _on_rmdir(self, message):
        payload = message.payload
        ctx = message.ctx
        try:
            components = split_path(payload["path"])
            if not components:
                raise RpcFailure(RpcError.EINVAL, "rmdir /")
            pid, grants = yield from self._resolve_and_lock(components,
                                                            ctx=ctx)
        except (ValueError, RpcFailure) as failure:
            if not isinstance(failure, RpcFailure):
                failure = RpcFailure(RpcError.EINVAL, payload["path"])
            self.respond_error(message, failure)
            return
        name = components[-1]
        try:
            # Per-MNode invalidation bookkeeping at the coordinator: the
            # cluster-size-proportional share of rmdir's overhead (§6.2).
            yield from self.execute(
                self.costs.invalidate_apply_us * 2
                * self.shared.config.num_mnodes,
                ctx=ctx,
            )
            yield self.call(self._owner(pid, name), "rmdir_exec", {
                "pid": pid, "name": name, "path": payload["path"],
            }, ctx=ctx)
        except RpcFailure as failure:
            self.respond_error(message, failure)
            return
        finally:
            self._release(grants)
        # Our own replica entry is gone from the authoritative store.
        self.dentries.delete((pid, name))
        self.inval_seq[("d", pid, name)] += 1
        self.metrics.counter("ops").inc("rmdir")
        self.respond(message, {"ok": True})

    def _on_chmod_dir(self, message):
        payload = message.payload
        ctx = message.ctx
        try:
            components = split_path(payload["path"])
            if not components:
                raise RpcFailure(RpcError.EINVAL, "chmod /")
            pid, grants = yield from self._resolve_and_lock(components,
                                                            ctx=ctx)
        except (ValueError, RpcFailure) as failure:
            if not isinstance(failure, RpcFailure):
                failure = RpcFailure(RpcError.EINVAL, payload["path"])
            self.respond_error(message, failure)
            return
        name = components[-1]
        try:
            yield self.call(self._owner(pid, name), "chmod_exec", {
                "pid": pid, "name": name, "path": payload["path"],
                "mode": payload["mode"],
            }, ctx=ctx)
        except RpcFailure as failure:
            self.respond_error(message, failure)
            return
        finally:
            self._release(grants)
        record = self.dentries.get((pid, name))
        if record is not None:
            record.mode = payload["mode"]
        self.metrics.counter("ops").inc("chmod_dir")
        self.respond(message, {"ok": True})

    def _on_rename(self, message):
        payload = message.payload
        ctx = message.ctx
        mutex = self._rename_mutex.request()
        yield mutex
        grants = []
        try:
            src = split_path(payload["src"])
            dst = split_path(payload["dst"])
            if not src or not dst:
                raise RpcFailure(RpcError.EINVAL, "rename involving /")
            if dst[:len(src)] == src:
                # Moving a directory into its own subtree would orphan
                # the whole subtree (classic EINVAL).
                raise RpcFailure(
                    RpcError.EINVAL, "rename into own subtree"
                )
            spid_res = yield from self.resolve_dir(src[:-1], ctx=ctx)
            dpid_res = yield from self.resolve_dir(dst[:-1], ctx=ctx)
            spid, dpid = spid_res.ino, dpid_res.ino
            sname, dname = src[-1], dst[-1]
            skey, dkey = (spid, sname), (dpid, dname)
            if skey == dkey:
                raise RpcFailure(RpcError.EINVAL, "rename onto itself")
            lock_keys = {("d",) + skey: LockMode.EXCLUSIVE,
                         ("d",) + dkey: LockMode.EXCLUSIVE}
            for chain in (spid_res.chain, dpid_res.chain):
                for key, _, _ in chain:
                    lock_keys.setdefault(key, LockMode.SHARED)
            for key in sorted(lock_keys):
                grant = self.locks.acquire(key, lock_keys[key], ctx=ctx)
                yield grant.event
                grants.append(grant)
            yield from self.execute(
                len(grants) * self.costs.lock_acquire_us
                + 2 * self.costs.two_phase_round_us,
                ctx=ctx,
            )
            yield from self._rename_2pc(message, skey, dkey)
        except RpcFailure as failure:
            self.respond_error(message, failure)
        except ValueError:
            self.respond_error(
                message, RpcFailure(RpcError.EINVAL, str(payload))
            )
        finally:
            self._release(grants)
            self._rename_mutex.release(mutex)

    def _mnode_call(self, target, kind, payload, ctx):
        """Generator: one participant RPC on the rename path.

        Bounded by the per-attempt RPC timeout when the cluster
        configures one, so a dead or partitioned participant surfaces as
        ``ETIMEDOUT`` instead of parking this handler forever while it
        holds the global rename mutex and the namespace locks.  Without
        a configured timeout the call is the plain unbounded one."""
        timeout_us = self.shared.config.rpc_timeout_us or None
        if timeout_us is None:
            result = yield self.call(target, kind, payload, ctx=ctx)
            return result
        result = yield from deadline_call(
            self, ctx, target, kind, payload, timeout_us=timeout_us,
        )
        return result

    def _abort_rename(self, owners, txid, ctx):
        """Generator: best-effort aborts — the outcome is already
        recorded, so a participant whose abort is lost resolves the
        in-doubt transaction itself via ``rename_resolve``."""
        for owner in owners:
            try:
                yield from self._mnode_call(owner, "rename_abort",
                                            {"txid": txid}, ctx)
            except RpcFailure:
                pass

    def _complete_commit(self, txid, slot, actions):
        """Process: re-deliver a decided commit to an unreachable
        participant until it acknowledges.

        Resolves the target name per attempt so retries follow a
        promotion to the slot's new primary.  Only spawned under a
        bounded RPC timeout (an unbounded commit call never fails), and
        the redo path on the participant is idempotent, so re-delivering
        an already-applied half is harmless."""
        backoff = 1000.0
        timeout_us = self.shared.config.rpc_timeout_us or 1000.0
        while True:
            yield self.env.timeout(backoff)
            backoff = min(backoff * 2, 8000.0)
            target = self.shared.mnode_name(slot)
            try:
                yield from deadline_call(
                    self, NULL_CONTEXT, target, "rename_commit",
                    {"txid": txid, "actions": actions},
                    timeout_us=timeout_us,
                )
            except RpcFailure:
                continue
            self.metrics.counter("rename_commits_completed").inc()
            return

    def _on_rename_resolve(self, message):
        """A participant terminating an in-doubt prepared transaction:
        report the recorded outcome (presumed abort when none — no
        commit can have been sent before the outcome was recorded)."""
        txid = message.payload["txid"]
        self.respond(message, {
            "state": self._rename_outcomes.get(txid, "abort"),
        })
        return
        yield  # pragma: no cover

    def _rename_2pc(self, message, skey, dkey):
        ctx = message.ctx or NULL_CONTEXT
        txid = "rn-{}".format(next(self._txids))
        src_owner = self._owner(*skey)
        dst_owner = self._owner(*dkey)
        owners = [src_owner]
        if dst_owner != src_owner:
            owners.append(dst_owner)
        timeout_us = self.shared.config.rpc_timeout_us or None
        with ctx.span("2pc", CAT_PHASE, node=self.name,
                      attrs={"txid": txid} if ctx.traced else None):
            prepare = {"txid": txid, "action": "delete", "key": list(skey)}
            if timeout_us is not None:
                # Participants reject prepares they pick up after this
                # instant: by then the coordinator has timed out and its
                # abort may already have come and gone.
                prepare["deadline"] = self.env.now_us() + timeout_us
            try:
                vote = yield from self._mnode_call(
                    src_owner, "rename_prepare", prepare, ctx
                )
            except RpcFailure:
                self._rename_outcomes[txid] = "abort"
                yield from self._abort_rename([src_owner], txid, ctx)
                raise
            if not vote["ok"]:
                self._rename_outcomes[txid] = "abort"
                yield from self._abort_rename([src_owner], txid, ctx)
                raise RpcFailure(RpcError.ENOENT, skey)
            record = vote["record"]
            prepare = {"txid": txid, "action": "insert", "key": list(dkey),
                       "record": record}
            if timeout_us is not None:
                prepare["deadline"] = self.env.now_us() + timeout_us
            try:
                vote = yield from self._mnode_call(
                    dst_owner, "rename_prepare", prepare, ctx
                )
            except RpcFailure:
                self._rename_outcomes[txid] = "abort"
                yield from self._abort_rename(owners, txid, ctx)
                raise
            if not vote["ok"]:
                # One abort per participant releases everything staged.
                self._rename_outcomes[txid] = "abort"
                yield from self._abort_rename(owners, txid, ctx)
                raise RpcFailure(RpcError.EEXIST, dkey)
            if record["is_dir"]:
                # Invalidate the source dentry everywhere; the two owners
                # already hold it locked and update their replicas at
                # commit.
                peers = [
                    peer for peer in self.shared.mnode_names
                    if peer not in (src_owner, dst_owner)
                ]
                if peers:
                    yield self.env.all_of([
                        self.call(peer, "invalidate",
                                  {"keys": [list(skey)]}, ctx=ctx)
                        for peer in peers
                    ])
                self.dentries.delete(skey)
                self.inval_seq[("d",) + skey] += 1
            # The decision is recorded before any commit is sent: a
            # participant that never hears it terminates via
            # ``rename_resolve`` and finds "commit" here.
            self._rename_outcomes[txid] = "commit"
            # Commits carry the decided actions so a participant that
            # lost its staged state (crashed after voting, restarted
            # from a WAL that holds only the empty vote record) can
            # still apply its half — 2PC must not leave the source
            # record alive on one owner with the destination copy
            # already committed on the other.
            delete_action = {"action": "delete", "key": list(skey),
                             "ino": record["ino"]}
            insert_action = {"action": "insert", "key": list(dkey),
                             "record": record}
            if dst_owner == src_owner:
                plans = [(self.index.locate(*skey), src_owner,
                          [delete_action, insert_action])]
            else:
                plans = [
                    (self.index.locate(*skey), src_owner, [delete_action]),
                    (self.index.locate(*dkey), dst_owner, [insert_action]),
                ]
            commit_failure = None
            for slot, owner, actions in plans:
                try:
                    yield from self._mnode_call(
                        owner, "rename_commit",
                        {"txid": txid, "actions": actions}, ctx,
                    )
                except RpcFailure as failure:
                    commit_failure = failure
                    # The participant is unreachable and may have lost
                    # its staged half across a crash; a background
                    # completer re-delivers the decision (by slot, so it
                    # follows promotions) until it lands.
                    self.env.process(
                        self._complete_commit(txid, slot, actions)
                    )
            if commit_failure is not None:
                # The rename is decided and will apply everywhere (the
                # unreachable participant self-resolves or the completer
                # re-delivers), but this client cannot be told it is
                # complete.
                raise commit_failure
        self.metrics.counter("ops").inc("rename")
        self.respond(message, {"ok": True})

    # ------------------------------------------------------------------
    # failover (promote a standby into the MNode ring)
    # ------------------------------------------------------------------

    def fail_over(self, index, promote):
        """Generator: recover from the death of MNode ``index``.

        ``promote`` is the cluster's promotion hook (state surgery):
        called synchronously, it installs the standby's tables in a new
        MNode under the directory slot ``index`` and returns
        ``(new_node, lost_txns)``, where ``lost_txns`` is the number of
        committed-but-unshipped transactions (the replication lag at
        crash) that did not survive.

        After promotion the coordinator repairs the cluster around the
        new primary: survivors invalidate their replica dentries for the
        failed shard (they may predate the standby's state), the
        coordinator does the same on its own replica, and an fsck sweep
        garbage-collects inodes orphaned by the lost window (a child
        created on a survivor whose parent directory died unshipped).

        If the slot is answering again by the time this runs — the
        crashed node redo-replayed its durable WAL and resumed before
        promotion could begin — the promotion is **suppressed**: the
        recovered primary holds every fsynced transaction, strictly more
        than its standby, so replacing it would manufacture data loss.
        """
        detected_at = self.env.now
        failed_name = self.shared.node_name(index)
        involved = (self.migrations_involving(index)
                    if self.network.is_down(failed_name) else [])
        if involved:
            # The node is mid-handoff (source or destination of an
            # active slot migration).  Promotion now would install the
            # standby's pre-fence image and resurrect (or erase) the
            # migrating slot, so recovery is deferred: the detector
            # keeps re-declaring the node until the saga finishes
            # (committed, aborted, or completed by re-delivery once the
            # node restarts), and only then does failover proceed.
            record = {
                "index": index,
                "failed": failed_name,
                "promoted": None,
                "deferred": True,
                "migrating_slot": involved[0],
                "detected_at": detected_at,
                "lost_txns": 0,
                "orphans_removed": 0,
            }
            self.failover_log.append(record)
            self.metrics.counter("failovers_deferred_migration").inc()
            return record
        if not self.network.is_down(failed_name):
            # Redo won the race: the restarted node already owns the
            # slot with its durable state intact.
            record = {
                "index": index,
                "failed": failed_name,
                "promoted": failed_name,
                "suppressed": True,
                "detected_at": detected_at,
                "promoted_at": self.env.now,
                "recovered_at": self.env.now,
                "lost_txns": 0,
                "orphans_removed": 0,
            }
            self.failover_log.append(record)
            self.metrics.counter("failovers_suppressed").inc()
            return record
        new_node, lost_txns = promote(index)
        promoted_at = self.env.now
        # Hash slots hosted at promotion time: the oracle's loss windows
        # must cover every slot the promoted standby now serves, not
        # just the identity slot.  Stable between crash and promotion —
        # migrations involving a down node are deferred above.
        hosted = sorted(self.shared.slot_map.slots_of(index))
        orphans_removed = yield from self._repair_slot(index, new_node.name)
        record = {
            "index": index,
            "failed": failed_name,
            "promoted": new_node.name,
            "detected_at": detected_at,
            "promoted_at": promoted_at,
            "recovered_at": self.env.now,
            "lost_txns": lost_txns,
            "orphans_removed": orphans_removed,
            "slots": hosted,
        }
        self.failover_log.append(record)
        self.metrics.counter("failovers").inc()
        return record

    def _repair_slot(self, index, new_name):
        """Generator: repair the cluster around node ``index``'s new
        primary — survivors drop their replica dentries for every
        directory slot the node hosts, the coordinator drops its own,
        and an fsck sweep collects orphans from any lost window.
        Returns orphans removed."""
        slots = set(self.shared.slot_map.slots_of(index))
        survivors = [
            name for name in self.shared.mnode_names if name != new_name
        ]
        if survivors and slots:
            yield self.env.all_of([
                self.call(peer, "invalidate_owner",
                          {"slots": sorted(slots)})
                for peer in survivors
            ])
        own_stale = [
            key for key, record in self.dentries.scan()
            if self.index.locate(key[0], key[1]) in slots
        ]
        yield from self.apply_invalidation(own_stale)
        orphans_removed = yield from self.fsck()
        return orphans_removed

    # ------------------------------------------------------------------
    # elastic namespace: online slot handoff
    # ------------------------------------------------------------------

    def migrations_involving(self, node_index):
        """Slots whose active handoff has ``node_index`` as source or
        destination (failover against either is deferred)."""
        return sorted(
            slot for slot, rec in self.migrations.items()
            if node_index in (rec["src"], rec["dst"])
        )

    def _slot_call(self, node_index, kind, payload, attempts=1):
        """Generator: one migration-step RPC to physical node
        ``node_index``, bounded by the per-attempt RPC timeout when the
        cluster configures one.  Retries up to ``attempts`` times with
        backoff, re-resolving the node's current name each try, then
        re-raises — the caller aborts the saga."""
        timeout_us = self.shared.config.rpc_timeout_us or None
        backoff = 1000.0
        for attempt in range(attempts):
            target = self.shared.node_name(node_index)
            try:
                if timeout_us is None:
                    reply = yield self.call(target, kind, payload)
                else:
                    reply = yield from deadline_call(
                        self, NULL_CONTEXT, target, kind, payload,
                        timeout_us=timeout_us,
                    )
                return reply
            except RpcFailure:
                if attempt == attempts - 1:
                    raise
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, 8000.0)

    def _slot_deliver(self, node_index, kind, payload):
        """Generator: re-deliver a *decided* migration step until the
        node acknowledges it.

        Used past the saga's point of no return (activate, purge):
        these steps are idempotent on the receiver and must eventually
        apply — aborting instead would erase writes the destination may
        already have acknowledged to clients.  Re-resolves the node's
        name per attempt so delivery follows a crash-restart."""
        timeout_us = self.shared.config.rpc_timeout_us or None
        backoff = 1000.0
        while True:
            target = self.shared.node_name(node_index)
            try:
                if timeout_us is None:
                    reply = yield self.call(target, kind, payload)
                else:
                    reply = yield from deadline_call(
                        self, NULL_CONTEXT, target, kind, payload,
                        timeout_us=timeout_us,
                    )
                return reply
            except RpcFailure:
                yield self.env.timeout(backoff)
                backoff = min(backoff * 2, 8000.0)

    def _slot_abort(self, slot, src, dst, record, discard_dst,
                    burn_epoch=False):
        """Generator: roll a failed handoff back to the source.

        The destination discards its partial copy (idempotent if the
        install never landed) and the source reclaims hosting
        (idempotent if the fence never landed).  Both are re-delivered
        until acknowledged: an un-rolled-back fence would leave the
        slot unhosted everywhere.  When the fence may have exposed the
        advertised epoch to clients, ``burn_epoch`` re-assigns the slot
        to its source, superseding any ``EMOVED`` hint a client adopted
        before the abort."""
        record["status"] = "aborted"
        record["aborted_phase"] = record["phase"]
        if discard_dst:
            yield from self._slot_deliver(dst, "slot_discard",
                                          {"slot": slot})
        yield from self._slot_deliver(src, "slot_reclaim", {"slot": slot})
        if burn_epoch:
            # Two bumps, not one: the first lands exactly on the epoch
            # the fence advertised, and patches only apply on a
            # *strictly newer* per-slot version — a client that adopted
            # the advertised hint must still accept this correction.
            self.shared.slot_map.assign(slot, src)
            record["epoch"] = self.shared.slot_map.assign(slot, src)
        self.metrics.counter("slot_migrations_aborted").inc()

    def migrate_slot(self, slot, dest, reason="manual"):
        """Generator: move directory slot ``slot`` to physical node
        ``dest`` under live traffic.  Handoffs are serialized; returns
        the migration record (``status`` "committed" or "aborted"), or
        None for a no-op request."""
        mutex = self._migration_mutex.request()
        yield mutex
        try:
            record = yield from self._migrate_slot_body(slot, dest,
                                                        reason)
        finally:
            self._migration_mutex.release(mutex)
        return record

    def _migrate_slot_body(self, slot, dest, reason):
        """Generator: the handoff saga.

        1. **snapshot** — the source copies the slot's inode records
           and starts capturing subsequent committed writes (a delta).
        2. **install** — the destination durably applies the snapshot
           and marks the slot *pending* (bounces requests ``ERETRY``).
        3. **fence** — the source atomically stops hosting the slot,
           drains in-flight writers, durably marks it *moved* and
           returns the captured delta; from here it bounces requests
           with ``EMOVED`` naming the destination and the epoch the
           move will install.
        4. **activate** — the destination applies the delta and marks
           the slot *active* in one transaction, then serves it.  This
           is the point of no return: activation is re-delivered until
           acknowledged (never aborted — the destination may already
           have acked client writes).
        5. The authoritative slot map adopts the assignment (epoch
           bump = exactly the fence-advertised epoch, since sagas are
           serialized), and the source purges its dead copy.

        A failure in steps 1-3 aborts: destination discards, source
        reclaims, and — after a fence may have leaked the advertised
        epoch — the epoch is burned by re-assigning the slot to its
        source."""
        src = self.shared.slot_map.node_of(slot)
        if (dest == src or not 0 <= dest < len(self.shared.mnode_names)
                or not 0 <= slot < self.shared.num_slots):
            return None
        record = {
            "slot": slot, "src": src, "dst": dest, "reason": reason,
            "started_at": self.env.now, "status": "running",
            "phase": "snapshot",
        }
        self.migrations[slot] = record
        try:
            try:
                reply = yield from self._slot_call(
                    src, "slot_snapshot", {"slot": slot}, attempts=4)
            except RpcFailure:
                yield from self._slot_abort(slot, src, dest, record,
                                            discard_dst=False)
                return record
            record["phase"] = "install"
            try:
                yield from self._slot_call(
                    dest, "slot_install",
                    {"slot": slot, "entries": reply["entries"],
                     "markers": reply.get("markers", [])},
                    attempts=4)
            except RpcFailure:
                yield from self._slot_abort(slot, src, dest, record,
                                            discard_dst=True)
                return record
            record["phase"] = "fence"
            advertised = self.shared.slot_map.epoch + 1
            try:
                # Single attempt by design: a retried fence would
                # return an *empty* delta (the capture is consumed by
                # the first fence) and silently drop the real one.
                reply = yield from self._slot_call(
                    src, "slot_fence",
                    {"slot": slot, "node": dest, "epoch": advertised})
            except RpcFailure:
                yield from self._slot_abort(slot, src, dest, record,
                                            discard_dst=True,
                                            burn_epoch=True)
                return record
            record["fenced_at"] = self.env.now
            record["delta_txns"] = len(reply["delta"])
            record["phase"] = "activate"
            yield from self._slot_deliver(
                dest, "slot_activate",
                {"slot": slot, "delta": reply["delta"]})
            record["activated_at"] = self.env.now
            record["epoch"] = self.shared.slot_map.assign(slot, dest)
            record["status"] = "committed"
            record["phase"] = "purge"
            yield from self._slot_deliver(src, "slot_purge",
                                          {"slot": slot})
            record["phase"] = "done"
            self.metrics.counter("slot_migrations").inc()
            return record
        finally:
            self.migrations.pop(slot, None)
            record["finished_at"] = self.env.now
            self.migration_log.append(record)

    def rebalance_slots(self, max_moves=8, reason="rebalance"):
        """Generator: migrate whole directory slots off the most loaded
        nodes onto the least loaded until every node is within the
        (1/n + epsilon) bound, the move budget runs out, or no single
        slot strictly improves the maximum.  This is the elastic
        counterpart of :meth:`rebalance`: that one re-hashes individual
        hot *filenames* through the exception table; this one moves
        *slots* between nodes (e.g. onto freshly added ones) without
        touching placement hashing at all.  Returns the committed
        migration records."""
        moves = []
        for _ in range(max_moves):
            stats = yield from self._gather_stats()
            counts = [s["inode_count"] for s in stats]
            total = sum(counts)
            if total == 0:
                break
            imax = max(range(len(counts)), key=counts.__getitem__)
            imin = min(range(len(counts)), key=counts.__getitem__)
            if counts[imax] <= self._bound(total):
                break
            gap = counts[imax] - counts[imin]
            slot_counts = stats[imax].get("slot_counts", {})
            hosted = stats[imax].get("hosted_slots", [])
            chosen = None
            for cnt, slot in sorted(
                    ((slot_counts.get(slot, 0), slot)
                     for slot in hosted), reverse=True):
                if 0 < cnt < gap:
                    # Largest slot that still strictly improves the
                    # maximum: dest ends below the source's old count.
                    chosen = slot
                    break
            if chosen is None:
                break
            record = yield from self.migrate_slot(chosen, imin,
                                                  reason=reason)
            if record is None or record.get("status") != "committed":
                break
            moves.append(record)
        return moves

    # ------------------------------------------------------------------
    # consensus membership registry (the demoted coordinator role)
    # ------------------------------------------------------------------

    def next_term(self, slot):
        """Synchronously bump and return the slot's term.

        Used when a crashed leader restarts in place: redo replay
        resurrects it with its old log, but it must never again append
        under a term an elected successor may have claimed meanwhile.
        """
        entry = self.consensus_registry.setdefault(
            slot, {"term": 1, "leader": self.shared.mnode_name(slot)}
        )
        entry["term"] += 1
        entry["leader"] = self.shared.mnode_name(slot)
        return entry["term"]

    def register_leader(self, slot, term, leader):
        """Record an initial (or surgically installed) leadership."""
        self.consensus_registry[slot] = {"term": term, "leader": leader}

    def _on_leader_claim(self, message):
        """An elected candidate registering its leadership.

        The coordinator validates only *term monotonicity* — consensus
        safety lives in the vote rule, not here.  A valid claim runs the
        cluster's install hook synchronously (the candidate becomes the
        slot's primary before we reply, so the reply doubles as the
        installation ack), then repairs the cluster around the new
        primary exactly as ordained failover does.
        """
        p = message.payload
        slot, term = p["slot"], p["term"]
        entry = self.consensus_registry.setdefault(
            slot, {"term": 1, "leader": self.shared.mnode_name(slot)}
        )
        if term <= entry["term"]:
            # A stale claim (the candidate lost a race, or a zombie is
            # re-asserting an old term).  Tell it the current term so it
            # can step back down.
            self.respond(message, {"ok": False, "term": entry["term"]})
            return
        detected_at = self.env.now
        if self.install_leader is None:
            raise RuntimeError("leader_claim without an install hook")
        deposed = entry["leader"]
        new_node, lost_txns = self.install_leader(slot, term, p)
        entry["term"] = term
        entry["leader"] = new_node.name
        orphans_removed = yield from self._repair_slot(slot, new_node.name)
        record = {
            "index": slot,
            "failed": deposed,
            "promoted": new_node.name,
            "elected": True,
            "term": term,
            "detected_at": detected_at,
            "promoted_at": detected_at,
            "recovered_at": self.env.now,
            "lost_txns": lost_txns,
            "orphans_removed": orphans_removed,
        }
        self.failover_log.append(record)
        self.metrics.counter("elections").inc()
        self.respond(message, {"ok": True, "term": term})

    def fsck(self):
        """Generator: sweep and delete unreachable inodes cluster-wide.

        Scans every MNode's inode table, walks the directory tree from
        the root, and deletes entries whose parent directory no longer
        exists (recursively: an orphaned directory takes its whole
        subtree with it).  Replica dentries for deleted directories are
        invalidated everywhere first.  Returns the number of entries
        removed.
        """
        from repro.vfs.attrs import ROOT_INO

        names = list(self.shared.mnode_names)
        replies = yield self.env.all_of([
            self.call(name, "fsck_scan", {}) for name in names
        ])
        by_parent = {}
        holder = {}
        info = {}
        for name, reply in zip(names, replies):
            for entry in reply["entries"]:
                key = tuple(entry["key"])
                holder[key] = name
                info[key] = (entry["ino"], entry["is_dir"])
                by_parent.setdefault(key[0], []).append(key)
        reachable_dirs = {ROOT_INO}
        frontier = [ROOT_INO]
        while frontier:
            pid = frontier.pop()
            for key in by_parent.get(pid, ()):
                ino, is_dir = info[key]
                if is_dir and ino not in reachable_dirs:
                    reachable_dirs.add(ino)
                    frontier.append(ino)
        orphans = {}
        orphan_dir_keys = []
        for key, name in sorted(holder.items()):
            if key[0] not in reachable_dirs:
                orphans.setdefault(name, []).append(list(key))
                if info[key][1]:
                    orphan_dir_keys.append(list(key))
        if not orphans:
            return 0
        if orphan_dir_keys:
            # Replica dentries pointing into a removed subtree must not
            # stay VALID anywhere.
            yield self.env.all_of([
                self.call(name, "invalidate", {"keys": orphan_dir_keys})
                for name in names
            ])
            yield from self.apply_invalidation(
                [tuple(k) for k in orphan_dir_keys]
            )
        replies = yield self.env.all_of([
            self.call(name, "fsck_delete", {"keys": keys})
            for name, keys in sorted(orphans.items())
        ])
        removed = sum(reply["removed"] for reply in replies)
        self.metrics.counter("fsck_orphans").inc(amount=removed)
        return removed

    # ------------------------------------------------------------------
    # statistical load balancing (§4.2.2)
    # ------------------------------------------------------------------

    def _top_k(self):
        n = self.shared.config.num_mnodes
        return max(8, int(math.ceil(n * math.log2(max(2, n)))))

    def _gather_stats(self):
        replies = yield self.env.all_of([
            self.call(name, "stats", {"top_k": self._top_k()})
            for name in self.shared.mnode_names
        ])
        return replies

    def _bound(self, total):
        n = self.shared.config.num_mnodes
        return (1.0 / n + self.shared.config.epsilon) * total

    def rebalance(self, max_rounds=64):
        """Generator: run the load-balancing loop until no node exceeds
        the (1/n + epsilon) bound or no candidate move makes progress.

        Each round redirects the most frequent filename on the most
        loaded node, choosing the method that minimizes the new maximum
        (§4.2.2), with two convergence safeguards: a move must strictly
        improve the maximum, and a filename whose frequency exceeds a
        node's fair share escalates to path-walk redirection even when a
        pin looks locally better — the §A.1 regime where only spreading
        the name can balance the namespace.  Returns a report dict.
        """
        moves = []
        counts = []
        attempted = set()
        for _ in range(max_rounds):
            stats = yield from self._gather_stats()
            counts = [s["inode_count"] for s in stats]
            total = sum(counts)
            if total == 0:
                break
            imax = max(range(len(counts)), key=counts.__getitem__)
            if counts[imax] <= self._bound(total):
                break
            imin = min(range(len(counts)), key=counts.__getitem__)
            move = self._plan_move(stats, counts, imax, imin, total,
                                   attempted)
            if move is None:
                break
            name, freq, method = move
            attempted.add((name, method))
            yield from self._apply_redirection(name, method, imin)
            moves.append({"name": name, "method": method, "count": freq,
                          "from": imax, "to": imin})
        self.rebalance_log.extend(moves)
        return {"moves": moves, "counts": counts}

    def _plan_move(self, stats, counts, imax, imin, total, attempted):
        """The best (name, freq, method) for this round, or None."""
        fair_share = total / len(counts)
        for name, freq in stats[imax]["top_filenames"]:
            if name in self.xt.pathwalk:
                continue
            method, estimate = self._choose_method(counts, imax, imin,
                                                   freq)
            if estimate < counts[imax] and (name, method) not in attempted:
                return name, freq, method
            if (freq >= fair_share
                    and (name, "pathwalk") not in attempted):
                # A single filename larger than a node's fair share can
                # only be balanced by spreading it (§A.1).
                return name, freq, "pathwalk"
        return None

    def _choose_method(self, counts, imax, imin, freq):
        """Redirection minimizing the post-move maximum count.

        Returns ``(method, estimated_new_max)``.  Ties favor overriding
        redirection: it keeps one-hop access, while path-walk redirection
        costs an extra hop per operation.
        """
        n = len(counts)
        pathwalk_counts = [
            c - freq + freq / n if i == imax else c + freq / n
            for i, c in enumerate(counts)
        ]
        override_counts = list(counts)
        override_counts[imax] -= freq
        override_counts[imin] += freq
        if max(override_counts) <= max(pathwalk_counts):
            return "override", max(override_counts)
        return "pathwalk", max(pathwalk_counts)

    def _apply_redirection(self, name, method, target_index):
        """Generator: block, migrate and repoint one filename."""
        yield from self._migrate(name, lambda: self._update_table(
            name, method, target_index
        ))

    def _update_table(self, name, method, target_index):
        if method == "pathwalk":
            self.xt.add_pathwalk(name)
        elif method == "override":
            self.xt.add_override(name, target_index)
        else:
            self.xt.remove(name)

    def _migrate(self, name, update_table):
        """Generator: the shared migrate protocol.

        1. block access to ``name`` on every MNode, 2. collect its inodes,
        3. apply the table change and push it eagerly, 4. install inodes
        at their new owners, 5. unblock.
        """
        names = {"names": [name]}
        mnodes = self.shared.mnode_names
        yield self.env.all_of([
            self.call(node, "migrate_begin", names) for node in mnodes
        ])
        replies = yield self.env.all_of([
            self.call(node, "migrate_collect", {"name": name})
            for node in mnodes
        ])
        entries = [e for reply in replies for e in reply["entries"]]
        update_table()
        yield from self.push_exception_table()
        by_target = {}
        for entry in entries:
            pid = entry["key"][0]
            target = self.index.locate(pid, name)
            by_target.setdefault(target, []).append(entry)
        if by_target:
            yield self.env.all_of([
                self.call(self.shared.mnode_name(target),
                          "migrate_install", {"entries": group})
                for target, group in by_target.items()
            ])
        yield self.env.all_of([
            self.call(node, "migrate_end", names) for node in mnodes
        ])
        self.metrics.counter("migrations").inc(amount=len(entries))

    def push_exception_table(self):
        """Generator: eagerly distribute the table to all MNodes."""
        wire = {"table": exception_table_to_wire(self.xt)}
        yield self.env.all_of([
            self.call(node, "xt_update", wire)
            for node in self.shared.mnode_names
        ])

    # ------------------------------------------------------------------
    # exception-table shrinking
    # ------------------------------------------------------------------

    def shrink(self):
        """Generator: drop redirection entries that are no longer needed.

        Iterates path-walk entries then overriding entries in random
        order, removing each whose removal keeps every node within the
        load bound (§4.2.2).
        """
        rng = self.shared.streams.stream("coordinator.shrink")
        removed = []
        for group in (sorted(self.xt.pathwalk), sorted(self.xt.override)):
            group = list(group)
            rng.shuffle(group)
            for name in group:
                stats = yield from self._gather_stats()
                counts = [s["inode_count"] for s in stats]
                total = sum(counts)
                if total == 0:
                    continue
                name_counts = yield self.env.all_of([
                    self.call(node, "name_count", {"name": name})
                    for node in self.shared.mnode_names
                ])
                per_node = [reply["count"] for reply in name_counts]
                freq = sum(per_node)
                target = self.index.hash_name(name)
                projected = [
                    c - per_node[i] for i, c in enumerate(counts)
                ]
                projected[target] += freq
                if max(projected) <= self._bound(total):
                    yield from self._migrate(
                        name, lambda name=name: self.xt.remove(name)
                    )
                    removed.append(name)
        return removed

    # ------------------------------------------------------------------
    # optional periodic balancing
    # ------------------------------------------------------------------

    def start_auto_balance(self, interval_us):
        """Kick off periodic rebalance + shrink, as production does."""
        def loop():
            while True:
                yield self.env.timeout(interval_us)
                yield from self.rebalance()
                yield from self.shrink()
        return self.env.process(loop())
