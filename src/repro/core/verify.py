"""Cluster consistency checking.

:func:`check_cluster_invariants` audits a quiesced FalconFS cluster
against the invariants the protocol is supposed to maintain:

* **placement** — every inode record lives on the MNode hybrid indexing
  maps its ``(parent_id, name)`` key to (unless mid-migration);
* **ownership** — every directory inode has a VALID dentry record in its
  owner's namespace replica, and owner dentries mirror the inode's
  identity and mode;
* **replica coherence** — every VALID replica dentry (on any MNode or
  the coordinator) agrees with the owner's inode record; stale entries
  must be marked INVALID, never silently wrong;
* **reachability** — every inode's parent id refers to an existing
  directory (no orphans), transitively reachable from the root;
* **statistics** — the per-MNode filename counters and secondary indexes
  used by the load balancer match the actual tables.

Two entry points share one audit: :func:`check_cluster_invariants`
raises :class:`InvariantViolation` on the first violated invariant (the
historical fail-fast contract tests rely on), while
:func:`cluster_violations` collects *every* violation as a
machine-readable dict — the form the simulation checker
(``repro.check``) records into seed files and shrinks against.

:func:`runtime_violations` audits the *runtime* state instead of the
tables: after the event queue has drained, no live node may still hold
or queue locks, stage 2PC participant state, or have unacknowledged WAL
commit waiters — leftovers mean some code path leaked synchronization
state under faults.
"""

from repro.core.records import VALID
from repro.vfs.attrs import ROOT_INO


class InvariantViolation(AssertionError):
    """Raised when a cluster invariant does not hold."""


def _violation(invariant, message, *args, **extra):
    record = {"invariant": invariant, "message": message.format(*args)}
    for key, value in extra.items():
        record[key] = value
    return record


def check_cluster_invariants(cluster):
    """Audit ``cluster``; raises :class:`InvariantViolation` on the first
    violated invariant, returns summary counts otherwise."""
    counts = {}
    for violation in _audit(cluster, counts):
        raise InvariantViolation(violation["message"])
    return counts


def cluster_violations(cluster):
    """Audit ``cluster``; returns every violation as a dict with at
    least ``invariant`` and ``message`` keys (empty list when clean)."""
    return list(_audit(cluster, {}))


def _audit(cluster, counts):
    """Generator over violation dicts; fills ``counts`` as it goes."""
    index = cluster.coordinator.index
    slot_map = cluster.shared.slot_map
    mnodes = cluster.mnodes

    # Gather the authoritative inode map: key -> (record, holder index).
    inodes = {}
    for holder_index, mnode in enumerate(mnodes):
        for key, record in mnode.inodes.scan():
            if key in inodes:
                yield _violation(
                    "placement",
                    "duplicate inode record for {} on {} and {}",
                    key, inodes[key][1], holder_index, key=list(key),
                )
            inodes[key] = (record, holder_index)

    dir_inos = {ROOT_INO}
    ino_seen = set()
    for key, (record, holder_index) in inodes.items():
        pid, name = key
        if record.ino in ino_seen:
            yield _violation("identity", "inode number {} appears twice",
                            record.ino, key=list(key))
        ino_seen.add(record.ino)
        if record.is_dir:
            dir_inos.add(record.ino)
        expected = slot_map.node_of(index.locate(pid, name))
        migrating = any(name in mnode.migrating for mnode in mnodes)
        if expected != holder_index and not migrating:
            yield _violation(
                "placement",
                "inode {} placed on MNode {} but indexing says {}",
                key, holder_index, expected, key=list(key),
            )

    # Reachability: every parent id must name an existing directory.
    for key, (record, _) in inodes.items():
        pid, name = key
        if pid not in dir_inos:
            yield _violation(
                "reachability",
                "orphaned inode {}: parent ino {} does not exist",
                key, pid, key=list(key),
            )

    # Ownership and replica coherence.
    replicas_checked = 0
    holders = list(mnodes) + [cluster.coordinator]
    by_key = {key: record for key, (record, _) in inodes.items()}
    for holder in holders:
        for key, dentry in holder.dentries.scan():
            if dentry.state != VALID:
                continue
            replicas_checked += 1
            authoritative = by_key.get(key)
            if authoritative is None or not authoritative.is_dir:
                yield _violation(
                    "coherence",
                    "{} holds VALID dentry {} with no directory inode",
                    holder.name, key, key=list(key),
                )
                continue
            if dentry.ino != authoritative.ino:
                yield _violation(
                    "coherence", "{} dentry {} ino {} != inode {}",
                    holder.name, key, dentry.ino, authoritative.ino,
                    key=list(key),
                )
            if dentry.mode != authoritative.mode:
                yield _violation(
                    "coherence",
                    "{} dentry {} mode {:o} != inode mode {:o}",
                    holder.name, key, dentry.mode, authoritative.mode,
                    key=list(key),
                )

    # Every directory inode is backed by a VALID dentry at its owner.
    for key, (record, holder_index) in inodes.items():
        if not record.is_dir:
            continue
        owner = mnodes[slot_map.node_of(index.locate(*key))]
        dentry = owner.dentries.get(key)
        if dentry is None or dentry.state != VALID:
            if not any(key[1] in mnode.migrating for mnode in mnodes):
                yield _violation(
                    "ownership",
                    "directory {} missing VALID dentry at owner {}",
                    key, owner.name, key=list(key),
                )

    # Statistics used by the load balancer.
    for mnode in mnodes:
        actual = {}
        parents = {}
        for (pid, name), _ in mnode.inodes.scan():
            actual[name] = actual.get(name, 0) + 1
            parents.setdefault(name, set()).add(pid)
        if dict(mnode.filename_counts) != actual:
            yield _violation(
                "statistics", "{} filename counters diverge from its table",
                mnode.name, node=mnode.name,
            )
        if {k: set(v) for k, v in mnode._name_parents.items()} != parents:
            yield _violation(
                "statistics", "{} name->parents index diverges from its table",
                mnode.name, node=mnode.name,
            )

    counts["inodes"] = len(inodes)
    counts["directories"] = len(dir_inos) - 1
    counts["valid_replica_dentries"] = replicas_checked


def runtime_violations(cluster):
    """Audit runtime synchronization state on a quiesced cluster.

    After the event queue drains, every lock must have been released,
    every staged rename-2PC participant entry resolved, and every WAL
    commit waiter acknowledged (on nodes whose WAL did not power-fail).
    Residue means a code path leaked state — typically an error or
    fault-handling branch that skipped a release.  Returns violation
    dicts like :func:`cluster_violations`.
    """
    violations = []
    holders = list(cluster.mnodes) + [cluster.coordinator]
    for holder in holders:
        if getattr(holder, "halted", False):
            continue
        lock_keys = sorted(
            repr(key) for key in getattr(holder.locks, "_locks", {})
        )
        if lock_keys:
            violations.append(_violation(
                "lock-leak", "{} still holds/queues locks on {} keys: {}",
                holder.name, len(lock_keys), lock_keys[:8],
                node=holder.name, keys=lock_keys,
            ))
        staged = getattr(holder, "_staged", None)
        if staged:
            violations.append(_violation(
                "staged-leak",
                "{} holds unresolved 2PC staging for txids {}",
                holder.name, sorted(staged), node=holder.name,
                txids=sorted(staged),
            ))
        wal = getattr(holder, "wal", None)
        if wal is not None and not wal.failed and wal._pending:
            violations.append(_violation(
                "wal-waiters", "{} has {} unacknowledged WAL commit waiters",
                holder.name, len(wal._pending), node=holder.name,
            ))
    mutex = getattr(cluster.coordinator, "_rename_mutex", None)
    if mutex is not None:
        busy = mutex.count + mutex.queue_length
        if busy:
            violations.append(_violation(
                "rename-mutex", "coordinator rename mutex busy after drain "
                "({} holders/waiters)", busy,
            ))
    active = getattr(cluster.coordinator, "migrations", None)
    if active:
        violations.append(_violation(
            "migration-leak",
            "slot handoffs still registered after drain: {}",
            sorted(active), slots=sorted(active),
        ))
    for mnode in cluster.mnodes:
        if getattr(mnode, "halted", False):
            continue
        pending = sorted(getattr(mnode, "pending_slots", ()))
        if pending:
            violations.append(_violation(
                "pending-slot-leak",
                "{} still holds undischarged pending slots {}",
                mnode.name, pending, node=mnode.name, slots=pending,
            ))
        writers = {
            slot: n for slot, n
            in getattr(mnode, "_slot_writers", {}).items() if n
        }
        if writers:
            violations.append(_violation(
                "slot-writer-leak",
                "{} has leaked slot writer counts {}",
                mnode.name, writers, node=mnode.name,
            ))
    return violations
