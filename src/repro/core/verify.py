"""Cluster consistency checking.

:func:`check_cluster_invariants` audits a quiesced FalconFS cluster
against the invariants the protocol is supposed to maintain:

* **placement** — every inode record lives on the MNode hybrid indexing
  maps its ``(parent_id, name)`` key to (unless mid-migration);
* **ownership** — every directory inode has a VALID dentry record in its
  owner's namespace replica, and owner dentries mirror the inode's
  identity and mode;
* **replica coherence** — every VALID replica dentry (on any MNode or
  the coordinator) agrees with the owner's inode record; stale entries
  must be marked INVALID, never silently wrong;
* **reachability** — every inode's parent id refers to an existing
  directory (no orphans), transitively reachable from the root;
* **statistics** — the per-MNode filename counters and secondary indexes
  used by the load balancer match the actual tables.

The property/fuzz tests call this after random concurrent workloads; it
is also a useful debugging aid for downstream users.
"""

from repro.core.records import VALID
from repro.vfs.attrs import ROOT_INO


class InvariantViolation(AssertionError):
    """Raised when a cluster invariant does not hold."""


def _fail(message, *args):
    raise InvariantViolation(message.format(*args))


def check_cluster_invariants(cluster):
    """Audit ``cluster``; raises :class:`InvariantViolation` on the first
    violated invariant, returns summary counts otherwise."""
    index = cluster.coordinator.index
    mnodes = cluster.mnodes

    # Gather the authoritative inode map: key -> (record, holder index).
    inodes = {}
    for holder_index, mnode in enumerate(mnodes):
        for key, record in mnode.inodes.scan():
            if key in inodes:
                _fail("duplicate inode record for {} on {} and {}",
                      key, inodes[key][1], holder_index)
            inodes[key] = (record, holder_index)

    dir_inos = {ROOT_INO}
    ino_seen = set()
    for key, (record, holder_index) in inodes.items():
        pid, name = key
        if record.ino in ino_seen:
            _fail("inode number {} appears twice", record.ino)
        ino_seen.add(record.ino)
        if record.is_dir:
            dir_inos.add(record.ino)
        expected = index.locate(pid, name)
        migrating = any(name in mnode.migrating for mnode in mnodes)
        if expected != holder_index and not migrating:
            _fail("inode {} placed on MNode {} but indexing says {}",
                  key, holder_index, expected)

    # Reachability: every parent id must name an existing directory.
    for key, (record, _) in inodes.items():
        pid, name = key
        if pid not in dir_inos:
            _fail("orphaned inode {}: parent ino {} does not exist",
                  key, pid)

    # Ownership and replica coherence.
    replicas_checked = 0
    holders = list(mnodes) + [cluster.coordinator]
    by_key = {key: record for key, (record, _) in inodes.items()}
    for holder in holders:
        for key, dentry in holder.dentries.scan():
            if dentry.state != VALID:
                continue
            replicas_checked += 1
            authoritative = by_key.get(key)
            if authoritative is None or not authoritative.is_dir:
                _fail("{} holds VALID dentry {} with no directory inode",
                      holder.name, key)
            if dentry.ino != authoritative.ino:
                _fail("{} dentry {} ino {} != inode {}",
                      holder.name, key, dentry.ino, authoritative.ino)
            if dentry.mode != authoritative.mode:
                _fail("{} dentry {} mode {:o} != inode mode {:o}",
                      holder.name, key, dentry.mode, authoritative.mode)

    # Every directory inode is backed by a VALID dentry at its owner.
    for key, (record, holder_index) in inodes.items():
        if not record.is_dir:
            continue
        owner = mnodes[index.locate(*key)]
        dentry = owner.dentries.get(key)
        if dentry is None or dentry.state != VALID:
            if not any(key[1] in mnode.migrating for mnode in mnodes):
                _fail("directory {} missing VALID dentry at owner {}",
                      key, owner.name)

    # Statistics used by the load balancer.
    for mnode in mnodes:
        actual = {}
        parents = {}
        for (pid, name), _ in mnode.inodes.scan():
            actual[name] = actual.get(name, 0) + 1
            parents.setdefault(name, set()).add(pid)
        if dict(mnode.filename_counts) != actual:
            _fail("{} filename counters diverge from its table",
                  mnode.name)
        if {k: set(v) for k, v in mnode._name_parents.items()} != parents:
            _fail("{} name->parents index diverges from its table",
                  mnode.name)

    return {
        "inodes": len(inodes),
        "directories": len(dir_inos) - 1,
        "valid_replica_dentries": replicas_checked,
    }
