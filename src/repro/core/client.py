"""The FalconFS client module.

Three client modes reproduce the paper's configurations:

* ``"vfs"`` — the stateless client with **VFS shortcut** (§5): path walks
  satisfy intermediate components from the dentry cache with *fake*
  attributes (mode 0777, reserved uid/gid), and the final component's
  operation is sent with the full path to the MNode chosen by hybrid
  indexing.  Exactly one metadata request per operation in the common
  case, independent of the client's cache budget.
* ``"libfs"`` — the LibFS interface used to saturate servers in the
  paper's throughput experiments: same single-request protocol, no VFS
  layer at all.
* ``"nobypass"`` — FalconFS-NoBypass (§6.4): the unmodified VFS performs
  client-side path resolution, so every dcache miss on an intermediate
  component costs a real ``lookup`` RPC; the client is *stateful* and its
  performance depends on the cache budget.

Every client keeps a lazily refreshed exception-table copy: requests carry
the client's table version, responses piggyback a newer table when the
client is stale, and misrouted requests are forwarded server-side in the
meantime (§4.2.1).
"""

from repro.core.filestore import BlockClient
from repro.core.indexing import ExceptionTable, HybridIndex
from repro.core.mnode import exception_table_from_wire
from repro.net import Node
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import (
    CAT_CPU,
    CAT_PHASE,
    OpContext,
    RETRYABLE,
    RetryPolicy,
    deadline_call,
    retry,
)
from repro.vfs import DentryCache, InodeAttrs, ROOT_INO
from repro.vfs.attrs import make_fake_dir_attrs
from repro.vfs.pathwalk import split_path

CLIENT_MODES = ("vfs", "libfs", "nobypass")


class FalconClient(Node):
    """One FalconFS client (a mount point or a LibFS instance)."""

    def __init__(self, env, network, shared, name, mode="vfs",
                 cache_budget_bytes=None):
        if mode not in CLIENT_MODES:
            raise ValueError("unknown client mode: {!r}".format(mode))
        super().__init__(env, network, name, cores=1024)
        self.shared = shared
        self.mode = mode
        self.xt = ExceptionTable()
        self.index = HybridIndex(shared.num_slots, self.xt)
        #: Private, possibly stale copy of the cluster slot map.  Never
        #: read from ``shared`` after construction: a request routed by
        #: a stale epoch bounces with ``EMOVED`` carrying the
        #: reassignment, and :meth:`_on_moved_hint` patches this copy —
        #: the elastic-namespace analogue of lazy exception-table
        #: refresh.
        self.slot_map = shared.slot_map.copy()
        self.rng = shared.streams.stream("client." + name)
        #: Dedicated stream for backoff jitter, consulted by the shared
        #: retry helper only when ``config.retry_jitter`` is nonzero —
        #: an independent stream so enabling jitter never perturbs
        #: workload-shaping draws from ``self.rng``.
        self.retry_rng = shared.streams.stream("retry." + name)
        self.dcache = DentryCache(budget_bytes=cache_budget_bytes)
        self.blocks = BlockClient(self, shared)
        self.root_attrs = InodeAttrs(ino=ROOT_INO, is_dir=True, mode=0o777)
        #: Lazy exception-table refresh off responses (§4.2.1).  The
        #: stale-table corner-case experiment disables it to hold the
        #: client at an old version.
        self.auto_refresh_xt = True
        #: Per-op deadline (us; 0 = none) and shared retry policy, both
        #: stamped onto every operation's OpContext.
        self.deadline_us = shared.config.op_deadline_us
        self.retry_policy = RetryPolicy.from_config(shared.config)
        #: Per-attempt RPC timeout (us; 0 = none).  With a timeout set,
        #: ETIMEDOUT becomes retryable: a black-holed request to a
        #: crashed MNode is retried, and since each attempt re-resolves
        #: its target through the cluster directory, the retry lands on
        #: the promoted standby once failover installs it.
        self.rpc_timeout_us = shared.config.rpc_timeout_us
        # Per-attempt counter: paid once here, not per RPC.
        self._requests = self.metrics.counter("requests")
        self._fake_inos = {}
        self._fake_next = -2
        #: Ack-history tap: when set to a list, every *root* operation
        #: appends one client-visible completion record (op, path,
        #: start/end time, outcome) as it acknowledges — the history the
        #: simulation checker's oracle audits.  None (the default) keeps
        #: the hot path untouched.
        self.ack_log = None

    # ------------------------------------------------------------------
    # public API (generators; drive via the cluster facade or env.process)
    # ------------------------------------------------------------------

    def mkdir(self, path, mode=0o755, ctx=None):
        # Plain functions handing back the _meta_op generator: one fewer
        # generator frame for every resume of the operation (the field
        # extraction rides on ``extract`` instead of a wrapper frame).
        return self._meta_op("mkdir", path, {"mode": mode}, ctx=ctx,
                             extract="ino")

    def create(self, path, mode=0o644, exclusive=True, ctx=None):
        return self._meta_op(
            "create", path, {"mode": mode, "exclusive": exclusive},
            ctx=ctx, extract="ino",
        )

    def open_file(self, path, ctx=None):
        """Open for reading; returns the attrs dict (ino, size, ...)."""
        return self._meta_op("open", path, {}, ctx=ctx, extract="attrs")

    def getattr(self, path, ctx=None):
        if split_path(path) == []:
            return {
                "ino": ROOT_INO, "is_dir": True, "mode": 0o777,
                "uid": 0, "gid": 0, "size": 0, "mtime": 0.0, "nlink": 1,
            }
        data = yield from self._meta_op("getattr", path, {}, ctx=ctx)
        return data["attrs"]

    def close(self, path, size, ctx=None):
        """Close after writing: persists size/mtime on the owner MNode."""
        yield from self._meta_op("close", path, {"size": size}, ctx=ctx)

    def unlink(self, path):
        yield from self._meta_op("unlink", path, {})

    def chmod(self, path, mode):
        """chmod; files at their owner MNode, directories via coordinator."""
        ctx = self._begin_op("chmod", path)

        def body():
            try:
                yield from self._meta_op("setattr", path, {"mode": mode},
                                         ctx=ctx)
            except RpcFailure as failure:
                if failure.code != RpcError.EISDIR:
                    raise
                yield from self._coordinator_op(
                    "chmod_dir", {"path": path, "mode": mode}, ctx=ctx
                )
                self._drop_cached(path)

        yield from self._traced(ctx, body(), path=path)

    def rmdir(self, path):
        yield from self._coordinator_op("rmdir", {"path": path})
        self._drop_cached(path)

    def rename(self, src, dst):
        yield from self._coordinator_op("rename", {"src": src, "dst": dst})
        self._drop_cached(src)

    def readdir(self, path):
        """List a directory; returns a sorted list of (name, is_dir)."""
        ctx = self._begin_op("readdir", path)
        name = split_path(path)[-1] if split_path(path) else "/"

        def attempt(_attempt, hint):
            # Re-resolve the slot every attempt (not just on a redirect
            # hint): under consensus a fenced leader answers ENOTLEADER
            # with no hint, and the directory — updated by the election
            # install — is where the new leader is found.
            if hint is not None:
                target_name = hint
            else:
                target, _ = self.index.client_target(name, self.rng)
                target_name = self._resolve_slot(target)
            return self._request(target_name, "readdir", {"path": path},
                                 ctx=ctx)

        data = yield from self._traced(
            ctx, retry(self, ctx, attempt, retryable=self._retryable()),
            path=path)
        return [tuple(entry) for entry in data["entries"]]

    def read_file(self, path):
        """open + read all blocks (+ client-local close); returns size."""
        ctx = self._begin_op("read", path)

        def body():
            attrs = yield from self.open_file(path, ctx=ctx)
            yield from self.blocks.read(attrs["ino"], attrs["size"],
                                        ctx=ctx)
            return attrs

        attrs = yield from self._traced(ctx, body(), path=path)
        self.metrics.counter("files").inc("read")
        return attrs["size"]

    def write_file(self, path, size, mode=0o644, exclusive=True):
        """create + write all blocks + close; returns the new ino."""
        ctx = self._begin_op("write", path)

        def body():
            ino = yield from self.create(path, mode=mode,
                                         exclusive=exclusive, ctx=ctx)
            yield from self.blocks.write(ino, size, ctx=ctx)
            yield from self.close(path, size, ctx=ctx)
            return ino

        ino = yield from self._traced(ctx, body(), path=path)
        self.metrics.counter("files").inc("written")
        return ino

    def symlink(self, target, link_path):
        """Symbolic links are unsupported: the VFS shortcut cannot follow
        links client-side (§5's stated limitation)."""
        raise RpcFailure(RpcError.EINVAL,
                         "symlinks unsupported by the VFS shortcut")
        yield  # pragma: no cover

    def exists(self, path):
        try:
            yield from self.getattr(path)
        except RpcFailure as failure:
            if failure.code in (RpcError.ENOENT, RpcError.ENOTDIR):
                return False
            raise
        return True

    # ------------------------------------------------------------------
    # metadata request path
    # ------------------------------------------------------------------

    def _begin_op(self, op, path=None):
        """New :class:`OpContext` for one client-visible operation."""
        deadline = None
        if self.deadline_us:
            # Stamped off the client's *local* clock: under the
            # clock-skew nemesis a client and the server it calls can
            # legitimately disagree about how much budget remains.
            deadline = self.clock.now_us() + self.deadline_us
        ctx = OpContext(
            self.env, op, origin=self.name, tracer=self.shared.tracer,
            deadline=deadline, retry_policy=self.retry_policy,
        )
        ctx.begin(node=self.name,
                  attrs={"path": path}
                  if ctx.traced and path is not None else None)
        return ctx

    def _traced(self, ctx, gen, path=None):
        """Generator: run ``gen`` to completion under ``ctx``'s root span."""
        start_us = self.env.now
        try:
            result = yield from gen
        except BaseException as exc:
            ctx.finish(error=repr(exc))
            if self.ack_log is not None:
                self._ack(ctx.op, path, start_us, exc)
            raise
        ctx.finish()
        if self.ack_log is not None:
            self._ack(ctx.op, path, start_us)
        return result

    def _ack(self, op, path, start_us, exc=None):
        """Append one root-operation completion to the ack history."""
        error = None
        if exc is not None:
            error = exc.code if isinstance(exc, RpcFailure) else repr(exc)
        self.ack_log.append({
            "client": self.name, "op": op, "path": path,
            "start_us": start_us, "end_us": self.env.now,
            "ok": exc is None, "error": error,
        })

    def _client_cpu(self, ctx, cost_us):
        """Generator: charge client-side CPU, attributed to ``ctx``."""
        start = self.env.now
        yield self.env.schedule_timeout(cost_us)
        ctx.record("client", CAT_CPU, start, self.env.now, node=self.name)

    def _meta_op(self, op, path, extra, ctx=None, extract=None):
        """Generator: walk according to the client mode, send the op.

        With ``ctx=None`` this is a root operation (it opens and closes
        the root span); otherwise it runs as a sub-op phase of a
        composite operation such as ``read_file``.
        """
        if ctx is None:
            # Root op: inline the _traced wrapper — one fewer generator
            # frame on every resume of the op's event chain.
            ctx = self._begin_op(op, path)
            start_us = self.env.now
            try:
                data = yield from self._meta_op_body(op, path, extra, ctx)
            except BaseException as exc:
                ctx.finish(error=repr(exc))
                if self.ack_log is not None:
                    self._ack(op, path, start_us, exc)
                raise
            ctx.finish()
            if self.ack_log is not None:
                self._ack(op, path, start_us)
            return data if extract is None else data[extract]
        with ctx.span("op." + op, CAT_PHASE, node=self.name):
            data = yield from self._meta_op_body(op, path, extra, ctx)
        return data if extract is None else data[extract]

    def _meta_op_body(self, op, path, extra, ctx):
        cost_us = self.costs.client_op_us if self.env.models_costs else 0.0
        if cost_us:
            if ctx.traced:
                yield from self._client_cpu(ctx, cost_us)
            else:
                yield self.env.schedule_timeout(cost_us)
        components = split_path(path)
        if not components:
            raise RpcFailure(RpcError.EINVAL, "operation on /")
        if self.mode == "vfs":
            with ctx.span("walk", CAT_PHASE, node=self.name):
                yield from self._vfs_shortcut_walk(components)
        elif self.mode == "nobypass":
            with ctx.span("walk", CAT_PHASE, node=self.name):
                yield from self._stateful_walk(components, ctx)
        payload = dict(extra)
        payload["path"] = path
        data = yield from self._send_routed(op, components[-1], payload, ctx)
        self._cache_final(components, data)
        return data

    def _vfs_shortcut_walk(self, components):
        """Intermediate components resolve to cached fake attrs — no RPCs.

        Mirrors §5: ``lookup()`` is called with LOOKUP_PARENT for
        non-final components and returns fake attributes; on a dcache hit
        ``d_revalidate`` accepts fake entries only while LOOKUP_PARENT is
        set, so a fake entry hit as the *final* component is refreshed by
        the operation's own full-path request (sent by the caller).
        """
        current = ROOT_INO
        probe_us = self.costs.cache_probe_us if self.env.models_costs else 0.0
        for name in components[:-1]:
            if probe_us:
                yield self.env.schedule_timeout(probe_us)
            entry = self.dcache.lookup(current, name)
            if entry is None:
                attrs = make_fake_dir_attrs(self._fake_ino(current, name))
                entry = self.dcache.insert(current, name, attrs)
            current = entry.attrs.ino
        final = self.dcache.peek(current, components[-1])
        if final is not None and final.attrs.is_fake:
            # d_revalidate: fake attrs must never satisfy a final lookup.
            self.metrics.counter("revalidate_fake").inc()
            self.dcache.invalidate(current, components[-1])

    def _stateful_walk(self, components, ctx):
        """NoBypass: real client-side resolution through the dcache."""
        current = self.root_attrs
        probe_us = self.costs.cache_probe_us if self.env.models_costs else 0.0
        for name in components[:-1]:
            if probe_us:
                yield self.env.schedule_timeout(probe_us)
            if not current.is_dir:
                raise RpcFailure(RpcError.ENOTDIR, name)
            if not current.allows_exec():
                raise RpcFailure(RpcError.EACCES, name)
            entry = self.dcache.lookup(current.ino, name)
            if entry is None:
                data = yield from self._send_routed(
                    "lookup", name, {"pid": current.ino, "name": name}, ctx
                )
                wire = data["attrs"]
                attrs = InodeAttrs(
                    ino=wire["ino"], is_dir=wire["is_dir"],
                    mode=wire["mode"], uid=wire["uid"], gid=wire["gid"],
                    size=wire["size"], mtime=wire["mtime"],
                )
                entry = self.dcache.insert(current.ino, name, attrs)
            current = entry.attrs

    def _send_routed(self, op, name, payload, ctx):
        """Route by hybrid indexing; retries (with the shared
        exponential-backoff helper) on ERETRY, honouring a redirect hint
        on EREDIRECT.  Returns the retry generator directly (both this
        function and ``attempt`` are plain functions, keeping two frames
        off every resume of the RPC chain)."""
        payload["xt_version"] = self.xt.version

        def attempt(_attempt, hint):
            if hint is not None:
                target_name = hint
            elif op == "lookup" and "pid" in payload:
                target = self.index.locate(payload["pid"], name)
                target_name = self._resolve_slot(target)
            else:
                target, _ = self.index.client_target(name, self.rng)
                target_name = self._resolve_slot(target)
            payload["xt_version"] = self.xt.version
            return self._request(target_name, op, payload, ctx)

        return retry(self, ctx, attempt, retryable=self._retryable())

    def _resolve_slot(self, slot):
        """Name of the node hosting ``slot`` per the client's *private*
        slot map.  A stale answer is safe: the old host forwards or
        bounces ``EMOVED``, which patches the map for the retry."""
        return self.shared.node_name(self.slot_map.node_of(slot))

    def _on_moved_hint(self, detail):
        """Absorb an ``EMOVED`` bounce (called by the shared retry
        helper): adopt the advertised reassignment if its epoch is ahead
        of the private map's."""
        if self.slot_map.patch(detail["slot"], detail["node"],
                               detail["epoch"]):
            self.metrics.counter("slot_map_patches").inc()

    def _retryable(self):
        """Failure codes the retry loop recovers from.  Timeouts are
        retryable only under a per-attempt timeout — without one, a
        timeout means the whole operation deadline expired."""
        if self.rpc_timeout_us:
            return RETRYABLE + (RpcError.ETIMEDOUT,)
        return RETRYABLE

    def _request(self, target, op, payload, ctx):
        """Generator: one RPC, with lazy exception-table refresh."""
        self._requests.inc(op)
        timeout_us = self.rpc_timeout_us or None
        with ctx.span("rpc", CAT_PHASE, node=self.name,
                      attrs={"op": op, "target": target}
                      if ctx.traced else None):
            if timeout_us is None and ctx.deadline is None:
                # deadline_call's no-deadline fast path, inlined: one RPC,
                # no watchdog, and no extra generator frame per resume.
                body = yield self.call(target, op, payload, ctx=ctx)
            else:
                body = yield from deadline_call(
                    self, ctx, target, op, payload, timeout_us=timeout_us,
                )
        if isinstance(body, dict):
            table = body.get("xt")
            if table is not None:
                self._install_xt(exception_table_from_wire(table))
            if "data" in body:
                return body["data"]
        return body

    def _coordinator_op(self, op, payload, ctx=None):
        if ctx is None:
            op_path = payload.get("path") or payload.get("src")
            ctx = self._begin_op(op, op_path)
            start_us = self.env.now
            try:
                body = yield from self._coordinator_op_body(op, payload,
                                                            ctx)
            except BaseException as exc:
                ctx.finish(error=repr(exc))
                if self.ack_log is not None:
                    self._ack(op, op_path, start_us, exc)
                raise
            ctx.finish()
            if self.ack_log is not None:
                self._ack(op, op_path, start_us)
            return body
        with ctx.span("op." + op, CAT_PHASE, node=self.name):
            body = yield from self._coordinator_op_body(op, payload, ctx)
        return body

    def _coordinator_op_body(self, op, payload, ctx):
        if self.costs.client_op_us:
            yield from self._client_cpu(ctx, self.costs.client_op_us)

        def attempt(_attempt, _hint):
            self._requests.inc(op)
            with ctx.span("rpc", CAT_PHASE, node=self.name,
                          attrs={"op": op,
                                 "target": self.shared.coordinator_name}
                          if ctx.traced else None):
                body = yield from deadline_call(
                    self, ctx, self.shared.coordinator_name, op, payload,
                    timeout_us=self.rpc_timeout_us or None,
                )
            return body

        body = yield from retry(self, ctx, attempt,
                                retryable=self._retryable())
        return body

    def _install_xt(self, table):
        if not self.auto_refresh_xt:
            return
        if table.version > self.xt.version:
            self.xt.version = table.version
            self.xt.pathwalk = table.pathwalk
            self.xt.override = table.override
            self.metrics.counter("xt_refreshes").inc()

    # ------------------------------------------------------------------
    # cache helpers
    # ------------------------------------------------------------------

    def _fake_ino(self, parent_ino, name):
        """Stable client-local ids for fake dentries (negative range)."""
        key = (parent_ino, name)
        ino = self._fake_inos.get(key)
        if ino is None:
            ino = self._fake_next
            self._fake_next -= 1
            self._fake_inos[key] = ino
        return ino

    def _cache_final(self, components, data):
        """Cache real final-component attrs (both client modes)."""
        if self.mode == "libfs" or not isinstance(data, dict):
            return
        wire = data.get("attrs")
        if wire is None:
            return
        parent_ino = self._cached_parent_ino(components)
        if parent_ino is None:
            return
        attrs = InodeAttrs(
            ino=wire["ino"], is_dir=wire["is_dir"], mode=wire["mode"],
            uid=wire["uid"], gid=wire["gid"], size=wire["size"],
            mtime=wire["mtime"],
        )
        self.dcache.insert(parent_ino, components[-1], attrs,
                           cold=not attrs.is_dir)

    def _cached_parent_ino(self, components):
        current = ROOT_INO
        for name in components[:-1]:
            entry = self.dcache.peek(current, name)
            if entry is None:
                return None
            current = entry.attrs.ino
        return current

    def _drop_cached(self, path):
        """Best-effort local eviction after a namespace change we made."""
        components = split_path(path)
        if not components:
            return
        parent_ino = self._cached_parent_ino(components)
        if parent_ino is not None:
            self.dcache.invalidate(parent_ino, components[-1])

    def handle(self, message):
        raise RuntimeError(
            "client {} received unexpected {!r}".format(self.name, message)
        )
        yield  # pragma: no cover
