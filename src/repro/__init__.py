"""FalconFS reproduction.

A discrete-event-simulated implementation of *FalconFS: Distributed File
System for Large-Scale Deep Learning Pipeline* (NSDI 2026), including the
stateless-client architecture (hybrid metadata indexing, lazy namespace
replication, concurrent request merging, VFS shortcut), the CephFS /
Lustre / JuiceFS baseline models, and the full evaluation harness.

Quickstart
----------
>>> from repro import FalconCluster
>>> fs = FalconCluster().fs()
>>> fs.mkdir("/data")
>>> fs.write("/data/img.jpg", size=112 * 1024)
>>> fs.read("/data/img.jpg")
114688
"""

from repro.core import FalconCluster, FalconConfig, FalconFilesystem

__version__ = "1.0.0"

__all__ = [
    "FalconCluster",
    "FalconConfig",
    "FalconFilesystem",
    "__version__",
]
