"""Real-runtime serving mode: the simulated protocol on real sockets.

``python -m repro.serve`` runs the *same* protocol objects the simulator
runs — :class:`~repro.core.mnode.MNode`,
:class:`~repro.core.coordinator.Coordinator`,
:class:`~repro.core.client.FalconClient` — on
:class:`~repro.runtime.aio.AsyncioEnv` (real monotonic clock, real
asyncio event loop) with inter-process traffic over the length-prefixed
JSON-RPC fabric of :mod:`repro.runtime.net`.

Subcommands
-----------
``up``      launch a coordinator plus N MNode processes and wait
``node``    run one server process (used by ``up``; rarely by hand)
``client``  one metadata operation against a running cluster
            (``mkdir`` / ``create`` / ``stat`` / ``open`` / ``rename`` /
            ``ls``)
``bench``   a seeded metadata workload; prints a JSON summary with ack
            counts and wall-clock latency percentiles

Port layout: the coordinator listens on ``--base-port``, MNode *i* on
``base+1+i``; each server's Prometheus text endpoint is its RPC port
``+1000`` (``GET /metrics``).

What stays simulation-only: fault injection, nemesis schedules,
``repro.check``, cost modeling, replication state surgery.  The serving
mode is the deployment story; the simulator remains the reference for
determinism and failure reasoning.
"""

from repro.serve.main import main

__all__ = ["main"]
