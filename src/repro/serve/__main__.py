import sys

from repro.serve.main import main

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
