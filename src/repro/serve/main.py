"""Entry points for the real-runtime serving mode (see package docs)."""

import argparse
import asyncio
import json
import random
import signal
import socket
import subprocess
import sys
import time

from repro.core.client import FalconClient
from repro.core.records import InodeAllocator
from repro.core.shared import ClusterShared, FalconConfig
from repro.metrics import render_prometheus
from repro.net.costs import CostModel
from repro.net.rpc import RpcFailure
from repro.runtime.aio import AsyncioEnv
from repro.runtime.net import AioNetwork

#: Prometheus endpoint = RPC port + this offset.
METRICS_PORT_OFFSET = 1000


def topology(host, base_port, num_mnodes):
    """name -> (host, rpc_port) for every server endpoint."""
    peers = {"coordinator": (host, base_port)}
    for i in range(num_mnodes):
        peers["mnode-{}".format(i)] = (host, base_port + 1 + i)
    return peers


def serve_config(args):
    return FalconConfig(
        num_mnodes=args.mnodes,
        num_storage=0,
        # Per-attempt RPC timeout: on a real network silence is the only
        # failure signal, so this must always be set (it is what turns a
        # dead peer into ETIMEDOUT + retry instead of a hang).
        rpc_timeout_us=args.rpc_timeout_ms * 1000.0,
        op_deadline_us=args.op_deadline_ms * 1000.0,
        # Real deployments want decorrelated retries: without jitter,
        # every client that saw the same failure retries in lockstep.
        retry_jitter=0.25,
    )


def _shared(env, args):
    return ClusterShared(env, CostModel(), serve_config(args))


async def _metrics_server(port, registries):
    """Minimal HTTP/1.1 responder for Prometheus text scrapes."""

    async def handle(reader, writer):
        try:
            while True:
                line = await reader.readline()
                if not line or line in (b"\r\n", b"\n"):
                    break
        except (ConnectionError, OSError):
            return
        body = render_prometheus(registries).encode("utf-8")
        head = (b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: text/plain; version=0.0.4; "
                b"charset=utf-8\r\n"
                b"Content-Length: " + str(len(body)).encode() + b"\r\n"
                b"Connection: close\r\n\r\n")
        try:
            writer.write(head + body)
            await writer.drain()
            writer.close()
        except (ConnectionError, OSError):
            pass

    return await asyncio.start_server(handle, "127.0.0.1", port)


# -- node --------------------------------------------------------------


async def run_node(args):
    env = AsyncioEnv(wal_dir=args.wal_dir or None)
    shared = _shared(env, args)
    peers = topology(args.host, args.base_port, args.mnodes)
    if args.role == "coordinator":
        name = shared.coordinator_name
    else:
        name = shared.node_name(args.index)
        # Disjoint inode-id stripes: no cross-process coordination.
        shared.allocator = InodeAllocator(start=2 + args.index,
                                          step=args.mnodes)
    host, port = peers.pop(name)
    network = AioNetwork(env, shared.costs, peers)
    if args.role == "coordinator":
        from repro.core.coordinator import Coordinator

        node = Coordinator(env, network, shared)
    else:
        from repro.core.mnode import MNode

        node = MNode(env, network, shared, args.index)
    await network.start(host, port)
    metrics = await _metrics_server(
        port + METRICS_PORT_OFFSET, [node.metrics, network.metrics]
    )
    print("READY {} rpc={} metrics={}".format(
        name, port, port + METRICS_PORT_OFFSET), flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        loop.add_signal_handler(sig, stop.set)
    await stop.wait()
    metrics.close()
    await network.close()
    env.close()
    return 0


# -- up ----------------------------------------------------------------


def _wait_port(host, port, timeout_s=20.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection((host, port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False


def _node_argv(args, role, index=None):
    argv = [
        sys.executable, "-m", "repro.serve", "node",
        "--role", role,
        "--mnodes", str(args.mnodes),
        "--base-port", str(args.base_port),
        "--host", args.host,
        "--rpc-timeout-ms", str(args.rpc_timeout_ms),
        "--op-deadline-ms", str(args.op_deadline_ms),
    ]
    if index is not None:
        argv += ["--index", str(index)]
    if args.wal_dir:
        argv += ["--wal-dir", args.wal_dir]
    return argv


def run_up(args):
    peers = topology(args.host, args.base_port, args.mnodes)
    procs = [subprocess.Popen(_node_argv(args, "coordinator"))]
    for i in range(args.mnodes):
        procs.append(subprocess.Popen(_node_argv(args, "mnode", index=i)))
    try:
        for name, (host, port) in peers.items():
            if not _wait_port(host, port):
                print("FAILED waiting for {} on {}:{}".format(
                    name, host, port), file=sys.stderr, flush=True)
                return 1
        print("UP {}".format(json.dumps({
            name: {"rpc": port, "metrics": port + METRICS_PORT_OFFSET}
            for name, (_, port) in sorted(peers.items())
        })), flush=True)
        # Serve until interrupted or a child dies.
        while True:
            for proc in procs:
                code = proc.poll()
                if code is not None:
                    print("CHILD EXITED {}".format(code),
                          file=sys.stderr, flush=True)
                    return code or 1
            time.sleep(0.2)
    except KeyboardInterrupt:
        return 0
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:
                proc.kill()
    return 0


# -- client / bench -----------------------------------------------------


async def _make_client(args, name):
    env = AsyncioEnv()
    shared = _shared(env, args)
    peers = topology(args.host, args.base_port, args.mnodes)
    network = AioNetwork(env, shared.costs, peers)
    client = FalconClient(env, network, shared, name, mode=args.mode)
    return env, network, client


async def run_client(args):
    env, network, client = await _make_client(
        args, "cli-{}".format(random.randrange(1 << 30)))
    try:
        if args.op == "mkdir":
            ino = await env.run_process(client.mkdir(args.path))
            print(json.dumps({"ok": True, "ino": ino}))
        elif args.op == "create":
            ino = await env.run_process(client.create(args.path))
            print(json.dumps({"ok": True, "ino": ino}))
        elif args.op in ("stat", "open"):
            gen = (client.getattr(args.path) if args.op == "stat"
                   else client.open_file(args.path))
            attrs = await env.run_process(gen)
            print(json.dumps({"ok": True, "attrs": attrs}))
        elif args.op == "rename":
            await env.run_process(client.rename(args.path, args.dest))
            print(json.dumps({"ok": True}))
        elif args.op == "ls":
            entries = await env.run_process(client.readdir(args.path))
            print(json.dumps({"ok": True,
                              "entries": [list(e) for e in entries]}))
        else:
            raise ValueError(args.op)
    except RpcFailure as failure:
        print(json.dumps({"ok": False, "code": failure.code,
                          "error": str(failure)}))
        return 1
    finally:
        await network.close()
    return 0


#: Minimum plan distance between the op that makes a file visible
#: (create, or rename installing the destination) and any op that
#: references it.  Ops run with bounded concurrency, so a reference this
#: far behind the head can never race the file's own creation.
_WORKLOAD_LAG = 32


def build_workload(seed, ops, dirs):
    """Seeded mkdir/create/stat/open/rename/ls mix.

    Shared with the DES-vs-asyncio parity test, which replays the same
    list under both environments.  Every path reference points at least
    :data:`_WORKLOAD_LAG` plan positions behind the referencing op, so a
    bench running up to that many ops concurrently sees no self-induced
    ENOENT races, and every op's outcome is deterministic.
    """
    rng = random.Random(seed)
    plan = [("mkdir", "/d{}".format(i), None) for i in range(dirs)]
    #: path -> plan index of its last mention (creation or reference);
    #: renamed-away paths are removed and never referenced again.
    files = {}
    serial = 0

    def eligible():
        horizon = len(plan) - _WORKLOAD_LAG
        return sorted(p for p, last in files.items() if last <= horizon)

    while len(plan) < ops:
        roll = rng.random()
        directory = "/d{}".format(rng.randrange(dirs))
        ready = eligible()
        if roll < 0.35 or not ready:
            path = "{}/f{}".format(directory, serial)
            serial += 1
            files[path] = len(plan)
            plan.append(("create", path, None))
        elif roll < 0.70:
            path = rng.choice(ready)
            files[path] = len(plan)
            plan.append(("stat", path, None))
        elif roll < 0.80:
            path = rng.choice(ready)
            files[path] = len(plan)
            plan.append(("open", path, None))
        elif roll < 0.90:
            # Rename sources must be past the lag window too: an earlier
            # in-flight stat of the same path would otherwise be overtaken
            # by the rename and see ENOENT.
            src = rng.choice(ready)
            del files[src]
            dst = "{}/r{}".format(directory, serial)
            serial += 1
            files[dst] = len(plan)
            plan.append(("rename", src, dst))
        else:
            plan.append(("ls", directory, None))
    return plan[:ops]


def plan_deps(plan):
    """Happens-before edges for running a workload plan concurrently.

    Returns one list of plan indices per op: the ops that must *complete*
    before this one may start.  A reference (stat/open/rename-source)
    depends on the op that made the path visible (create, or the rename
    that installed it); a rename additionally depends on every pending
    reader of its source, so it can never overtake an in-flight stat and
    turn it into a spurious ENOENT.  The plan's :data:`_WORKLOAD_LAG`
    spacing makes these edges almost always already satisfied — they only
    bite when one op (typically a rename, which serializes on the
    coordinator mutex and pays real fsyncs) runs much slower than the
    stream flowing past it.
    """
    producer = {}
    readers = {}
    deps = []
    for index, (op, path, dest) in enumerate(plan):
        edges = []
        if op in ("stat", "open"):
            if path in producer:
                edges.append(producer[path])
            readers.setdefault(path, []).append(index)
        elif op == "rename":
            if path in producer:
                edges.append(producer.pop(path))
            edges.extend(readers.pop(path, []))
            producer[dest] = index
            readers.pop(dest, None)
        elif op in ("create", "mkdir"):
            producer[path] = index
        deps.append(edges)
    return deps


def client_op(client, op, path, dest):
    if op == "mkdir":
        return client.mkdir(path)
    if op == "create":
        return client.create(path)
    if op == "stat":
        return client.getattr(path)
    if op == "open":
        return client.open_file(path)
    if op == "rename":
        return client.rename(path, dest)
    if op == "ls":
        return client.readdir(path)
    raise ValueError(op)


async def run_bench(args):
    env, network, client = await _make_client(
        args, "bench-{}".format(random.randrange(1 << 30)))
    plan = build_workload(args.seed, args.ops, args.dirs)
    deps = plan_deps(plan)
    done = [asyncio.Event() for _ in plan]
    gate = asyncio.Semaphore(args.concurrency)
    latencies = []
    outcomes = {"ok": 0, "failed": 0}

    async def run_one(index, op, path, dest):
        # Dependency edges first, concurrency slot second: waiting for a
        # producer shouldn't occupy a slot another op could use.
        for edge in deps[index]:
            await done[edge].wait()
        async with gate:
            start = env.now_us()
            try:
                await env.run_process(client_op(client, op, path, dest))
                outcomes["ok"] += 1
            except RpcFailure:
                outcomes["failed"] += 1
            latencies.append(env.now_us() - start)
        done[index].set()

    try:
        # Directories first and serially: the workload's files all land
        # under them, and racing a create against its parent's mkdir only
        # measures retry latency.
        for index, (op, path, dest) in enumerate(plan):
            if op == "mkdir":
                await run_one(index, op, path, dest)
        await asyncio.gather(*(
            run_one(index, op, path, dest)
            for index, (op, path, dest) in enumerate(plan)
            if op != "mkdir"))
    finally:
        await network.close()

    latencies.sort()

    def pct(q):
        if not latencies:
            return 0.0
        rank = min(len(latencies) - 1, int(round(q / 100.0 * (len(latencies) - 1))))
        return latencies[rank]

    summary = {
        "ops": len(plan),
        "acked": outcomes["ok"],
        "failed": outcomes["failed"],
        "lost": len(plan) - outcomes["ok"] - outcomes["failed"],
        "latency_us": {
            "mean": sum(latencies) / len(latencies) if latencies else 0.0,
            "p50": pct(50), "p95": pct(95), "p99": pct(99),
            "max": latencies[-1] if latencies else 0.0,
        },
    }
    print(json.dumps(summary), flush=True)
    return 0 if summary["lost"] == 0 and summary["failed"] == 0 else 1


# -- CLI ----------------------------------------------------------------


def _add_common(parser):
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--base-port", type=int, default=7700)
    parser.add_argument("--mnodes", type=int, default=3)
    parser.add_argument("--rpc-timeout-ms", type=float, default=2000.0)
    parser.add_argument("--op-deadline-ms", type=float, default=15000.0)


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro.serve",
        description="FalconFS metadata cluster on real sockets",
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    up = sub.add_parser("up", help="launch coordinator + N MNodes")
    _add_common(up)
    up.add_argument("--wal-dir", default=None,
                    help="directory for real WAL files (enables fsync)")

    node = sub.add_parser("node", help="run one server process")
    _add_common(node)
    node.add_argument("--role", choices=("coordinator", "mnode"),
                      required=True)
    node.add_argument("--index", type=int, default=0)
    node.add_argument("--wal-dir", default=None)

    client = sub.add_parser("client", help="one metadata operation")
    _add_common(client)
    client.add_argument("--mode", default="vfs",
                        choices=("vfs", "libfs", "nobypass"))
    client.add_argument("op",
                        choices=("mkdir", "create", "stat", "open",
                                 "rename", "ls"))
    client.add_argument("path")
    client.add_argument("dest", nargs="?", default=None)

    bench = sub.add_parser("bench", help="seeded workload + summary")
    _add_common(bench)
    bench.add_argument("--mode", default="vfs",
                       choices=("vfs", "libfs", "nobypass"))
    bench.add_argument("--ops", type=int, default=1000)
    bench.add_argument("--dirs", type=int, default=8)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--concurrency", type=int, default=16)

    return parser


def main(argv=None):
    args = build_parser().parse_args(argv)
    if args.cmd == "up":
        return run_up(args)
    if args.cmd == "node":
        return asyncio.run(run_node(args))
    if args.cmd == "client":
        return asyncio.run(run_client(args))
    if args.cmd == "bench":
        return asyncio.run(run_bench(args))
    raise AssertionError(args.cmd)
