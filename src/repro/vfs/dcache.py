"""Dentry/inode cache with LRU reclaim under a memory budget.

Each cached entry is charged :data:`~repro.vfs.attrs.DENTRY_CACHE_COST_BYTES`
(the 800 bytes §2.3 measures for a VFS dentry plus inode).  When the budget
is exceeded the least recently used unpinned entry is reclaimed — which,
under random traversal of a large tree, preferentially keeps near-root
directories and evicts the leaf-level entries that dominate accesses.
That dynamic is the source of the paper's Fig 2/13 request amplification.
"""

from collections import OrderedDict

from repro.vfs.attrs import DENTRY_CACHE_COST_BYTES


class CacheEntry:
    """One cached (parent, name) -> attrs binding."""

    __slots__ = ("parent_ino", "name", "attrs", "pinned")

    def __init__(self, parent_ino, name, attrs, pinned=False):
        self.parent_ino = parent_ino
        self.name = name
        self.attrs = attrs
        self.pinned = pinned

    @property
    def key(self):
        return (self.parent_ino, self.name)

    def __repr__(self):
        return "<CacheEntry ({}, {}) ino={}>".format(
            self.parent_ino, self.name, self.attrs.ino
        )


class DentryCache:
    """LRU dentry cache keyed by ``(parent_ino, name)``.

    ``budget_bytes=None`` means unlimited (the 100 % configuration of the
    paper's memory-budget sweeps).
    """

    def __init__(self, budget_bytes=None, entry_cost=DENTRY_CACHE_COST_BYTES):
        self.budget_bytes = budget_bytes
        self.entry_cost = entry_cost
        self._entries = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self):
        return len(self._entries)

    @property
    def bytes_used(self):
        return len(self._entries) * self.entry_cost

    def lookup(self, parent_ino, name):
        """Return the entry for (parent_ino, name), or None on a miss."""
        key = (parent_ino, name)
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def peek(self, parent_ino, name):
        """Like lookup but without touching LRU order or hit stats."""
        return self._entries.get((parent_ino, name))

    def insert(self, parent_ino, name, attrs, pinned=None, cold=False):
        """Insert or replace an entry; reclaims LRU entries if over budget.

        ``pinned=None`` (the default) preserves an existing entry's pin —
        a refresh of a pinned entry must not make it evictable; new
        entries default to unpinned.  Pass an explicit boolean to set the
        pin either way.

        ``cold`` inserts at the LRU end (evicted first) — used for
        accessed-once file entries so they do not displace the directory
        working set (midpoint/cold insertion, as database buffer pools
        do for scans).
        """
        key = (parent_ino, name)
        if pinned is None:
            existing = self._entries.get(key)
            pinned = existing.pinned if existing is not None else False
        entry = CacheEntry(parent_ino, name, attrs, pinned)
        self._entries[key] = entry
        self._entries.move_to_end(key, last=not cold)
        self._reclaim()
        return entry

    def invalidate(self, parent_ino, name):
        """Drop an entry if present; returns True when something was dropped."""
        dropped = self._entries.pop((parent_ino, name), None) is not None
        if dropped:
            self.invalidations += 1
        return dropped

    def clear(self):
        self._entries.clear()

    def entries(self):
        return list(self._entries.values())

    def _reclaim(self):
        if self.budget_bytes is None:
            return
        while self.bytes_used > self.budget_bytes and self._entries:
            evicted = False
            for key, entry in self._entries.items():
                if not entry.pinned:
                    del self._entries[key]
                    self.evictions += 1
                    evicted = True
                    break
            if not evicted:
                return

    @property
    def hit_rate(self):
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
