"""Inode attributes and VFS sizing constants."""

from dataclasses import dataclass

#: Inode number of the file system root directory.
ROOT_INO = 1

#: Reserved identity marking fake attributes returned by the FalconFS VFS
#: shortcut for intermediate path components (§5 of the paper).
FAKE_UID = 0xFA1C
FAKE_GID = 0xFA1C

#: Memory charged per cached directory entry on a client: 608 bytes for the
#: VFS inode plus 192 bytes for the dentry (§2.3 of the paper).
DENTRY_CACHE_COST_BYTES = 800


@dataclass
class InodeAttrs:
    """The attribute block a lookup returns (struct stat essentials)."""

    ino: int
    is_dir: bool = False
    mode: int = 0o755
    uid: int = 0
    gid: int = 0
    size: int = 0
    nlink: int = 1
    mtime: float = 0.0

    def copy(self):
        return InodeAttrs(
            ino=self.ino,
            is_dir=self.is_dir,
            mode=self.mode,
            uid=self.uid,
            gid=self.gid,
            size=self.size,
            nlink=self.nlink,
            mtime=self.mtime,
        )

    @property
    def is_fake(self):
        """True for the placeholder attributes of the VFS shortcut."""
        return self.uid == FAKE_UID and self.gid == FAKE_GID

    def allows_exec(self):
        """True if the directory can be traversed (any exec bit set)."""
        return bool(self.mode & 0o111)

    def allows_write(self):
        return bool(self.mode & 0o222)

    def allows_read(self):
        return bool(self.mode & 0o444)


def make_fake_dir_attrs(ino=0):
    """Fake intermediate-directory attributes: mode 0777, reserved ids."""
    return InodeAttrs(
        ino=ino, is_dir=True, mode=0o777, uid=FAKE_UID, gid=FAKE_GID
    )
