"""Client-side VFS model: dentry/inode cache, LRU reclaim, path walk.

This package models what the Linux VFS contributes to a DFS client: a
dentry cache probed per path component, an ``LOOKUP_PARENT``-flagged walk
that distinguishes intermediate components from the final one, and a
``d_revalidate`` hook consulted on cache hits.  Stateful clients (the
CephFS/Lustre/JuiceFS baselines and FalconFS-NoBypass) rely on the cache
for client-side path resolution; FalconFS's stateless client shortcuts it
exactly as §5 of the paper describes.
"""

from repro.vfs.attrs import (
    DENTRY_CACHE_COST_BYTES,
    FAKE_GID,
    FAKE_UID,
    InodeAttrs,
    ROOT_INO,
)
from repro.vfs.dcache import CacheEntry, DentryCache
from repro.vfs.pathwalk import (
    LOOKUP_PARENT,
    PathWalker,
    WalkResult,
    join_path,
    normalize_path,
    split_path,
)

__all__ = [
    "CacheEntry",
    "DENTRY_CACHE_COST_BYTES",
    "DentryCache",
    "FAKE_GID",
    "FAKE_UID",
    "InodeAttrs",
    "LOOKUP_PARENT",
    "PathWalker",
    "ROOT_INO",
    "WalkResult",
    "join_path",
    "normalize_path",
    "split_path",
]
