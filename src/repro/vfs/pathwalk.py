"""The VFS path-walk state machine.

:class:`PathWalker` resolves a path component by component through the
dentry cache, calling out to a pluggable *ops* object — the file system's
client module — on cache misses and cache hits alike, exactly as the VFS
calls ``lookup()`` and ``d_revalidate()``:

* ``ops.lookup(parent_attrs, name, flags, full_path, ctx=None)`` —
  generator; returns the component's :class:`~repro.vfs.attrs.InodeAttrs`.
  ``flags`` contains :data:`LOOKUP_PARENT` while the final component has
  not been reached (the Linux >= 5.7 semantics FalconFS's shortcut relies
  on).  ``ctx`` is the walking operation's
  :class:`~repro.obs.OpContext` (or ``None``), so lookup RPCs inherit
  the op's trace identity, deadline and retry budget.
* ``ops.revalidate(entry, flags, full_path, ctx=None)`` — generator;
  returns the (possibly refreshed) attrs for a cache hit, or ``None`` to
  force a miss.

Stateful clients use a trivial revalidate (trust the cache) and a remote
lookup; the FalconFS client returns fake attrs from ``lookup`` for
intermediate components and uses ``revalidate`` to avoid exposing them.
"""

from repro.net.rpc import RpcError, RpcFailure
from repro.obs import CAT_PHASE, NULL_CONTEXT
from repro.vfs.attrs import ROOT_INO, InodeAttrs

#: Flag set while the walk has not yet reached the final component.
LOOKUP_PARENT = 0x1


_split_cache = {}


def split_path(path):
    """Split a path into its components ('/' -> []), validating it.

    Results are memoized (every path is split at least twice: once by
    the client, once by the serving MNode) and returned as fresh lists,
    so callers may slice or mutate freely.  The cache grows with the
    set of distinct paths, which the simulated namespace bounds anyway.
    """
    cached = _split_cache.get(path)
    if cached is not None:
        return list(cached)
    if not path or path[0] != "/":
        raise ValueError("path must be absolute: {!r}".format(path))
    parts = [p for p in path.split("/") if p]
    if "." in parts or ".." in parts:
        raise ValueError("'.'/'..' components not supported: {!r}".format(path))
    _split_cache[path] = tuple(parts)
    return parts


def normalize_path(path):
    """Normalize to an absolute, no-trailing-slash, no-empty-component path."""
    return "/" + "/".join(split_path(path))


def join_path(directory, name):
    directory = normalize_path(directory)
    if directory == "/":
        return "/" + name
    return directory + "/" + name


def parent_path(path):
    """The parent directory of ``path`` ('/a/b' -> '/a', '/a' -> '/')."""
    parts = split_path(path)
    if not parts:
        raise ValueError("root has no parent")
    return "/" + "/".join(parts[:-1])


def basename(path):
    parts = split_path(path)
    if not parts:
        raise ValueError("root has no basename")
    return parts[-1]


class WalkResult:
    """Outcome of a path walk."""

    __slots__ = ("parent_attrs", "attrs", "name", "components_walked")

    def __init__(self, parent_attrs, attrs, name, components_walked):
        self.parent_attrs = parent_attrs
        self.attrs = attrs
        self.name = name
        self.components_walked = components_walked


class PathWalker:
    """Walks paths through a :class:`~repro.vfs.dcache.DentryCache`."""

    def __init__(self, env, costs, dcache, ops, root_attrs=None):
        self.env = env
        self.costs = costs
        self.dcache = dcache
        self.ops = ops
        self.root_attrs = root_attrs or InodeAttrs(
            ino=ROOT_INO, is_dir=True, mode=0o755
        )

    def walk(self, path, last_must_exist=True, ctx=None):
        """Generator resolving ``path``.

        Returns a :class:`WalkResult`.  When ``last_must_exist`` is False
        and only the final component is missing, ``attrs`` is None (the
        create-style walk).  Raises :class:`RpcFailure` with ``ENOENT`` /
        ``ENOTDIR`` / ``EACCES`` as appropriate.  ``ctx`` (an
        :class:`~repro.obs.OpContext`) scopes the whole walk under a
        ``walk`` span and flows into every lookup RPC.
        """
        ctx = ctx or NULL_CONTEXT
        components = split_path(path)
        if not components:
            return WalkResult(None, self.root_attrs, "/", 0)
        current = self.root_attrs
        walked = 0
        attrs = None
        with ctx.span("walk", CAT_PHASE,
                      attrs={"components": len(components)}
                      if ctx.traced else None):
            for index, name in enumerate(components):
                final = index == len(components) - 1
                flags = 0 if final else LOOKUP_PARENT
                if not current.is_dir:
                    raise RpcFailure(RpcError.ENOTDIR, path)
                if not current.allows_exec():
                    raise RpcFailure(RpcError.EACCES, path)
                if self.costs.cache_probe_us:
                    yield self.env.timeout(self.costs.cache_probe_us)
                attrs = None
                entry = self.dcache.lookup(current.ino, name)
                if entry is not None:
                    attrs = yield from self.ops.revalidate(
                        entry, flags, path, ctx=ctx
                    )
                if attrs is None:
                    try:
                        attrs = yield from self.ops.lookup(
                            current, name, flags, path, ctx=ctx
                        )
                    except RpcFailure as failure:
                        if (
                            failure.code == RpcError.ENOENT
                            and final
                            and not last_must_exist
                        ):
                            return WalkResult(current, None, name,
                                              walked + 1)
                        raise
                    if attrs is not None:
                        self.dcache.insert(current.ino, name, attrs)
                if attrs is None:
                    raise RpcFailure(RpcError.ENOENT, path)
                walked += 1
                current = attrs
        parents = components[:-1]
        parent_attrs = self.root_attrs if not parents else None
        return WalkResult(
            parent_attrs if parent_attrs is not None else self._parent_of(path),
            attrs,
            components[-1],
            walked,
        )

    def _parent_of(self, path):
        """Parent attrs from the cache (best effort; may be None)."""
        parts = split_path(path)
        current = self.root_attrs
        for name in parts[:-1]:
            entry = self.dcache.peek(current.ino, name)
            if entry is None:
                return None
            current = entry.attrs
        return current
