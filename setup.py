from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "FalconFS reproduction: a DL-pipeline-optimized distributed file "
        "system on a discrete-event simulated cluster"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
