"""Schedule-driven nemesis determinism.

The shrinker's drop-and-replay discipline is only sound if every random
choice is pinned inside the event itself: victims at generation time,
fire-time draws via a per-event ``rng_seed``.  These tests pin the
regression the checker work fixed — a fire-time draw from the shared
injector stream made one event's outcome depend on how many other
events fired first — plus the :class:`FaultHandle` cancel semantics the
runner's heal path relies on.
"""

import pytest

from repro.core import FalconCluster, FalconConfig
from repro.faults import FaultInjector


def _loaded_cluster(seed=5):
    """A small replicated cluster with durable WAL records on every
    MNode (so corruption draws have a log to aim at)."""
    cluster = FalconCluster(FalconConfig(
        num_mnodes=2, num_storage=1, replication=True, seed=seed,
    ))
    client = cluster.add_client(mode="libfs")
    cluster.run_process(client.mkdir("/d0"))
    for i in range(8):
        cluster.run_process(client.create("/d0/f{}.dat".format(i)))
    cluster.run_for(3000.0)  # drain WAL shipping
    return cluster


def _corrupt_lsns(events):
    """(index, lsn) pairs logged by fired corrupt_wal events."""
    return [(e["index"], e["lsn"]) for e in events
            if e["kind"] == "corrupt_wal"]


def _apply_and_run(events, seed=5):
    cluster = _loaded_cluster(seed)
    injector = FaultInjector(cluster)
    handles = [injector.apply(dict(event)) for event in events]
    cluster.run_for(20000.0)
    return cluster, injector, handles


def _corrupt_at(at_us, index=0, rng_seed=0x5EED):
    return {"kind": "corrupt_wal", "at_us": at_us, "index": index,
            "rng_seed": rng_seed}


class TestPerEventRng:
    def test_corrupt_draw_is_independent_of_other_events(self):
        """The same event (same rng_seed) picks the same LSN whether it
        fires alone or after other injector events — the draw must come
        from the event's own seed, never the shared stream."""
        target = _corrupt_at(6000.0)
        _, alone, _ = _apply_and_run([target])
        _, crowded, _ = _apply_and_run([
            _corrupt_at(4000.0, index=1, rng_seed=0xABCDEF),
            {"kind": "hang", "at_us": 4500.0, "index": 1,
             "duration_us": 400.0},
            target,
        ])
        lsn_alone = _corrupt_lsns(alone.events)
        lsn_crowded = [(i, lsn) for i, lsn in _corrupt_lsns(crowded.events)
                       if i == 0]
        assert lsn_alone == lsn_crowded
        assert lsn_alone  # the event actually fired and hit a record

    def test_same_schedule_same_trace(self):
        """Two fresh clusters under the identical event list log the
        identical nemesis trace, timestamps included."""
        events = [
            _corrupt_at(5000.0),
            {"kind": "crash", "at_us": 5200.0, "index": 0},
            {"kind": "restart", "at_us": 12000.0, "index": 0},
            {"kind": "hang", "at_us": 16000.0, "index": 1,
             "duration_us": 600.0},
        ]
        _, first, _ = _apply_and_run(events)
        _, second, _ = _apply_and_run(events)
        assert first.events == second.events


class TestFaultHandle:
    def test_cancel_before_fire_suppresses_the_event(self):
        events = [{"kind": "crash", "at_us": 9000.0, "index": 0}]
        cluster = _loaded_cluster()
        injector = FaultInjector(cluster)
        handle = injector.apply(dict(events[0]))
        cluster.run_for(2000.0)
        handle.cancel()
        cluster.run_for(20000.0)
        assert not handle.fired
        assert handle.cancelled
        assert injector.events == []
        assert not cluster.mnodes[0].halted

    def test_cancel_after_fire_is_a_noop(self):
        cluster = _loaded_cluster()
        injector = FaultInjector(cluster)
        handle = injector.apply({"kind": "hang", "at_us": 4000.0,
                                 "index": 1, "duration_us": 300.0})
        cluster.run_for(20000.0)
        assert handle.fired
        handle.cancel()
        assert not handle.cancelled
        kinds = [e["kind"] for e in injector.events]
        assert kinds == ["hang", "unhang"]

    def test_duplicate_crash_is_a_logged_noop(self):
        """Applying a crash to an already-crashed slot must not blow up
        (shrunken schedules can produce this shape)."""
        cluster = _loaded_cluster()
        injector = FaultInjector(cluster)
        injector.apply({"kind": "crash", "at_us": 4000.0, "index": 0})
        injector.apply({"kind": "crash", "at_us": 4100.0, "index": 0})
        cluster.run_for(10000.0)
        kinds = [e["kind"] for e in injector.events]
        assert kinds == ["crash", "crash_noop"]

    def test_unknown_kind_rejected(self):
        cluster = _loaded_cluster()
        injector = FaultInjector(cluster)
        with pytest.raises(ValueError):
            injector.apply({"kind": "meteor", "at_us": 1.0, "index": 0})
