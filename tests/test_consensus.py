"""Tests for the quorum-replicated metadata tier (consensus groups).

Each directory slot runs a three-member group — leader MNode, one
data-holding follower, one vote-only witness — with quorum commit,
leader leases and election-based recovery.  The deterministic scenarios
here pin the safety properties the checker's tightened oracle asserts
statistically: most importantly, a minority-partitioned leader must
never acknowledge a write.
"""

import pytest

from repro.core import FalconCluster, FalconConfig
from repro.net.rpc import RpcError, RpcFailure
from repro.obs import RETRYABLE
from repro.storage.consensus import ConsensusFollower, ReplicatedLog


def _consensus_cluster(**overrides):
    kwargs = dict(num_mnodes=3, num_storage=2, replication=True,
                  consensus=True, rpc_timeout_us=400.0,
                  op_deadline_us=30000.0, retry_jitter=0.25,
                  ship_retry_us=1200.0, seed=0)
    kwargs.update(overrides)
    return FalconCluster(FalconConfig(**kwargs))


def _mkdir(cluster, path):
    client = cluster.add_client(mode="libfs", name="setup-" + path[1:])
    return cluster.run_process(client.mkdir(path))


def _name_owned_by(cluster, parent_ino, slot, prefix):
    """A filename under ``parent_ino`` that hashes to MNode ``slot``."""
    for i in range(500):
        name = "{}{}.dat".format(prefix, i)
        if cluster.coordinator.index.locate(parent_ino, name) == slot:
            return name
    raise RuntimeError("no name found for slot {}".format(slot))


def _attempt(cluster, op):
    """Run a client op generator; capture ack-or-error instead of
    raising."""
    outcome = {}

    def runner():
        try:
            yield from op
        except RpcFailure as failure:
            outcome["error"] = RpcError.name(failure.code)
        else:
            outcome["ok"] = True

    cluster.env.process(runner())
    return outcome


def _all_but(cluster, keep):
    """Every node name in the cluster except ``keep``."""
    names = ([m.name for m in cluster.mnodes]
             + [s.name for s in cluster.standbys if s is not None]
             + [w.name for w in cluster.witnesses]
             + [cluster.coordinator.name]
             + [s.name for s in cluster.storage])
    return [n for n in names if n not in keep]


class TestWiring:
    def test_groups_are_built_per_slot(self):
        cluster = _consensus_cluster()
        assert len(cluster.witnesses) == len(cluster.mnodes)
        for i, mnode in enumerate(cluster.mnodes):
            assert isinstance(mnode.shipper, ReplicatedLog)
            assert isinstance(cluster.standbys[i], ConsensusFollower)
            assert cluster.coordinator.consensus_registry[i] == {
                "term": 1, "leader": mnode.name,
            }

    def test_error_taxonomy(self):
        assert RpcError.name(RpcError.ENOTLEADER) == "ENOTLEADER"
        assert RpcError.name(RpcError.ESTALE_TERM) == "ESTALE_TERM"
        assert RpcError.ENOTLEADER in RETRYABLE
        assert RpcError.ESTALE_TERM in RETRYABLE

    def test_quorum_commit_reaches_members(self):
        cluster = _consensus_cluster()
        ino = _mkdir(cluster, "/d")
        client = cluster.add_client(mode="libfs")
        name = _name_owned_by(cluster, ino, 0, "q")
        cluster.run_process(client.create("/d/" + name))
        cluster.run_for(5000.0)
        log = cluster.mnodes[0].shipper
        assert log.commit_lsn >= 1
        assert log.acked_lsn >= 1
        # The witness holds positions for everything committed.
        assert cluster.witnesses[0]._last_lsn() >= log.commit_lsn


class TestFencing:
    def test_stale_term_ack_deposes_the_leader(self):
        """An ack stamped with a higher term proves a successor exists:
        the log fences permanently — no serving, no appending."""
        cluster = _consensus_cluster()
        log = cluster.mnodes[0].shipper
        log.on_ack({"term": log.term + 1, "ok": False, "stale": True,
                    "match_lsn": 0, "echo": None,
                    "member": log.witness_name})
        assert log.deposed
        assert not log.leading(cluster.env.now)
        assert log.append([("inode", (1, "x"), None)]) is None

    def test_minority_partitioned_leader_never_acks(self):
        """The acceptance scenario: a client co-partitioned with the old
        leader must never see a write acknowledged — the leader cannot
        reach quorum, its lease lapses, and the majority side elects a
        successor that never held the write."""
        cluster = _consensus_cluster()
        env = cluster.env
        ino = _mkdir(cluster, "/d")
        client = cluster.add_client(mode="libfs")
        slot = 0
        warm = _name_owned_by(cluster, ino, slot, "w")
        cluster.run_process(client.create("/d/" + warm))
        cluster.start_failure_detection()
        cluster.start_consensus()

        leader = cluster.mnodes[slot]
        minority = [leader.name, client.name]
        cluster.network.partition(minority, _all_but(cluster, minority))
        # The election installs the successor under a fresh incarnation
        # name; blocking it up front keeps the client in the minority
        # (partitions are name pairs, and the promotion name sequence
        # is deterministic).
        cluster.network.partition(minority, [leader.name + "-p1"])

        victim = "/d/" + _name_owned_by(cluster, ino, slot, "m")
        outcome = _attempt(cluster, client.create(victim))
        cluster.run_for(40000.0)  # past the op deadline and election
        assert "ok" not in outcome, outcome
        # The deposed leader holds the write as an uncommitted suffix:
        # appended locally, never quorum-committed, never acked.
        assert leader.shipper.quorum_failures > 0
        assert leader.shipper.commit_lsn < leader.shipper.last_lsn

        elected = [r for r in cluster.coordinator.failover_log
                   if r.get("elected")]
        assert elected and elected[0]["index"] == slot
        assert cluster.mnodes[slot].name != leader.name

        cluster.heal()
        cluster.run_for(20000.0)
        # The unacked write died with the deposed leader's term.
        probe = _attempt(cluster, client.getattr(victim))
        cluster.run_for(10000.0)
        assert probe.get("error") == "ENOENT", probe
        # ... while the quorum-acked warm-up write survived.
        survivor = _attempt(cluster, client.getattr("/d/" + warm))
        cluster.run_for(10000.0)
        assert survivor.get("ok"), survivor
        assert env.now > 0

    def test_deaf_leader_fences_instead_of_acking(self):
        """Inbound asymmetric partition: members still hear the leader
        (so nobody times out into an election) but their acks are lost.
        The lease lapses and writes fail rather than ack without
        quorum."""
        cluster = _consensus_cluster()
        ino = _mkdir(cluster, "/d")
        client = cluster.add_client(mode="libfs")
        slot = 0
        cluster.run_process(
            client.create("/d/" + _name_owned_by(cluster, ino, slot, "w")))
        cluster.start_failure_detection()
        cluster.start_consensus()

        leader = cluster.mnodes[slot]
        members = [cluster.standbys[slot].name,
                   cluster.witnesses[slot].name]
        cluster.network.partition_directed(members, [leader.name])

        victim = "/d/" + _name_owned_by(cluster, ino, slot, "x")
        outcome = _attempt(cluster, client.create(victim))
        cluster.run_for(40000.0)
        assert "ok" not in outcome, outcome
        assert leader.shipper.quorum_failures > 0
        # Appends kept flowing, so the follower never stood for election.
        assert not any(r.get("elected")
                       for r in cluster.coordinator.failover_log)
        assert cluster.mnodes[slot] is leader

        cluster.heal()
        cluster.run_for(20000.0)
        diffs = cluster.replication_divergence()
        assert not diffs[cluster.mnodes[slot].name]


class TestElection:
    def test_split_brain_leader_keeps_quorum_through_witness(self):
        """Leader and witness on one side: 2-of-3, so the leader keeps
        serving — and the isolated follower (witness unreachable) can
        never be elected."""
        cluster = _consensus_cluster()
        ino = _mkdir(cluster, "/d")
        client = cluster.add_client(mode="libfs")
        slot = 0
        cluster.run_process(
            client.create("/d/" + _name_owned_by(cluster, ino, slot, "w")))
        cluster.start_failure_detection()
        cluster.start_consensus()

        leader = cluster.mnodes[slot]
        side = [leader.name, cluster.witnesses[slot].name, client.name]
        cluster.network.partition(side, _all_but(cluster, side))

        path = "/d/" + _name_owned_by(cluster, ino, slot, "s")
        outcome = _attempt(cluster, client.create(path))
        cluster.run_for(15000.0)
        assert outcome.get("ok"), outcome
        assert not any(r.get("elected")
                       for r in cluster.coordinator.failover_log)
        assert cluster.standbys[slot].elections_won == 0
        assert cluster.mnodes[slot] is leader

        cluster.heal()
        cluster.run_for(20000.0)
        diffs = cluster.replication_divergence()
        assert not diffs[cluster.mnodes[slot].name]

    def test_leader_crash_elects_follower_and_machine_rejoins(self):
        cluster = _consensus_cluster()
        ino = _mkdir(cluster, "/d")
        client = cluster.add_client(mode="libfs")
        slot = 0
        cluster.run_process(
            client.create("/d/" + _name_owned_by(cluster, ino, slot, "w")))
        cluster.start_failure_detection()
        cluster.start_consensus()

        old_name = cluster.mnodes[slot].name
        cluster.crash_mnode(slot)
        cluster.run_for(20000.0)

        elected = [r for r in cluster.coordinator.failover_log
                   if r.get("elected")]
        assert elected and elected[0]["index"] == slot
        assert elected[0]["failed"] == old_name
        assert cluster.coordinator.consensus_registry[slot]["term"] > 1
        # The new leader serves quorum-committed writes.
        outcome = _attempt(
            cluster,
            client.create("/d/" + _name_owned_by(cluster, ino, slot, "n")))
        cluster.run_for(10000.0)
        assert outcome.get("ok"), outcome

        # The crashed machine restarts into the follower role.
        cluster.run_process(cluster.restart_mnode(slot))
        cluster.run_for(5000.0)
        follower = cluster.standbys[slot]
        assert follower is not None and follower.name == old_name

        cluster.heal()
        cluster.run_for(20000.0)
        diffs = cluster.replication_divergence()
        assert not diffs[cluster.mnodes[slot].name]
