"""Elastic slot map: epoch-fence properties under fuzzing.

Two layers pin the handoff-safety story down:

* **model fuzz** — :class:`~repro.core.shared.SlotMap` against a plain
  dict model under random ``assign``/``patch``/``copy``/``update_from``
  interleavings: per-slot versions decide patches, the global epoch is
  the max version, and copies never alias;
* **fence fuzz** — a live cluster under random migrate / lookup /
  crash-restart interleavings: once a slot's handoff commits at epoch
  N+1, the pre-migration owner must bounce every request for that slot
  (``EMOVED`` naming the destination) and never acknowledge — including
  after the old owner crash-restarts (the durable fence marker), so a
  client still holding epoch N can never extract an ack from it.
"""

import random

import pytest

from repro.core import FalconCluster, FalconConfig
from repro.core.shared import SlotMap
from repro.net.rpc import RpcError, RpcFailure

# ----------------------------------------------------------------------
# model fuzz: SlotMap semantics
# ----------------------------------------------------------------------


def test_patch_accepts_independent_slots_out_of_order():
    """Regression: a client that absorbed a high-epoch hint about one
    slot must still accept an older hint about a different slot it has
    never heard about — per-slot versions, not one global gate."""
    client = SlotMap(range(4))
    assert client.patch(0, 3, 5)      # slot 0 moved at epoch 5
    assert client.patch(1, 2, 3)      # slot 1 moved (earlier) at epoch 3
    assert client.node_of(0) == 3
    assert client.node_of(1) == 2
    assert client.epoch == 5
    # But a stale hint about an already-patched slot stays rejected.
    assert not client.patch(0, 1, 4)
    assert client.node_of(0) == 3


def test_assign_bumps_epoch_and_version():
    m = SlotMap(range(3))
    assert m.assign(2, 0) == 1
    assert m.version_of(2) == 1
    assert m.version_of(0) == 0
    assert m.assign(2, 1) == 2
    assert m.node_of(2) == 1


@pytest.mark.parametrize("seed", range(10))
def test_slot_map_model_fuzz(seed):
    """Authoritative map + a fleet of stale client copies, driven by
    random assigns and hint replays (in random order, duplicated and
    delayed): every client copy must converge to the authoritative
    assignment once it has seen every slot's latest hint."""
    rng = random.Random(seed)
    num_slots, num_nodes = 8, 4
    auth = SlotMap(i % num_nodes for i in range(num_slots))
    clients = [auth.copy() for _ in range(3)]
    hints = []  # every (slot, node, epoch) the authority ever advertised

    for _ in range(60):
        action = rng.random()
        if action < 0.45:
            slot = rng.randrange(num_slots)
            node = rng.randrange(num_nodes)
            epoch = auth.assign(slot, node)
            assert epoch == auth.version_of(slot)
            hints.append((slot, node, epoch))
        elif action < 0.85 and hints:
            # Replay a random (possibly stale, possibly duplicate) hint
            # at a random client.
            client = rng.choice(clients)
            slot, node, epoch = rng.choice(hints)
            before = client.version_of(slot)
            applied = client.patch(slot, node, epoch)
            assert applied == (epoch > before)
            if applied:
                assert client.node_of(slot) == node
        elif hints:
            # A full map push supersedes piecemeal patches.
            client = rng.choice(clients)
            client.update_from(auth)
            assert client.owners == auth.owners

        # Invariants that hold at every step.
        assert auth.epoch == max([0] + auth.versions)
        for client in clients:
            assert client.epoch <= auth.epoch
            for slot in range(num_slots):
                # A client can never believe something the authority
                # never advertised at that version.
                v = client.version_of(slot)
                if v > 0:
                    assert (slot, client.node_of(slot), v) in hints

    # Deliver every slot's latest hint: all copies must converge.
    latest = {}
    for slot, node, epoch in hints:
        if epoch > latest.get(slot, (None, 0))[1]:
            latest[slot] = (node, epoch)
    for client in clients:
        for slot, (node, epoch) in latest.items():
            client.patch(slot, node, epoch)
        assert client.owners == auth.owners


def test_wire_round_trip_preserves_versions():
    m = SlotMap(range(4))
    m.assign(1, 3)
    m.assign(2, 0)
    back = SlotMap.from_wire(m.to_wire())
    assert back.owners == m.owners
    assert back.epoch == m.epoch
    assert back.versions == m.versions


def test_copy_does_not_alias():
    m = SlotMap(range(3))
    c = m.copy()
    m.assign(0, 2)
    assert c.node_of(0) == 0
    assert c.version_of(0) == 0


# ----------------------------------------------------------------------
# fence fuzz: pre-migration owners never ack after the epoch installs
# ----------------------------------------------------------------------


def _key_in_slot(index, pid, slot):
    """An inode key under directory ``pid`` that hashes to ``slot``."""
    for j in range(4096):
        name = "probe{}.dat".format(j)
        if index.locate(pid, name) == slot:
            return (pid, name)
    raise AssertionError("no probe name found for slot {}".format(slot))


def _assert_bounced(mnode, key, expect_node, expect_epoch):
    """The fence property: the pre-migration owner must refuse ``key``
    with EMOVED naming the destination and the installed epoch."""
    with pytest.raises(RpcFailure) as exc:
        mnode._check_hosted(key)
    assert exc.value.code == RpcError.EMOVED
    detail = exc.value.detail
    assert detail["node"] == expect_node
    assert detail["epoch"] >= expect_epoch


@pytest.mark.parametrize("seed", range(6))
def test_pre_migration_owner_never_acks_after_epoch_installs(seed):
    """Fuzz migrate / lookup / crash interleavings on a live cluster.

    After every committed handoff of slot ``s`` (src -> dst at epoch
    ``e``), probing the old owner's hosted-check for a key in ``s``
    must raise EMOVED — the gate every ack passes through — and keep
    doing so across a crash-restart of the old owner, unless a later
    migration handed the slot back (version supersedes)."""
    rng = random.Random(seed)
    # rpc_timeout + op_deadline are the faulted-run contract (a call to
    # a crashed peer must fail, not wedge an op holding a slot writer
    # the fence would wait on forever).
    config = FalconConfig(num_mnodes=3, num_storage=2, replication=True,
                          rpc_timeout_us=400.0, op_deadline_us=30000.0,
                          num_slots=9, seed=seed)
    cluster = FalconCluster(config)
    env = cluster.env
    coordinator = cluster.coordinator
    fs = cluster.fs()
    dir_inos = {}
    for d in range(3):
        dir_inos["/d{}".format(d)] = fs.mkdir("/d{}".format(d))
    cluster.run_for(4000.0)

    client = cluster.add_client(mode="libfs")
    stop = {"flag": False}

    def traffic():
        i = 0
        while not stop["flag"]:
            path = "/d{}/t{}.dat".format(i % 3, i)
            try:
                yield from client.create(path, exclusive=False)
            except RpcFailure:
                pass
            i += 1
            yield env.timeout(120.0)

    env.process(traffic())

    committed = {}  # slot -> (old owner index, dest index, epoch)
    down = set()

    for _ in range(12):
        roll = rng.random()
        if roll < 0.55:
            # Migrate a random slot to a random destination.
            slot = rng.randrange(config.num_slots or 9)
            dest = rng.randrange(3)
            src = cluster.shared.slot_map.node_of(slot)
            if src == dest or src in down or dest in down:
                continue
            record = cluster.run_process(
                coordinator.migrate_slot(slot, dest, reason="fuzz"))
            if record is not None and record["status"] == "committed":
                committed[slot] = (src, dest, record["epoch"])
        elif roll < 0.75 and not down:
            index = rng.randrange(3)
            cluster.crash_mnode(index)
            down.add(index)
            cluster.run_for(rng.uniform(300.0, 900.0))
            cluster.run_process(cluster.restart_mnode(index))
            down.discard(index)
            cluster.run_for(1500.0)
        else:
            cluster.run_for(rng.uniform(500.0, 1500.0))

        # The fence property, after every step.
        slot_map = cluster.shared.slot_map
        index = coordinator.index
        pid = dir_inos["/d0"]
        for slot, (src, dest, epoch) in committed.items():
            if slot_map.node_of(slot) == src or src in down:
                continue  # handed back later / currently crashed
            key = _key_in_slot(index, pid, slot)
            _assert_bounced(cluster.mnodes[src], key,
                            slot_map.node_of(slot),
                            slot_map.version_of(slot))

    stop["flag"] = True
    cluster.run_for(3000.0)
    cluster.verify()
