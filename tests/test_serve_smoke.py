"""Real-runtime smoke: boot ``repro.serve`` processes, drive real ops.

Launches a coordinator plus three MNode processes on loopback TCP, runs
the seeded bench workload through the CLI entry point, scrapes the
Prometheus endpoints, and asserts the serving mode's contract: every op
is either acked or failed (zero lost), no failures on a fresh namespace,
and wall-clock latency within a loose sanity bound.

Locally this runs a few hundred ops (~10 s); CI sets
``FALCON_SMOKE_OPS=1000`` for the full workload.
"""

import http.client
import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import time

import pytest

REPO = pathlib.Path(__file__).resolve().parent.parent
OPS = int(os.environ.get("FALCON_SMOKE_OPS", "200"))
MNODES = 3


def _ports_free(base):
    # RPC ports base..base+MNODES plus metrics ports at +1000.
    wanted = [base + i for i in range(MNODES + 1)]
    wanted += [p + 1000 for p in wanted]
    for port in wanted:
        with socket.socket() as probe:
            try:
                probe.bind(("127.0.0.1", port))
            except OSError:
                return False
    return True


def _pick_base_port():
    rng = int.from_bytes(os.urandom(2), "big")
    for attempt in range(20):
        base = 20000 + (rng + attempt * 137) % 20000
        if _ports_free(base):
            return base
    pytest.skip("no free port range on loopback")


def _wait_port(port, timeout_s=30.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        try:
            with socket.create_connection(("127.0.0.1", port), timeout=1.0):
                return True
        except OSError:
            time.sleep(0.05)
    return False


def _scrape(port):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=10)
    try:
        conn.request("GET", "/metrics")
        response = conn.getresponse()
        assert response.status == 200
        assert "text/plain" in response.getheader("Content-Type", "")
        return response.read().decode("utf-8")
    finally:
        conn.close()


def _serve(*argv):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO / "src")
    return subprocess.Popen(
        [sys.executable, "-m", "repro.serve", *argv],
        cwd=str(REPO), env=env,
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)


@pytest.fixture(scope="module")
def cluster():
    base = _pick_base_port()
    up = _serve("up", "--mnodes", str(MNODES), "--base-port", str(base))
    try:
        for i in range(MNODES + 1):
            assert _wait_port(base + i), (
                "server on port {} never came up".format(base + i))
        yield base
    finally:
        up.send_signal(signal.SIGINT)
        try:
            up.wait(timeout=20)
        except subprocess.TimeoutExpired:
            up.kill()
            up.wait(timeout=10)


def test_cli_roundtrip(cluster):
    base = cluster

    def cli(*argv):
        proc = _serve("client", "--base-port", str(base),
                      "--mnodes", str(MNODES), *argv)
        out, _ = proc.communicate(timeout=60)
        payload = json.loads(out.strip().splitlines()[-1])
        return proc.returncode, payload

    code, res = cli("mkdir", "/smoke")
    assert code == 0 and res["ok"], res
    code, res = cli("create", "/smoke/a")
    assert code == 0 and res["ok"], res
    code, res = cli("stat", "/smoke/a")
    assert code == 0 and res["attrs"]["is_dir"] is False, res
    code, res = cli("rename", "/smoke/a", "/smoke/b")
    assert code == 0 and res["ok"], res
    code, res = cli("ls", "/smoke")
    assert code == 0 and [e[0] for e in res["entries"]] == ["b"], res
    # ENOENT surfaces as a non-zero exit and an error payload.
    code, res = cli("stat", "/smoke/a")
    assert code == 1 and res["ok"] is False and res["code"] == 2, res


def test_bench_zero_lost_acks(cluster):
    base = cluster
    proc = _serve("bench", "--base-port", str(base),
                  "--mnodes", str(MNODES),
                  "--ops", str(OPS), "--seed", "3")
    out, _ = proc.communicate(timeout=600)
    summary = json.loads(out.strip().splitlines()[-1])
    assert proc.returncode == 0, summary
    assert summary["ops"] == OPS
    assert summary["lost"] == 0, summary
    assert summary["failed"] == 0, summary
    assert summary["acked"] == OPS, summary
    # Loose sanity bound: local loopback metadata ops are fast; anything
    # near the 15 s op deadline means retry storms or lost replies.
    assert summary["latency_us"]["p50"] < 1_000_000, summary
    assert summary["latency_us"]["max"] < 14_000_000, summary


def test_prometheus_scrape(cluster):
    base = cluster
    coordinator = _scrape(base + 1000)
    assert "falconfs_" in coordinator
    mnode = _scrape(base + 1 + 1000)
    # The bench ran creates and stats: the MNode must have counted RPCs.
    assert "falconfs_" in mnode
    samples = [line for line in mnode.splitlines()
               if line and not line.startswith("#")]
    assert samples, mnode[:400]
    for line in samples:
        name = line.split("{")[0].split(" ")[0]
        assert name.startswith("falconfs_"), line
