"""Unit tests for simulation resources (Resource, Store) and RNG streams."""

import pytest

from repro.sim import Environment, RandomStreams, Resource, SimulationError, Store


@pytest.fixture
def env():
    return Environment()


class TestResource:
    def test_capacity_validation(self, env):
        with pytest.raises(SimulationError):
            Resource(env, capacity=0)

    def test_immediate_grant_under_capacity(self, env):
        res = Resource(env, capacity=2)
        assert res.request().triggered
        assert res.request().triggered
        assert res.count == 2

    def test_queueing_over_capacity(self, env):
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert first.triggered and not second.triggered
        assert res.queue_length == 1
        res.release(first)
        assert second.triggered
        assert res.queue_length == 0

    def test_fifo_granting(self, env):
        res = Resource(env, capacity=1)
        order = []

        def user(tag, hold):
            req = res.request()
            yield req
            order.append(tag)
            yield env.timeout(hold)
            res.release(req)

        for tag in ("a", "b", "c"):
            env.process(user(tag, 3.0))
        env.run()
        assert order == ["a", "b", "c"]

    def test_release_unheld_rejected(self, env):
        res = Resource(env)
        req = res.request()
        res.release(req)
        with pytest.raises(SimulationError):
            res.release(req)

    def test_release_queued_request_cancels(self, env):
        res = Resource(env, capacity=1)
        held = res.request()
        queued = res.request()
        res.release(queued)
        assert res.queue_length == 0
        res.release(held)
        assert res.count == 0

    def test_release_skips_triggered_waiter(self, env):
        # A queued Request failed out-of-band (timeout/interrupt) must be
        # skipped when capacity frees up: succeeding it again would raise
        # "event already triggered" and crash the grant loop.
        res = Resource(env, capacity=1)
        held = res.request()
        dead = res.request()
        live = res.request()
        dead.fail(RuntimeError("cancelled"))
        dead.defused = True
        res.release(held)
        assert live.triggered and res.count == 1
        assert res.queue_length == 0
        env.run()

    def test_use_context_manager_releases(self, env):
        res = Resource(env, capacity=1)

        def user():
            with res.use() as req:
                yield req
                yield env.timeout(1.0)
            return res.count

        assert env.run(until=env.process(user())) == 0

    def test_use_releases_on_exception(self, env):
        res = Resource(env, capacity=1)

        def user():
            try:
                with res.use() as req:
                    yield req
                    raise ValueError("inside")
            except ValueError:
                return res.count

        assert env.run(until=env.process(user())) == 0

    def test_parallel_capacity_two(self, env):
        res = Resource(env, capacity=2)
        finish = []

        def user(tag):
            req = res.request()
            yield req
            yield env.timeout(10.0)
            res.release(req)
            finish.append((tag, env.now))

        for tag in range(4):
            env.process(user(tag))
        env.run()
        assert [t for _, t in finish] == [10.0, 10.0, 20.0, 20.0]


class TestStore:
    def test_put_then_get(self, env):
        store = Store(env)
        store.put("x")
        event = store.get()
        assert event.triggered and event.value == "x"

    def test_get_before_put_blocks(self, env):
        store = Store(env)

        def consumer():
            item = yield store.get()
            return (item, env.now)

        def producer():
            yield env.timeout(4.0)
            store.put("late")

        proc = env.process(consumer())
        env.process(producer())
        assert env.run(until=proc) == ("late", 4.0)

    def test_fifo_item_order(self, env):
        store = Store(env)
        for item in (1, 2, 3):
            store.put(item)
        got = [store.get().value for _ in range(3)]
        assert got == [1, 2, 3]

    def test_fifo_getter_order(self, env):
        store = Store(env)
        results = []

        def consumer(tag):
            item = yield store.get()
            results.append((tag, item))

        env.process(consumer("a"))
        env.process(consumer("b"))

        def producer():
            yield env.timeout(1.0)
            store.put(1)
            store.put(2)

        env.process(producer())
        env.run()
        assert results == [("a", 1), ("b", 2)]

    def test_len_and_drain(self, env):
        store = Store(env)
        for item in range(5):
            store.put(item)
        assert len(store) == 5
        assert store.drain() == [0, 1, 2, 3, 4]
        assert len(store) == 0

    def test_get_nowait(self, env):
        store = Store(env)
        assert store.get_nowait() is None
        store.put("a")
        assert store.get_nowait() == "a"

    def test_cancelled_getter_skipped(self, env):
        store = Store(env)
        first = store.get()
        second = store.get()
        # Fail the first getter out-of-band (e.g. an interrupt path).
        first.fail(RuntimeError("cancelled"))
        first.defused = True
        store.put("item")
        assert second.triggered and second.value == "item"
        env.run()

    def test_cancelled_getters_compacted_without_put(self, env):
        # An idle store must not pin dead getter events until some future
        # put walks past them: the next get() compacts triggered entries.
        store = Store(env)
        dead = [store.get() for _ in range(4)]
        for event in dead:
            event.fail(RuntimeError("cancelled"))
            event.defused = True
        live = store.get()
        assert len(store._getters) == 1
        assert store._getters[0] is live
        store.put("item")
        assert live.triggered and live.value == "item"
        env.run()


class TestRandomStreams:
    def test_same_name_same_stream_object(self):
        streams = RandomStreams(seed=7)
        assert streams.stream("a") is streams.stream("a")

    def test_deterministic_across_instances(self):
        first = RandomStreams(seed=7).stream("workload")
        second = RandomStreams(seed=7).stream("workload")
        assert [first.random() for _ in range(5)] == [
            second.random() for _ in range(5)
        ]

    def test_different_names_differ(self):
        streams = RandomStreams(seed=7)
        a = [streams.stream("a").random() for _ in range(5)]
        b = [streams.stream("b").random() for _ in range(5)]
        assert a != b

    def test_different_seeds_differ(self):
        a = RandomStreams(seed=1).stream("x").random()
        b = RandomStreams(seed=2).stream("x").random()
        assert a != b

    def test_stream_isolation(self):
        """Draws on one stream never perturb another."""
        streams = RandomStreams(seed=3)
        reference = RandomStreams(seed=3)
        streams.stream("noise").random()
        streams.stream("noise").random()
        assert (streams.stream("signal").random()
                == reference.stream("signal").random())

    def test_callable_shorthand(self):
        streams = RandomStreams(seed=0)
        assert streams("x") is streams.stream("x")
