"""Focused tests on experiment-module internals and helpers."""

import random

import pytest

from repro.experiments import (
    labeling,
    memory_budget,
    metadata_scaling,
    training,
)
from repro.experiments.burst import _burst_order
from repro.workloads.trees import flat_burst_tree


class TestBurstOrder:
    def _tree(self):
        return flat_burst_tree(4, files_per_dir=12)

    def test_covers_every_file_once(self):
        tree = self._tree()
        order = _burst_order(tree, 5, random.Random(0))
        assert sorted(order) == sorted(tree.file_paths())

    def test_burst_runs_share_directory(self):
        tree = self._tree()
        order = _burst_order(tree, 6, random.Random(0))
        for start in range(0, len(order), 6):
            chunk = order[start:start + 6]
            dirs = {path.rsplit("/", 1)[0] for path in chunk}
            assert len(dirs) == 1

    def test_burst_one_interleaves_directories(self):
        tree = self._tree()
        order = _burst_order(tree, 1, random.Random(0))
        first_eight = {path.rsplit("/", 1)[0] for path in order[:8]}
        assert len(first_eight) > 1

    def test_deterministic_for_seed(self):
        tree = self._tree()
        a = _burst_order(tree, 4, random.Random(7))
        b = _burst_order(tree, 4, random.Random(7))
        assert a == b


class TestMeasureBattery:
    """Every (system, op) measurement path runs cleanly at tiny scale."""

    @pytest.mark.parametrize("system", ("falconfs", "cephfs", "lustre",
                                        "juicefs"))
    @pytest.mark.parametrize("op", metadata_scaling.OPS)
    def test_metadata_cell(self, system, op):
        result = metadata_scaling.measure(system, 2, op, num_ops=40,
                                          threads=8)
        assert result.ops == 40
        assert result.errors == 0


class TestMemoryBudgetInternals:
    def test_nobypass_cell(self):
        cell = memory_budget.measure(
            "falconfs-nobypass", 0.3, levels=2, dir_fanout=4,
            files_per_leaf=4, threads=32, max_files=48,
        )
        assert cell["system"] == "falconfs-nobypass"
        assert cell["requests_per_file"] >= 1.0
        assert cell["errors"] == 0

    def test_unlimited_budget_cell(self):
        cell = memory_budget.measure(
            "lustre", None, levels=2, dir_fanout=4, files_per_leaf=4,
            threads=32, max_files=48,
        )
        assert cell["budget_pct"] == 100


class TestLabelingInternals:
    def test_trace_structure(self):
        tree, entries = labeling.build_trace(num_tasks=100, dirs=10)
        assert len(entries) == 100
        raw_paths = {path for path, _ in tree.files}
        for raw, out, size in entries:
            assert raw in raw_paths
            assert out.startswith("/out/")
            assert size > 0

    def test_sample_size_bounds(self):
        rng = random.Random(3)
        for _ in range(500):
            size = labeling.sample_size(rng)
            assert (4 << 10) <= size < (4 << 20)

    def test_trace_batches_are_contiguous(self):
        _, entries = labeling.build_trace(num_tasks=100, dirs=10)
        buckets = [raw.split("/")[2] for raw, _, _ in entries]
        # Each directory appears as one contiguous run (burst pattern).
        seen = set()
        previous = None
        for bucket in buckets:
            if bucket != previous:
                assert bucket not in seen
                seen.add(bucket)
            previous = bucket


class TestTrainingInternals:
    def test_measure_cell(self):
        row = training.measure(
            "falconfs", num_gpus=2, num_files=200, batch_size=8,
            compute_us_per_batch=1000.0, clients_per_run=2,
        )
        assert 0.0 < row["accelerator_utilization"] <= 1.0

    def test_supported_gpus_threshold(self):
        rows = [
            {"system": "x", "gpus": 8, "accelerator_utilization": 0.95},
            {"system": "x", "gpus": 16, "accelerator_utilization": 0.91},
            {"system": "x", "gpus": 32, "accelerator_utilization": 0.5},
            {"system": "y", "gpus": 8, "accelerator_utilization": 0.4},
        ]
        supported = training.supported_gpus(rows)
        assert supported == {"x": 16, "y": 0}
