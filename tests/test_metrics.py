"""Unit tests for counters, histograms and statistics helpers."""

import pytest

from repro.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    coefficient_of_variation,
    load_share_extremes,
    mean,
    percentile,
    stddev,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_rejected(self):
        with pytest.raises(ValueError):
            mean([])

    def test_stddev_constant_is_zero(self):
        assert stddev([5, 5, 5]) == 0.0

    def test_stddev_known_value(self):
        assert stddev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.0)

    def test_cv_zero_for_even(self):
        assert coefficient_of_variation([10, 10, 10]) == 0.0

    def test_cv_zero_mean(self):
        assert coefficient_of_variation([0, 0]) == 0.0

    def test_cv_increases_with_skew(self):
        assert (coefficient_of_variation([1, 1, 1, 97])
                > coefficient_of_variation([20, 25, 25, 30]))

    def test_percentile_bounds(self):
        values = list(range(101))
        assert percentile(values, 0) == 0
        assert percentile(values, 100) == 100
        assert percentile(values, 50) == 50

    def test_percentile_interpolates(self):
        assert percentile([0, 10], 25) == 2.5

    def test_percentile_single_value(self):
        assert percentile([7], 99) == 7

    def test_percentile_validation(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_load_share_extremes(self):
        max_share, min_share = load_share_extremes([25, 25, 25, 25])
        assert max_share == min_share == 0.25
        max_share, min_share = load_share_extremes([70, 10, 10, 10])
        assert max_share == 0.7 and min_share == 0.1

    def test_load_share_extremes_zero_total(self):
        max_share, min_share = load_share_extremes([0, 0])
        assert max_share == min_share == 0.5


class TestCounter:
    def test_unlabeled(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(amount=4)
        assert counter.get() == 5
        assert counter.total() == 5

    def test_labeled(self):
        counter = Counter("c")
        counter.inc("open")
        counter.inc("open")
        counter.inc("close")
        assert counter.get("open") == 2
        assert counter.total() == 3
        assert counter.by_label() == {"open": 2, "close": 1}

    def test_unknown_label_zero(self):
        assert Counter("c").get("nope") == 0

    def test_get_does_not_materialize_label(self):
        # Regression: reading a missing label through the backing
        # defaultdict used to create it with a zero count, polluting
        # by_label() snapshots and total() iteration.
        counter = Counter("c")
        counter.inc("real")
        assert counter.get("phantom") == 0
        assert counter.by_label() == {"real": 1}
        assert counter.total() == 1
        assert Counter("empty").get("phantom") == 0
        assert Counter("empty").by_label() == {}


class TestHistogram:
    def test_summary(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(value)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(50.5)
        assert summary["max"] == 100
        assert summary["p50"] == pytest.approx(50.5)

    def test_empty_summary_is_zeros(self):
        assert Histogram("h").summary()["count"] == 0

    def test_len(self):
        hist = Histogram("h")
        hist.observe(1)
        assert len(hist) == 1


class TestTimeSeries:
    def test_record_and_values(self):
        series = TimeSeries("s")
        series.record(0.0, 10)
        series.record(1.0, 20)
        assert series.values() == [10, 20]
        assert len(series) == 2


class TestRegistry:
    def test_get_or_create(self):
        registry = MetricsRegistry("node")
        assert registry.counter("x") is registry.counter("x")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.time_series("t") is registry.time_series("t")

    def test_listing(self):
        registry = MetricsRegistry("node")
        registry.counter("a").inc()
        registry.histogram("b").observe(1)
        assert set(registry.counters()) == {"a"}
        assert set(registry.histograms()) == {"b"}
