"""Regression tests for standby/follower snapshot catch-up idempotency.

Shrunken from a checker reproducer: a rejoining standby facing a
primary that had shipped nothing (snapshot LSN equal to the standby's
applied horizon — both zero) *refused* the snapshot under the old
``<=`` staleness guard and never installed the primary's bulk-loaded
tables, diverging forever.  The guard must refuse only snapshots
strictly *below* the applied horizon (those would rewind state); one
exactly at the horizon is the same state and must install.  The same
rule holds for duplicated and overlapping snapshot+delta deliveries.
"""

from repro.core import FalconCluster, FalconConfig
from repro.core.records import InodeRecord
from repro.net.message import Message
from repro.storage.replication import divergence


def _replicated(**overrides):
    kwargs = dict(num_mnodes=1, num_storage=1, replication=True, seed=0)
    kwargs.update(overrides)
    return FalconCluster(FalconConfig(**kwargs))


class TestSnapshotGuard:
    def test_equal_lsn_snapshot_installs(self):
        """The shrunken reproducer: primary holds table state that never
        went through the shipper (bulk load / preload), so its snapshot
        LSN equals the fresh standby's applied LSN (zero).  The install
        must happen — refusing it loses the whole table image."""
        cluster = _replicated()
        mnode = cluster.mnodes[0]
        standby = cluster.standbys[0]
        mnode.inodes.put((1, "seeded"), InodeRecord(ino=99))
        assert mnode.shipper.next_lsn == 1  # nothing ever shipped
        assert standby.applied_lsn == 0

        installed = cluster.run_process(standby.catch_up(mnode.name))
        assert installed > 0
        assert standby.table("inode").get((1, "seeded")).ino == 99
        assert divergence(mnode, standby) == []

    def test_duplicate_snapshot_is_idempotent(self):
        """A second delivery of the same snapshot reinstalls identical
        state: applied LSN and tables end up unchanged."""
        cluster = _replicated()
        fs = cluster.fs()
        fs.mkdir("/d")
        for i in range(4):
            fs.create("/d/f{}".format(i))
        cluster.run_for(10000.0)
        mnode = cluster.mnodes[0]
        standby = cluster.standbys[0]
        before = standby.applied_lsn
        assert before > 0

        cluster.run_process(standby.catch_up(mnode.name))
        assert standby.applied_lsn == before
        assert divergence(mnode, standby) == []
        cluster.run_process(standby.catch_up(mnode.name))
        assert standby.applied_lsn == before
        assert divergence(mnode, standby) == []

    def test_stale_snapshot_is_refused(self):
        """A snapshot strictly below the applied horizon must not rewind
        the standby (it would resurrect records the primary already
        pruned past)."""
        cluster = _replicated()
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        cluster.run_for(10000.0)
        mnode = cluster.mnodes[0]
        standby = cluster.standbys[0]
        horizon = standby.applied_lsn
        assert horizon > 0
        # Fast-forward the standby past the primary's snapshot point.
        standby.applied_lsn = horizon + 5
        standby.table("inode").put((9, "ahead"), InodeRecord(ino=7))

        installed = cluster.run_process(standby.catch_up(mnode.name))
        assert installed == 0
        assert standby.applied_lsn == horizon + 5
        assert standby.table("inode").get((9, "ahead")).ino == 7

    def test_delta_after_snapshot_does_not_double_apply(self):
        """Overlapping delivery: a shipped delta at or below the
        snapshot LSN re-arrives after the install and must be ignored,
        not re-applied (the snapshot already contains it)."""
        cluster = _replicated()
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        cluster.run_for(10000.0)
        mnode = cluster.mnodes[0]
        standby = cluster.standbys[0]
        horizon = standby.applied_lsn
        assert horizon >= 2
        # Replay an old delta that deletes a key the snapshot holds.
        stale = Message(mnode.name, standby.name, "wal_ship", {
            "lsn": 1, "records": [("inode", (1, "d"), None)],
        })
        standby.deliver(stale)
        cluster.run_for(1000.0)
        assert standby.applied_lsn == horizon
        assert divergence(mnode, standby) == []


class TestConsensusFollowerGuard:
    def test_equal_lsn_snapshot_installs(self):
        """Same reproducer, consensus flavor: a group's data follower
        must install a snapshot at exactly its applied horizon."""
        cluster = FalconCluster(FalconConfig(
            num_mnodes=1, num_storage=1, replication=True,
            consensus=True, seed=0))
        mnode = cluster.mnodes[0]
        follower = cluster.standbys[0]
        mnode.inodes.put((1, "seeded"), InodeRecord(ino=42))
        assert follower.applied_lsn == 0

        installed = cluster.run_process(follower.catch_up(mnode.name))
        assert installed > 0
        assert follower.table("inode").get((1, "seeded")).ino == 42
        assert follower.log_base_lsn == follower.applied_lsn

    def test_stale_snapshot_is_refused(self):
        cluster = FalconCluster(FalconConfig(
            num_mnodes=1, num_storage=1, replication=True,
            consensus=True, seed=0))
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        cluster.run_for(10000.0)
        mnode = cluster.mnodes[0]
        follower = cluster.standbys[0]
        horizon = follower.applied_lsn
        assert horizon > 0
        follower.applied_lsn = horizon + 3

        installed = cluster.run_process(follower.catch_up(mnode.name))
        assert installed == 0
        assert follower.applied_lsn == horizon + 3
