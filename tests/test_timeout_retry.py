"""RPC deadline enforcement and shared retry/backoff semantics."""

import pytest

from repro.core import FalconCluster, FalconConfig
from repro.core.verify import check_cluster_invariants
from repro.net import CostModel, Network, Node, RpcError, RpcFailure
from repro.obs import OpContext, RetryPolicy, deadline_call, retry
from repro.sim import Environment


class SlowNode(Node):
    """Responds after a fixed service delay; 'fail_late' errors instead."""

    def __init__(self, env, network, name, delay=1000.0):
        super().__init__(env, network, name)
        self.delay = delay

    def handle(self, message):
        yield self.env.timeout(self.delay)
        if message.kind == "fail_late":
            self.respond_error(message, RpcFailure(RpcError.ENOENT, "late"))
        else:
            self.respond(message, {"ok": True})


class FlakyNode(Node):
    """Fails ``failures`` requests with ``code``, then succeeds."""

    def __init__(self, env, network, name, failures,
                 code=RpcError.ERETRY, detail="try-again"):
        super().__init__(env, network, name)
        self.remaining = failures
        self.code = code
        self.detail = detail
        self.handled = 0

    def handle(self, message):
        yield from self.execute(1.0)
        self.handled += 1
        if self.remaining > 0:
            self.remaining -= 1
            self.respond_error(
                message, RpcFailure(self.code, self.detail)
            )
        else:
            self.respond(message, {"ok": True})


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def net(env):
    return Network(env, CostModel())


def _drive(env, gen):
    return env.run(until=env.process(gen))


class TestDeadlineCall:
    def test_expires_mid_hop(self, env, net):
        SlowNode(env, net, "server", delay=1000.0)
        client = SlowNode(env, net, "client")

        def caller():
            ctx = OpContext(env, "op", deadline=env.now + 50.0)
            try:
                yield from deadline_call(client, ctx, "server", "work")
            except RpcFailure as failure:
                return failure.code, env.now

        code, when = _drive(env, caller())
        assert code == RpcError.ETIMEDOUT
        assert when == pytest.approx(50.0)
        # The straggling reply (and its events) must drain harmlessly.
        env.run()

    def test_late_error_reply_is_defused(self, env, net):
        SlowNode(env, net, "server", delay=1000.0)
        client = SlowNode(env, net, "client")

        def caller():
            ctx = OpContext(env, "op", deadline=env.now + 50.0)
            with pytest.raises(RpcFailure):
                yield from deadline_call(client, ctx, "server",
                                         "fail_late")

        _drive(env, caller())
        env.run()  # the late ENOENT response must not crash the sim

    def test_expired_before_send(self, env, net):
        SlowNode(env, net, "server")
        client = SlowNode(env, net, "client")

        def caller():
            ctx = OpContext(env, "op", deadline=env.now)
            try:
                yield from deadline_call(client, ctx, "server", "work")
            except RpcFailure as failure:
                return failure.code

        assert _drive(env, caller()) == RpcError.ETIMEDOUT
        assert net.message_count() == 0  # never hit the wire

    def test_success_cancels_watchdog(self, env, net):
        SlowNode(env, net, "server", delay=5.0)
        client = SlowNode(env, net, "client")

        def caller():
            ctx = OpContext(env, "op", deadline=env.now + 10_000.0)
            result = yield from deadline_call(client, ctx, "server",
                                              "work")
            return result, env.now

        result, when = _drive(env, caller())
        assert result == {"ok": True}
        assert when < 10_000.0
        # The interrupted watchdog's timer fires inert on drain: no
        # spurious Interrupt, no unhandled failure.
        env.run()

    def test_no_deadline_is_a_plain_call(self, env, net):
        SlowNode(env, net, "server", delay=5.0)
        client = SlowNode(env, net, "client")

        def caller():
            ctx = OpContext(env, "op")
            return (yield from deadline_call(client, ctx, "server",
                                             "work"))

        assert _drive(env, caller()) == {"ok": True}


class TestRetry:
    def test_exponential_backoff_converges(self, env, net):
        server = FlakyNode(env, net, "server", failures=3)
        client = SlowNode(env, net, "client")
        policy = RetryPolicy(base_us=100.0, multiplier=2.0,
                             max_backoff_us=6400.0)

        def caller():
            ctx = OpContext(env, "op")

            def attempt(_attempt, _hint):
                return (yield client.call("server", "work"))

            result = yield from retry(client, ctx, attempt, policy=policy)
            return result, ctx.attempt, env.now

        result, attempts, elapsed = _drive(env, caller())
        assert result == {"ok": True}
        assert attempts == 3  # 0-based: fourth attempt succeeded
        assert server.handled == 4
        assert elapsed >= 100.0 + 200.0 + 400.0

    def test_exhaustion_reraises_last_retryable(self, env, net):
        FlakyNode(env, net, "server", failures=100)
        client = SlowNode(env, net, "client")
        policy = RetryPolicy(max_attempts=5, base_us=1.0)

        def caller():
            ctx = OpContext(env, "op")

            def attempt(_attempt, _hint):
                return (yield client.call("server", "work"))

            try:
                yield from retry(client, ctx, attempt, policy=policy)
            except RpcFailure as failure:
                return failure.code

        assert _drive(env, caller()) == RpcError.ERETRY

    def test_non_retryable_propagates_immediately(self, env, net):
        server = FlakyNode(env, net, "server", failures=100,
                           code=RpcError.ENOENT)
        client = SlowNode(env, net, "client")

        def caller():
            ctx = OpContext(env, "op")

            def attempt(_attempt, _hint):
                return (yield client.call("server", "work"))

            try:
                yield from retry(client, ctx, attempt)
            except RpcFailure as failure:
                return failure.code

        assert _drive(env, caller()) == RpcError.ENOENT
        assert server.handled == 1

    def test_redirect_hint_reaches_next_attempt(self, env):
        client_env = env
        seen = []

        class _Stub:
            env = client_env
            name = "client"

        def attempt(attempt, hint):
            seen.append(hint)
            if attempt == 0:
                raise RpcFailure(RpcError.EREDIRECT, "mnode-7")
            return "done"
            yield  # pragma: no cover

        def caller():
            ctx = OpContext(env, "op")
            return (yield from retry(
                _Stub(), ctx, attempt, policy=RetryPolicy(base_us=0.0)
            ))

        assert _drive(env, caller()) == "done"
        assert seen == [None, "mnode-7"]

    def test_backoff_past_deadline_times_out(self, env, net):
        FlakyNode(env, net, "server", failures=100)
        client = SlowNode(env, net, "client")
        policy = RetryPolicy(base_us=1000.0)

        def caller():
            ctx = OpContext(env, "op", deadline=env.now + 500.0)

            def attempt(_attempt, _hint):
                return (yield client.call("server", "work"))

            try:
                yield from retry(client, ctx, attempt, policy=policy)
            except RpcFailure as failure:
                return failure.code, env.now

        code, when = _drive(env, caller())
        assert code == RpcError.ETIMEDOUT
        assert when < 500.0  # gave up before sleeping past the deadline


class TestClusterDeadlines:
    def test_tight_deadline_times_out_posix_op(self):
        config = FalconConfig(op_deadline_us=5.0)
        cluster = FalconCluster(config=config)
        fs = cluster.fs()
        with pytest.raises(RpcFailure) as excinfo:
            fs.mkdir("/data")
        assert excinfo.value.code == RpcError.ETIMEDOUT
        cluster.env.run()  # stragglers drain without unhandled failures
        check_cluster_invariants(cluster)

    def test_generous_deadline_is_invisible(self):
        config = FalconConfig(op_deadline_us=1_000_000.0)
        cluster = FalconCluster(config=config)
        fs = cluster.fs()
        fs.mkdir("/data")
        fs.write("/data/a.bin", size=16 * 1024)
        assert fs.read("/data/a.bin") == 16 * 1024

    @pytest.mark.parametrize("seed", range(5))
    def test_interrupt_cancellation_leaves_no_orphans(self, seed):
        """Fuzz: ops racing a deadline must never corrupt the cluster.

        A mid-range deadline makes some operations time out mid-flight
        (cancelling waiters via Interrupt) while others complete; after
        draining, the event queue must be empty, no unhandled failure
        may surface, and the cluster invariants must hold.
        """
        import random

        rng = random.Random(seed)
        config = FalconConfig(op_deadline_us=float(rng.choice(
            (40, 80, 120, 200)
        )), seed=seed)
        cluster = FalconCluster(config=config)
        fs = cluster.fs(mode=rng.choice(("vfs", "libfs")))
        timeouts = 0
        completed = 0
        for i in range(30):
            op = rng.choice(("mkdir", "write", "read", "getattr",
                             "unlink"))
            path = "/d{:02d}".format(rng.randrange(8))
            try:
                if op == "mkdir":
                    fs.mkdir(path)
                elif op == "write":
                    fs.write(path + "/f{:03d}".format(i),
                             size=rng.choice((4096, 65536)))
                elif op == "read":
                    fs.read(path + "/f{:03d}".format(i))
                else:
                    getattr(fs, op)(path)
                completed += 1
            except RpcFailure:
                timeouts += 1
        cluster.env.run()
        assert not cluster.env._queue
        check_cluster_invariants(cluster)
        assert completed + timeouts == 30
