"""Property-based tests on the storage primitives.

Random schedules against the lock manager and WAL, checking safety
invariants at every step rather than specific outcomes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.costs import CostModel
from repro.sim import Environment
from repro.storage import LockManager, LockMode, WriteAheadLog


def _modes_compatible(modes):
    return "X" not in modes or len(modes) == 1


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["acquire_s", "acquire_x", "release"]),
        st.integers(min_value=0, max_value=3),  # key
        st.integers(min_value=0, max_value=5),  # grant slot
    ),
    max_size=80,
))
def test_lock_manager_safety(schedule):
    """At no point does a key hold an exclusive grant alongside another
    grant, and grants are only ever delivered once."""
    env = Environment()
    locks = LockManager(env)
    slots = {}
    for action, key, slot in schedule:
        if action == "release":
            grant = slots.pop(slot, None)
            if grant is not None:
                locks.release(grant)
        else:
            if slot in slots:
                continue  # slot busy
            mode = (LockMode.SHARED if action == "acquire_s"
                    else LockMode.EXCLUSIVE)
            slots[slot] = locks.acquire(key, mode)
        for check_key in range(4):
            assert _modes_compatible(locks.holders(check_key)), (
                "incompatible holders on key {}".format(check_key)
            )
    # Drain: releasing everything must leave the manager empty and have
    # granted every surviving request exactly once.
    for grant in list(slots.values()):
        locks.release(grant)
    for check_key in range(4):
        assert locks.holders(check_key) == []
        assert locks.queue_length(check_key) == 0


@settings(max_examples=60, deadline=None)
@given(st.lists(
    st.tuples(
        st.sampled_from(["acquire_s", "acquire_x", "release"]),
        st.integers(min_value=0, max_value=2),
        st.integers(min_value=0, max_value=4),
    ),
    max_size=60,
))
def test_lock_manager_liveness(schedule):
    """After all holders release, every queued request is granted (FIFO
    never strands a waiter)."""
    env = Environment()
    locks = LockManager(env)
    slots = {}
    for action, key, slot in schedule:
        if action == "release":
            grant = slots.pop(slot, None)
            if grant is not None:
                locks.release(grant)
        elif slot not in slots:
            mode = (LockMode.SHARED if action == "acquire_s"
                    else LockMode.EXCLUSIVE)
            slots[slot] = locks.acquire(key, mode)
    for grant in list(slots.values()):
        locks.release(grant)
    assert not locks._locks


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(
        st.integers(min_value=1, max_value=2048),   # bytes
        st.integers(min_value=0, max_value=200),    # start delay
    ),
    min_size=1, max_size=40,
))
def test_wal_conserves_records_and_bytes(commits):
    """Whatever the commit schedule, every record and byte is flushed
    exactly once, and every committer's event eventually fires."""
    env = Environment()
    wal = WriteAheadLog(env, CostModel())
    done = []

    def committer(nbytes, delay):
        yield env.timeout(float(delay))
        yield wal.commit(nbytes)
        done.append(nbytes)

    for nbytes, delay in commits:
        env.process(committer(nbytes, delay))
    env.run()
    assert len(done) == len(commits)
    assert wal.records_written == len(commits)
    assert wal.bytes_written == sum(nbytes for nbytes, _ in commits)
    assert 1 <= wal.flush_count <= len(commits)


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=64))
def test_wal_group_commit_never_increases_flushes(n):
    """N simultaneous commits need at most 2 flushes (one in flight plus
    one accumulated batch) — the §4.4 WAL-coalescing bound."""
    env = Environment()
    wal = WriteAheadLog(env, CostModel())

    def committer():
        yield wal.commit(128)

    for _ in range(n):
        env.process(committer())
    env.run()
    assert wal.flush_count <= 2
    assert wal.records_written == n
