"""POSIX semantics of FalconFS through the synchronous facade.

Every test runs the full protocol: client routing (hybrid indexing),
server-side path resolution against namespace replicas, batch execution,
WAL commits and coordinator flows.
"""

import pytest

from repro.core import FalconCluster, FalconConfig
from repro.net.rpc import RpcError, RpcFailure


@pytest.fixture
def cluster():
    return FalconCluster(FalconConfig(num_mnodes=4, num_storage=4))


@pytest.fixture
def fs(cluster):
    return cluster.fs()


def _code(excinfo):
    return excinfo.value.code


class TestDirectories:
    def test_mkdir_and_getattr(self, fs):
        fs.mkdir("/data")
        attrs = fs.getattr("/data")
        assert attrs["is_dir"] and attrs["mode"] == 0o755

    def test_mkdir_custom_mode(self, fs):
        fs.mkdir("/locked", mode=0o700)
        assert fs.getattr("/locked")["mode"] == 0o700

    def test_mkdir_existing_is_eexist(self, fs):
        fs.mkdir("/data")
        with pytest.raises(RpcFailure) as err:
            fs.mkdir("/data")
        assert _code(err) == RpcError.EEXIST

    def test_mkdir_missing_parent_is_enoent(self, fs):
        with pytest.raises(RpcFailure) as err:
            fs.mkdir("/missing/child")
        assert _code(err) == RpcError.ENOENT

    def test_makedirs(self, fs):
        fs.makedirs("/a/b/c/d")
        assert fs.is_dir("/a/b/c/d")

    def test_makedirs_idempotent(self, fs):
        fs.makedirs("/a/b")
        fs.makedirs("/a/b")
        assert fs.is_dir("/a/b")

    def test_makedirs_exist_ok_false(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(RpcFailure):
            fs.makedirs("/a/b", exist_ok=False)

    def test_rmdir_empty(self, fs):
        fs.mkdir("/gone")
        fs.rmdir("/gone")
        assert not fs.exists("/gone")

    def test_rmdir_nonempty_is_enotempty(self, fs):
        fs.makedirs("/a/b")
        with pytest.raises(RpcFailure) as err:
            fs.rmdir("/a")
        assert _code(err) == RpcError.ENOTEMPTY

    def test_rmdir_nonempty_due_to_file(self, fs):
        fs.mkdir("/a")
        fs.create("/a/f.txt")
        with pytest.raises(RpcFailure) as err:
            fs.rmdir("/a")
        assert _code(err) == RpcError.ENOTEMPTY

    def test_rmdir_missing_is_enoent(self, fs):
        with pytest.raises(RpcFailure) as err:
            fs.rmdir("/ghost")
        assert _code(err) == RpcError.ENOENT

    def test_rmdir_file_is_enotdir(self, fs):
        fs.create("/file")
        with pytest.raises(RpcFailure) as err:
            fs.rmdir("/file")
        assert _code(err) == RpcError.ENOTDIR

    def test_recreate_after_rmdir(self, fs):
        fs.mkdir("/x")
        fs.rmdir("/x")
        fs.mkdir("/x")
        assert fs.is_dir("/x")

    def test_root_getattr(self, fs):
        attrs = fs.getattr("/")
        assert attrs["is_dir"]

    def test_mkdir_on_root_rejected(self, fs):
        with pytest.raises((RpcFailure, ValueError)):
            fs.mkdir("/")


class TestFiles:
    def test_create_and_getattr(self, fs):
        fs.mkdir("/d")
        ino = fs.create("/d/f.bin")
        attrs = fs.getattr("/d/f.bin")
        assert attrs["ino"] == ino and not attrs["is_dir"]

    def test_create_exclusive_conflict(self, fs):
        fs.create("/f")
        with pytest.raises(RpcFailure) as err:
            fs.create("/f")
        assert _code(err) == RpcError.EEXIST

    def test_create_non_exclusive_truncates(self, fs, cluster):
        fs.write("/f", size=4096)
        ino = fs.create("/f", exclusive=False)
        assert fs.getattr("/f")["size"] == 0
        assert fs.getattr("/f")["ino"] == ino

    def test_write_then_read_size(self, fs):
        fs.mkdir("/d")
        fs.write("/d/f.bin", size=300 * 1024)
        assert fs.read("/d/f.bin") == 300 * 1024
        assert fs.getattr("/d/f.bin")["size"] == 300 * 1024

    def test_zero_byte_file(self, fs):
        fs.write("/empty", size=0)
        assert fs.read("/empty") == 0

    def test_multi_block_file(self, fs, cluster):
        size = 3 * cluster.costs.block_size_bytes + 100
        fs.write("/big", size=size)
        assert fs.read("/big") == size

    def test_unlink(self, fs):
        fs.create("/f")
        fs.unlink("/f")
        assert not fs.exists("/f")

    def test_unlink_missing_is_enoent(self, fs):
        with pytest.raises(RpcFailure) as err:
            fs.unlink("/ghost")
        assert _code(err) == RpcError.ENOENT

    def test_unlink_directory_is_eisdir(self, fs):
        fs.mkdir("/d")
        with pytest.raises(RpcFailure) as err:
            fs.unlink("/d")
        assert _code(err) == RpcError.EISDIR

    def test_read_missing_is_enoent(self, fs):
        with pytest.raises(RpcFailure) as err:
            fs.read("/ghost")
        assert _code(err) == RpcError.ENOENT

    def test_read_directory_is_eisdir(self, fs):
        fs.mkdir("/d")
        with pytest.raises(RpcFailure) as err:
            fs.read("/d")
        assert _code(err) == RpcError.EISDIR

    def test_getattr_through_file_is_enotdir(self, fs):
        fs.create("/f")
        with pytest.raises(RpcFailure) as err:
            fs.getattr("/f/child")
        assert _code(err) in (RpcError.ENOTDIR, RpcError.ENOENT)

    def test_same_name_in_different_dirs(self, fs):
        fs.mkdir("/a")
        fs.mkdir("/b")
        fs.write("/a/data.bin", size=100)
        fs.write("/b/data.bin", size=200)
        assert fs.getattr("/a/data.bin")["size"] == 100
        assert fs.getattr("/b/data.bin")["size"] == 200


class TestPermissions:
    def test_chmod_file(self, fs):
        fs.create("/f")
        fs.chmod("/f", 0o600)
        assert fs.getattr("/f")["mode"] == 0o600

    def test_chmod_dir_via_coordinator(self, fs):
        fs.mkdir("/d")
        fs.chmod("/d", 0o500)
        assert fs.getattr("/d")["mode"] == 0o500

    def test_no_exec_dir_blocks_traversal(self, fs):
        fs.makedirs("/d/sub")
        fs.create("/d/sub/f")
        fs.chmod("/d", 0o600)
        with pytest.raises(RpcFailure) as err:
            fs.getattr("/d/sub/f")
        assert _code(err) == RpcError.EACCES

    def test_restore_exec_restores_access(self, fs):
        fs.makedirs("/d/sub")
        fs.create("/d/sub/f")
        fs.chmod("/d", 0o600)
        fs.chmod("/d", 0o755)
        assert fs.exists("/d/sub/f")

    def test_readonly_parent_blocks_create(self, fs):
        fs.mkdir("/ro")
        fs.chmod("/ro", 0o555)
        with pytest.raises(RpcFailure) as err:
            fs.create("/ro/f")
        assert _code(err) == RpcError.EACCES


class TestRename:
    def test_rename_file(self, fs):
        fs.mkdir("/d")
        fs.write("/d/a", size=512)
        fs.rename("/d/a", "/d/b")
        assert not fs.exists("/d/a")
        assert fs.getattr("/d/b")["size"] == 512

    def test_rename_across_directories(self, fs):
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.create("/src/f")
        fs.rename("/src/f", "/dst/f")
        assert fs.exists("/dst/f") and not fs.exists("/src/f")

    def test_rename_missing_source_is_enoent(self, fs):
        fs.mkdir("/d")
        with pytest.raises(RpcFailure) as err:
            fs.rename("/d/ghost", "/d/new")
        assert _code(err) == RpcError.ENOENT

    def test_rename_existing_target_is_eexist(self, fs):
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(RpcFailure) as err:
            fs.rename("/a", "/b")
        assert _code(err) == RpcError.EEXIST

    def test_rename_onto_itself_rejected(self, fs):
        fs.create("/a")
        with pytest.raises(RpcFailure) as err:
            fs.rename("/a", "/a")
        assert _code(err) == RpcError.EINVAL

    def test_rename_directory_children_follow(self, fs):
        fs.makedirs("/old/nested")
        fs.write("/old/nested/f", size=64)
        fs.rename("/old", "/new")
        assert fs.getattr("/new/nested/f")["size"] == 64
        assert not fs.exists("/old")

    def test_rename_directory_then_create_under_new_name(self, fs):
        fs.mkdir("/old")
        fs.rename("/old", "/new")
        fs.create("/new/f")
        assert fs.exists("/new/f")

    def test_rename_keeps_ino(self, fs):
        ino = fs.create("/a")
        fs.rename("/a", "/b")
        assert fs.getattr("/b")["ino"] == ino


class TestReaddir:
    def test_lists_files_and_dirs(self, fs):
        fs.mkdir("/d")
        fs.mkdir("/d/sub")
        fs.create("/d/f1")
        fs.create("/d/f2")
        assert fs.readdir("/d") == [
            ("f1", False), ("f2", False), ("sub", True),
        ]

    def test_listdir_names_only(self, fs):
        fs.mkdir("/d")
        fs.create("/d/z")
        fs.create("/d/a")
        assert fs.listdir("/d") == ["a", "z"]

    def test_empty_directory(self, fs):
        fs.mkdir("/d")
        assert fs.readdir("/d") == []

    def test_root_listing(self, fs):
        fs.mkdir("/a")
        fs.create("/b")
        assert fs.readdir("/") == [("a", True), ("b", False)]

    def test_missing_directory_is_enoent(self, fs):
        with pytest.raises(RpcFailure) as err:
            fs.readdir("/ghost")
        assert _code(err) == RpcError.ENOENT

    def test_spans_all_mnodes(self, fs, cluster):
        """A directory's files live on many MNodes; readdir merges them."""
        fs.mkdir("/d")
        for i in range(32):
            fs.create("/d/f{:03d}".format(i))
        assert len(fs.readdir("/d")) == 32
        holders = sum(
            1 for mnode in cluster.mnodes
            if any(True for _ in mnode.inodes.scan_prefix(
                (fs.getattr("/d")["ino"],)
            ))
        )
        assert holders > 1


class TestMultiClient:
    def test_visibility_across_clients(self, cluster):
        writer = cluster.fs()
        reader = cluster.fs()
        writer.mkdir("/shared")
        writer.write("/shared/f", size=1024)
        assert reader.read("/shared/f") == 1024

    def test_unlink_visible_immediately(self, cluster):
        """Stateless clients cannot serve stale metadata (no coherence
        protocol needed)."""
        a = cluster.fs()
        b = cluster.fs()
        a.create("/f")
        assert b.exists("/f")
        b.unlink("/f")
        assert not a.exists("/f")

    def test_chmod_visible_across_clients(self, cluster):
        a = cluster.fs()
        b = cluster.fs()
        a.makedirs("/d/sub")
        a.chmod("/d", 0o000)
        with pytest.raises(RpcFailure):
            b.getattr("/d/sub")

    def test_libfs_and_vfs_clients_interoperate(self, cluster):
        vfs = cluster.fs(mode="vfs")
        libfs = cluster.fs(mode="libfs")
        vfs.mkdir("/d")
        libfs.create("/d/f")
        assert vfs.exists("/d/f")


class TestDeepPaths:
    def test_deep_nesting(self, fs):
        path = ""
        for level in range(12):
            path += "/L{}".format(level)
            fs.mkdir(path)
        fs.write(path + "/leaf.bin", size=64)
        assert fs.read(path + "/leaf.bin") == 64

    def test_invalid_path_rejected(self, fs):
        with pytest.raises((RpcFailure, ValueError)):
            fs.getattr("relative/path")

    def test_dot_components_rejected(self, fs):
        with pytest.raises((RpcFailure, ValueError)):
            fs.getattr("/a/../b")
