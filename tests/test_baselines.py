"""Tests for the CephFS / Lustre / JuiceFS baseline models."""

import pytest

from repro.baselines import CephCluster, JuiceCluster, LustreCluster
from repro.baselines.common import placement_index
from repro.core.shared import FalconConfig
from repro.net.rpc import RpcError, RpcFailure

ALL_CLUSTERS = (CephCluster, LustreCluster, JuiceCluster)


def _config():
    return FalconConfig(num_mnodes=4, num_storage=4)


@pytest.mark.parametrize("cluster_cls", ALL_CLUSTERS)
class TestSemantics:
    """The same POSIX battery must hold on every baseline."""

    def test_mkdir_create_read(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.makedirs("/a/b")
        fs.write("/a/b/f.bin", size=96 * 1024)
        assert fs.read("/a/b/f.bin") == 96 * 1024
        assert fs.getattr("/a/b/f.bin")["size"] == 96 * 1024

    def test_eexist_and_enoent(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        with pytest.raises(RpcFailure) as err:
            fs.mkdir("/d")
        assert err.value.code == RpcError.EEXIST
        with pytest.raises(RpcFailure) as err:
            fs.getattr("/d/ghost")
        assert err.value.code == RpcError.ENOENT

    def test_unlink_and_rmdir(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        with pytest.raises(RpcFailure) as err:
            fs.rmdir("/d")
        assert err.value.code == RpcError.ENOTEMPTY
        fs.unlink("/d/f")
        fs.rmdir("/d")
        assert not fs.exists("/d")

    def test_rename_within_and_across_dirs(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.mkdir("/src")
        fs.mkdir("/dst")
        fs.write("/src/f", size=256)
        fs.rename("/src/f", "/src/g")
        fs.rename("/src/g", "/dst/h")
        assert fs.getattr("/dst/h")["size"] == 256
        assert not fs.exists("/src/f") and not fs.exists("/src/g")

    def test_rename_conflict(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.create("/a")
        fs.create("/b")
        with pytest.raises(RpcFailure) as err:
            fs.rename("/a", "/b")
        assert err.value.code == RpcError.EEXIST

    def test_readdir(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.mkdir("/d/sub")
        fs.create("/d/f")
        assert fs.readdir("/d") == [("f", False), ("sub", True)]

    def test_chmod(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.create("/f")
        fs.chmod("/f", 0o600)
        assert fs.getattr("/f")["mode"] == 0o600

    def test_deep_path(self, cluster_cls):
        cluster = cluster_cls(_config())
        fs = cluster.fs()
        fs.makedirs("/a/b/c/d/e")
        fs.write("/a/b/c/d/e/f", size=64)
        assert fs.read("/a/b/c/d/e/f") == 64


class TestPlacement:
    def test_directory_locality(self):
        """All entries of one directory land on one server — the §2.4
        congestion property."""
        cluster = CephCluster(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        for i in range(20):
            fs.create("/d/f{:02d}".format(i))
        dir_ino = fs.getattr("/d")["ino"]
        holders = [
            server for server in cluster.servers
            if server.inodes.has_prefix((dir_ino,))
        ]
        assert len(holders) == 1

    def test_different_dirs_spread(self):
        cluster = CephCluster(_config())
        fs = cluster.fs()
        for d in range(16):
            fs.mkdir("/d{:02d}".format(d))
            fs.create("/d{:02d}/f".format(d))
        populated = sum(
            1 for server in cluster.servers if len(server.inodes) > 0
        )
        assert populated > 1

    def test_juicefs_leader_concentration(self):
        """JuiceFS leads ranges on only ~sqrt(n) nodes."""
        config = FalconConfig(num_mnodes=16, num_storage=4)
        leaders = {
            placement_index(pid, 16, leader_fraction=0.5)
            for pid in range(1000)
        }
        assert len(leaders) == 4  # sqrt(16)
        full = {
            placement_index(pid, 16, leader_fraction=1.0)
            for pid in range(1000)
        }
        assert len(full) == 16


class TestClientBehaviour:
    def test_lookup_amplification_on_cold_cache(self):
        cluster = LustreCluster(_config())
        fs = cluster.fs()
        fs.makedirs("/a/b/c")
        fs.create("/a/b/c/f")
        cold = cluster.fs()
        client = cluster.clients[1]
        cold.getattr("/a/b/c/f")
        requests = client.metrics.counter("requests").by_label()
        assert requests.get("lookup", 0) == 3
        assert requests.get("getattr", 0) == 1

    def test_warm_cache_single_request(self):
        cluster = LustreCluster(_config())
        fs = cluster.fs()
        fs.makedirs("/a/b")
        fs.create("/a/b/f1")
        fs.create("/a/b/f2")
        client = cluster.clients[0]
        before = client.metrics.counter("requests").by_label().copy()
        fs.getattr("/a/b/f2")
        after = client.metrics.counter("requests").by_label()
        assert after.get("lookup", 0) == before.get("lookup", 0)

    def test_ceph_read_sends_lookup_and_close(self):
        cluster = CephCluster(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.write("/d/f", size=4096)
        client = cluster.clients[0]
        before_lookup = client.metrics.counter("requests").get("lookup")
        before_close = client.metrics.counter("requests").get("close")
        fs.read("/d/f")
        assert client.metrics.counter("requests").get("lookup") == \
            before_lookup + 1
        assert client.metrics.counter("requests").get("close") == \
            before_close + 1

    def test_lustre_read_sends_open_and_close(self):
        cluster = LustreCluster(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.write("/d/f", size=4096)
        client = cluster.clients[0]
        before_open = client.metrics.counter("requests").get("open")
        fs.read("/d/f")
        assert client.metrics.counter("requests").get("open") == \
            before_open + 1

    def test_juicefs_txn_rounds_on_mutations(self):
        cluster = JuiceCluster(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        for i in range(8):
            fs.create("/d/f{}".format(i))
        rounds = sum(
            server.metrics.counter("received").get("txn_round")
            for server in cluster.servers
        )
        assert rounds > 0

    def test_ceph_journals_to_osds(self):
        cluster = CephCluster(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        journal_writes = sum(
            node.metrics.counter("blocks").get("write")
            for node in cluster.storage
        )
        assert journal_writes >= 2  # mkdir + create journal records

    def test_lustre_journals_locally(self):
        cluster = LustreCluster(_config())
        fs = cluster.fs()
        fs.mkdir("/d")
        fs.create("/d/f")
        assert sum(s.wal.flush_count for s in cluster.servers) > 0
        journal_writes = sum(
            node.metrics.counter("blocks").get("write")
            for node in cluster.storage
        )
        assert journal_writes == 0

    def test_prefill_cache_avoids_lookups(self):
        from repro.workloads.trees import private_dirs_tree

        cluster = LustreCluster(_config())
        tree = private_dirs_tree(8, files_per_dir=2)
        path_ino = cluster.bulk_load(tree)
        client = cluster.add_client()
        cluster.prefill_client_cache(client, tree, path_ino)
        fs = cluster.fs(client)
        fs.getattr(tree.file_paths()[0])
        assert client.metrics.counter("requests").get("lookup") == 0
