"""Tests for primary-standby metadata replication (log shipping)."""

import pytest

from repro.core import FalconCluster, FalconConfig
from repro.core.records import INVALID


@pytest.fixture
def cluster():
    return FalconCluster(FalconConfig(num_mnodes=3, num_storage=2,
                                      replication=True))


def _drain(cluster):
    cluster.run_for(20000.0)


class TestConvergence:
    def test_mixed_workload_converges(self, cluster):
        fs = cluster.fs()
        fs.makedirs("/a/b")
        for i in range(24):
            fs.write("/a/b/f{:02d}".format(i), size=4096)
        for i in range(0, 24, 3):
            fs.unlink("/a/b/f{:02d}".format(i))
        fs.rename("/a/b/f01", "/a/b/renamed")
        fs.chmod("/a/b", 0o700)
        fs.chmod("/a/b/f02", 0o600)
        _drain(cluster)
        assert all(
            not diffs for diffs in cluster.replication_divergence().values()
        )

    def test_namespace_changes_converge(self, cluster):
        fs = cluster.fs()
        for i in range(8):
            fs.mkdir("/d{}".format(i))
        for i in range(0, 8, 2):
            fs.rmdir("/d{}".format(i))
        fs.rename("/d1", "/e1")
        _drain(cluster)
        assert all(
            not diffs for diffs in cluster.replication_divergence().values()
        )

    def test_concurrent_ops_converge(self, cluster):
        fs = cluster.fs()
        fs.mkdir("/shared")
        client = cluster.add_client(mode="libfs")
        env = cluster.env
        procs = [
            env.process(client.create("/shared/f{:03d}".format(i)))
            for i in range(60)
        ]
        env.run(until=env.all_of(procs))
        _drain(cluster)
        assert all(
            not diffs for diffs in cluster.replication_divergence().values()
        )

    def test_bulk_load_mirrored(self, cluster):
        from repro.workloads.trees import uniform_tree

        cluster.bulk_load(uniform_tree(levels=2, dir_fanout=3,
                                       files_per_leaf=4))
        assert all(
            not diffs for diffs in cluster.replication_divergence().values()
        )

    def test_rebalance_migration_converges(self):
        cluster = FalconCluster(FalconConfig(
            num_mnodes=4, num_storage=2, replication=True, epsilon=0.02,
        ))
        fs = cluster.fs()
        for d in range(30):
            fs.mkdir("/d{:02d}".format(d))
            fs.create("/d{:02d}/hot.dat".format(d))
        cluster.rebalance()
        _drain(cluster)
        assert all(
            not diffs for diffs in cluster.replication_divergence().values()
        )


class TestMechanics:
    def test_lsn_ordering_and_lag(self, cluster):
        fs = cluster.fs()
        fs.mkdir("/d")
        for i in range(10):
            fs.create("/d/f{}".format(i))
        _drain(cluster)
        for mnode, standby in zip(cluster.mnodes, cluster.standbys):
            if mnode.shipper.next_lsn > 1:
                assert standby.lag(mnode.shipper) == 0
                assert standby.applied_lsn == mnode.shipper.next_lsn - 1

    def test_shipping_is_asynchronous(self, cluster):
        """Commits do not wait for the standby: op latency with
        replication matches a replication-free cluster."""
        plain = FalconCluster(FalconConfig(num_mnodes=3, num_storage=2))
        t_plain = _timed_create(plain)
        t_replicated = _timed_create(cluster)
        assert t_replicated == pytest.approx(t_plain, rel=0.01)

    def test_out_of_order_application(self):
        """The standby buffers a gap and applies in LSN order."""
        from repro.core import FalconCluster as FC

        cluster = FC(FalconConfig(num_mnodes=1, num_storage=1,
                                  replication=True))
        standby = cluster.standbys[0]
        mnode = cluster.mnodes[0]

        def deliver(lsn, key, value):
            from repro.net.message import Message

            msg = Message(mnode.name, standby.name, "wal_ship",
                          {"lsn": lsn, "records": [("inode", key, value)]})
            standby.deliver(msg)

        from repro.core.records import InodeRecord

        deliver(2, (1, "b"), InodeRecord(ino=11))
        cluster.run_for(100.0)
        assert standby.applied_lsn == 0  # gap: nothing applied yet
        deliver(1, (1, "a"), InodeRecord(ino=10))
        cluster.run_for(100.0)
        assert standby.applied_lsn == 2
        assert standby.table("inode").get((1, "a")).ino == 10
        assert standby.table("inode").get((1, "b")).ino == 11

    def test_out_of_order_multi_gap(self):
        """Several missing LSNs: the reorder buffer holds everything and
        drains in one go when the gap closes."""
        from repro.core import FalconCluster as FC
        from repro.core.records import InodeRecord
        from repro.net.message import Message

        cluster = FC(FalconConfig(num_mnodes=1, num_storage=1,
                                  replication=True))
        standby = cluster.standbys[0]
        mnode = cluster.mnodes[0]

        def deliver(lsn, key, value):
            standby.deliver(Message(
                mnode.name, standby.name, "wal_ship",
                {"lsn": lsn, "records": [("inode", key, value)]},
            ))

        for lsn in (4, 2, 3):
            deliver(lsn, (1, "k{}".format(lsn)), InodeRecord(ino=lsn))
        cluster.run_for(100.0)
        assert standby.applied_lsn == 0
        assert sorted(standby._pending) == [2, 3, 4]
        deliver(1, (1, "k1"), InodeRecord(ino=1))
        cluster.run_for(100.0)
        assert standby.applied_lsn == 4
        assert standby._pending == {}
        for lsn in (1, 2, 3, 4):
            assert standby.table("inode").get((1, "k{}".format(lsn))).ino \
                == lsn

    def test_ack_bounds_retained_history(self, cluster):
        """Applied-LSN acks prune the shipper's history: retention is
        the in-flight window, not the whole run (regression for
        unbounded growth)."""
        fs = cluster.fs()
        fs.mkdir("/d")
        peak = 0
        for i in range(40):
            fs.create("/d/f{:03d}".format(i))
            peak = max(peak, max(m.shipper.retained
                                 for m in cluster.mnodes))
        # Ship -> apply -> ack is a few RPC hops; the synchronous facade
        # runs the loop between ops, so the unacked window stays tiny
        # even though 40+ transactions shipped.
        assert peak < 10
        _drain(cluster)
        for mnode in cluster.mnodes:
            if mnode.shipper.next_lsn > 1:
                assert mnode.shipper.retained == 0
                assert mnode.shipper.acked_lsn == mnode.shipper.next_lsn - 1

    def test_divergence_tombstone_vs_missing(self):
        """A key deleted on the primary whose tombstone the standby
        applied (now absent) — or that the standby never saw at all —
        compares equal: both sides agree the key does not exist."""
        from repro.core import FalconCluster as FC
        from repro.core.records import InodeRecord
        from repro.storage.replication import divergence

        cluster = FC(FalconConfig(num_mnodes=1, num_storage=1,
                                  replication=True))
        mnode = cluster.mnodes[0]
        standby = cluster.standbys[0]
        # Tombstone applied: standby saw the put and the delete.
        standby.table("inode").put((1, "gone"), InodeRecord(ino=9))
        standby.table("inode").delete((1, "gone"))
        # Never-seen: primary created and deleted entirely within the
        # lost window; the standby has no trace.  Either way the key is
        # missing on both sides now.
        assert divergence(mnode, standby) == []

    def test_standby_records_are_copies(self, cluster):
        fs = cluster.fs()
        fs.create("/f")
        _drain(cluster)
        owner = cluster.coordinator.index.locate(1, "f")
        primary = cluster.mnodes[owner].inodes.get((1, "f"))
        replica = cluster.standbys[owner].table("inode").get((1, "f"))
        assert replica is not primary
        assert replica.ino == primary.ino

    def test_promote_tables_invalidates_dentries(self, cluster):
        fs = cluster.fs()
        fs.mkdir("/d")
        _drain(cluster)
        owner = cluster.coordinator.index.locate(1, "d")
        standby = cluster.standbys[owner]
        tables = standby.promote_tables()
        record = tables["dentry"].get((1, "d"))
        assert record is not None and record.state == INVALID

    def test_divergence_requires_replication(self):
        cluster = FalconCluster(FalconConfig(num_mnodes=2, num_storage=1))
        with pytest.raises(RuntimeError):
            cluster.replication_divergence()

    def test_divergence_detects_planted_gap(self, cluster):
        fs = cluster.fs()
        fs.create("/f")
        _drain(cluster)
        owner = cluster.coordinator.index.locate(1, "f")
        cluster.standbys[owner].table("inode").delete((1, "f"))
        diffs = cluster.replication_divergence()
        assert diffs[cluster.mnodes[owner].name]


def _timed_create(cluster):
    fs = cluster.fs(mode="libfs")
    fs.mkdir("/t")
    env = cluster.env
    start = env.now
    fs.create("/t/probe")
    return env.now - start
